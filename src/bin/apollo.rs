//! `apollo` — command-line interface to the APOLLO reproduction.
//!
//! ```text
//! apollo design --config <tiny|n1|a77>
//! apollo train  --config <tiny|n1|a77> --q <N> [--ga-generations <N>] [--threads <N>] [--out model.json]
//! apollo eval   --config <tiny|n1|a77> --model model.json [--threads <N>] [--fault-plan plan.json]
//! apollo opm    --model model.json [--bits <B>] [--window <T>]
//! apollo trace  --config <tiny|n1|a77> --model model.json [--cycles <N>] [--threads <N>] [--out trace.json]
//! apollo ga     --config <tiny|n1|a77> [--ga-generations <N>] [--population <N>] [--threads <N>]
//! apollo profile <subcommand> [flags...]
//! apollo trace-lint --in trace.jsonl
//! apollo monitor --config <tiny|n1|a77> --model model.json [--listen 127.0.0.1:9100]
//!                [--cycles <N>] [--window <T>] [--bits <B>] [--bench <name>] [--arm] [--threads <N>]
//!                [--checkpoint <dir>] [--checkpoint-every <M>] [--supervise] [--pipelines <N>]
//! apollo fleet   --config <tiny|n1|a77> --model model.json [--cores <N>] [--shards <K>]
//!                [--windows <W>] [--window <T>] [--bits <B>] [--listen 127.0.0.1:9200]
//!                [--pace-ms <M>] [--watermark <D>] [--backoff-ms <B>]
//!                [--kill shard@window[@attempt],...]
//! apollo scrape  --addr 127.0.0.1:9100 [--path /metrics|/events] [--lines <N>] [--out file]
//!                [--retries <N>] [--backoff-ms <B>] [--deadline-ms <D>]
//! apollo results import   [--dir results] [--store results/store] [--force]
//! apollo results query    [--suite <s>] [--metric a,b] [--last <N>]
//!                         [--group-by <tag>] [--agg count,median,...]
//!                         [--format table|json|csv|markdown] [--markdown]
//! apollo results history  <suite> <metric> [--format ...]
//! apollo results sentinel [--budgets budgets.toml] [--store <dir>] [--suite <s>] [--check]
//!
//! `--threads N` runs simulations on N worker threads (bit-identical
//! results; defaults to 1).
//!
//! `--engine scalar|bitslice` (on `ga`, `train`, `capture`, `eval`)
//! selects the batched simulation kernel: `bitslice` packs up to 64
//! workloads into one SWAR netlist pass; results are bit-identical to
//! `scalar` (the differential oracle), typically several times faster
//! for multi-workload collection. `apollo profile capture --engine
//! bitslice` vs `--engine scalar` reports the two kernels side by
//! side.
//!
//! Observability flags (any subcommand):
//!   --trace <out.jsonl>  write schema-versioned telemetry records
//!   --metrics            print a Prometheus-style metrics snapshot on exit
//!   --quiet              suppress diagnostics
//!   -v | --verbose       additionally dump metrics at exit
//!
//! `apollo profile <sub>` runs `<sub>` with span timing enabled and
//! prints a per-phase wall-clock/percentage table. `--preset` is an
//! alias for `--config` there (e.g. `apollo profile ga --preset
//! neoverse_like`).
//!
//! `apollo results` queries the append-only run-record store
//! (`results/store/*.jsonl`, overridable with `--store` or
//! `$APOLLO_RESULTS_STORE`): `import` backfills legacy `results/*.json`
//! blobs, `query`/`history` render comparison tables, and `sentinel`
//! gates CI against the checked-in `budgets.toml` (exit 1 on any
//! regression; `--check` parses and reports without failing).
//!
//! `apollo monitor` runs the runtime introspection service: per-window
//! OPM estimates with per-unit attribution, drift monitors, and (with
//! `--listen`) a TCP endpoint serving Prometheus text on `/metrics`
//! and streaming JSONL on `/events`; `GET /shutdown` ends the run
//! cleanly. `apollo scrape` is the matching zero-dependency client;
//! with `--retries N` it retries transient failures (connect errors,
//! 5xx shedding) with jitter-free exponential backoff (`--backoff-ms`
//! base, honouring the server's `Retry-After`) and a per-attempt
//! `--deadline-ms`, exiting nonzero only once every retry is spent.
//!
//! `apollo fleet` serves a sharded fleet of `--cores` mixed-preset
//! monitored cores across `--shards` bulkhead-isolated shard threads:
//! batched columnar event export, per-core routing
//! (`/cores/<id>/metrics|events`), degrade-don't-die aggregation on
//! `/fleet/metrics`, and admission control past `--watermark` queued
//! batches. `--kill shard@window[@attempt]` injects deterministic
//! shard panics (chaos testing); `--windows 0` serves until
//! `/shutdown`.
//!
//! `--checkpoint <dir>` makes the monitor durable: it snapshots its
//! state to `<dir>` every `--checkpoint-every` windows (default 64)
//! and resumes from the snapshot on the next start. `--supervise`
//! runs a supervised fleet of `--pipelines` (default 4) mixed-preset
//! pipelines with panic isolation, deterministic backoff, and a
//! circuit breaker exported on `/metrics`.
//! ```

use apollo_suite::core::{
    benchgen::GaConfig, run_emulator_flow, run_ga, train_per_cycle, ApolloModel, DesignContext,
    FeatureSpace, TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::introspect as apollo_introspect;
use apollo_suite::introspect::{MonitorConfig, MonitorHub};
use apollo_suite::mlkit::metrics;
use apollo_suite::opm::{build_opm, AreaReport, QuantizedOpm};
use apollo_suite::results as apollo_results;
use apollo_suite::sim::{EngineKind, FaultPlan};
use apollo_telemetry::Verbosity;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         apollo design --config <tiny|n1|a77>\n  \
         apollo train  --config <tiny|n1|a77> --q <N> [--ga-generations <N>] [--threads <N>] [--out model.json]\n  \
         apollo eval   --config <tiny|n1|a77> --model model.json [--threads <N>] [--fault-plan plan.json]\n  \
         apollo opm    --model model.json [--bits <B>] [--window <T>]\n  \
         apollo trace  --config <tiny|n1|a77> --model model.json [--cycles <N>] [--threads <N>] [--out trace.json]\n  \
         apollo ga     --config <tiny|n1|a77> [--ga-generations <N>] [--population <N>] [--threads <N>]\n  \
         apollo profile <design|ga|train|eval|capture|monitor> [--preset <name>] [flags...]\n  \
         apollo trace-lint --in trace.jsonl [--kind trace|batch]\n  \
         apollo trace-export --in trace.jsonl [--chrome out.json] [--flamegraph out.folded] [--check]\n  \
         apollo monitor --config <tiny|n1|a77> --model model.json [--listen 127.0.0.1:9100]\n  \
         \x20       [--cycles <N>] [--window <T>] [--bits <B>] [--bench <name>] [--arm] [--threads <N>]\n  \
         \x20       [--checkpoint <dir>] [--checkpoint-every <M>] [--supervise] [--pipelines <N>]\n  \
         apollo fleet   --config <tiny|n1|a77> --model model.json [--cores <N>] [--shards <K>]\n  \
         \x20       [--windows <W>] [--window <T>] [--bits <B>] [--listen 127.0.0.1:9200]\n  \
         \x20       [--pace-ms <M>] [--watermark <D>] [--backoff-ms <B>]\n  \
         \x20       [--kill shard@window[@attempt],...]\n  \
         apollo scrape  --addr 127.0.0.1:9100 [--path /metrics|/events] [--status] [--healthz]\n  \
         \x20       [--lines <N>] [--out file] [--retries <N>] [--backoff-ms <B>] [--deadline-ms <D>]\n  \
         apollo results import   [--dir results] [--store results/store] [--force]\n  \
         apollo results query    [--suite <s>] [--metric a,b] [--last <N>] [--group-by <tag>]\n  \
         \x20       [--agg count,min,max,median,latest,delta] [--format table|json|csv|markdown]\n  \
         apollo results history  <suite> <metric> [--format ...]\n  \
         apollo results sentinel [--budgets budgets.toml] [--store <dir>] [--suite <s>] [--check]\n\n\
         observability flags on any subcommand:\n  \
         --trace <out.jsonl>   --metrics   --quiet   -v|--verbose\n\n\
         `ga`, `train`, `capture` and `eval` also take --engine <scalar|bitslice>\n  \
         (bitslice packs up to 64 workloads per netlist pass; bit-identical results)"
    );
    ExitCode::from(2)
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "metrics",
    "quiet",
    "verbose",
    "arm",
    "supervise",
    "force",
    "check",
    "markdown",
    "status",
    "healthz",
];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = match flag.strip_prefix("--") {
            Some(k) => k,
            None if flag == "-v" => "verbose",
            None => {
                return Err(format!(
                    "unexpected argument `{flag}` (flags start with --)"
                ))
            }
        };
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_owned(), "true".to_owned());
        } else {
            let Some(value) = it.next() else {
                return Err(format!("--{key} requires a value"));
            };
            out.insert(key.to_owned(), value.clone());
        }
    }
    Ok(out)
}

fn design_of(name: &str) -> Option<CpuConfig> {
    match name {
        "tiny" => Some(CpuConfig::tiny()),
        "n1" | "neoverse" | "n1-like" | "neoverse_like" => Some(CpuConfig::neoverse_like()),
        "a77" | "cortex" | "a77-like" | "cortex_like" => Some(CpuConfig::cortex_like()),
        _ => None,
    }
}

/// The design named by `--config` (or its `--preset` alias, used by
/// `apollo profile`).
fn design_from_flags(flags: &HashMap<String, String>) -> Option<CpuConfig> {
    flags
        .get("config")
        .or_else(|| flags.get("preset"))
        .and_then(|c| design_of(c))
}

fn load_model(path: &str) -> Result<ApolloModel, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse fault plan {path}: {e}"))
}

/// Writes `json` to `path`, reporting the path in any error instead of
/// panicking mid-write.
fn save_text(path: &str, text: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("write {what} to {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    // `results <sub>` is its own family with positional operands
    // (`history <suite> <metric>`); route before the flag parser.
    if cmd == "results" {
        return run_results(rest);
    }
    // `profile <sub>` nests a command: peel the extra positional.
    let (cmd, profiling, rest) = if cmd == "profile" {
        match rest.split_first() {
            Some((sub, rest)) => (sub, true, rest),
            None => return usage(),
        }
    } else {
        (cmd, false, rest)
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };

    if flags.contains_key("quiet") {
        apollo_telemetry::set_verbosity(Verbosity::Quiet);
    } else if flags.contains_key("verbose") {
        apollo_telemetry::set_verbosity(Verbosity::Verbose);
    }
    if let Some(path) = flags.get("trace") {
        match apollo_telemetry::JsonlSink::create(path) {
            Ok(sink) => apollo_telemetry::install_sink(Arc::new(sink)),
            Err(e) => {
                eprintln!("create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if profiling {
        apollo_telemetry::set_timing(true);
        apollo_telemetry::reset_phases();
    }

    let t0 = Instant::now();
    let code = run_command(cmd, &flags);
    let total_ns = t0.elapsed().as_nanos() as u64;

    if profiling {
        let report = apollo_telemetry::phase_report();
        println!("\nprofile `{cmd}`:");
        print!(
            "{}",
            apollo_telemetry::render_phase_table(&report, total_ns)
        );
    }
    if flags.contains_key("metrics") || apollo_telemetry::verbosity() == Verbosity::Verbose {
        print!(
            "{}",
            apollo_telemetry::prometheus_text(&apollo_telemetry::snapshot())
        );
    }
    apollo_telemetry::clear_sink();
    code
}

fn run_command(cmd: &str, flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).cloned();
    let threads: usize = get("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let engine = match flags.get("engine").map(|v| v.parse::<EngineKind>()) {
        None => EngineKind::default(),
        Some(Ok(e)) => e,
        Some(Err(e)) => {
            eprintln!("{e}");
            return usage();
        }
    };

    match cmd {
        "design" => {
            let Some(cfg) = design_from_flags(flags) else {
                return usage();
            };
            let ctx = DesignContext::new(&cfg);
            println!("design `{}`", cfg.name);
            print!("{}", ctx.netlist().stats());
            ExitCode::SUCCESS
        }
        "ga" => {
            // Training-data generation alone (also the `profile ga`
            // target): deliberately small defaults so a profile run
            // answers "where does the time go" in seconds.
            let Some(cfg) = design_from_flags(flags) else {
                return usage();
            };
            let generations: usize = get("ga-generations")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3);
            // run_ga asserts population >= 4.
            let population: usize = get("population")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8)
                .max(4);
            let ctx = DesignContext::with_engine(&cfg, threads, engine);
            let ga = run_ga(
                &ctx,
                &GaConfig {
                    population,
                    generations,
                    threads,
                    ..GaConfig::default()
                },
            );
            println!(
                "GA on `{}` ({engine} engine): {} individuals over {} generations, \
                 power spread {:.2}x",
                cfg.name,
                ga.individuals.len(),
                generations,
                ga.power_spread()
            );
            ExitCode::SUCCESS
        }
        "train" => {
            let Some(cfg) = design_from_flags(flags) else {
                return usage();
            };
            let q: usize = get("q").and_then(|v| v.parse().ok()).unwrap_or(64);
            let generations: usize = get("ga-generations")
                .and_then(|v| v.parse().ok())
                .unwrap_or(12);
            let ctx = DesignContext::with_engine(&cfg, threads, engine);
            apollo_telemetry::diag(&format!(
                "generating training data ({generations} GA generations)..."
            ));
            let ga = run_ga(
                &ctx,
                &GaConfig {
                    population: 16,
                    generations,
                    threads,
                    ..GaConfig::default()
                },
            );
            apollo_telemetry::diag(&format!(
                "GA: {} individuals, power spread {:.2}x",
                ga.individuals.len(),
                ga.power_spread()
            ));
            let suite = ga.training_suite(120, 100, cfg.dram_words);
            let trace = ctx.capture_suite(&suite, 400);
            let fs = FeatureSpace::build(&trace.toggles);
            apollo_telemetry::diag(&format!(
                "training on {} cycles, {} candidate signals",
                trace.n_cycles(),
                fs.n_candidates()
            ));
            let model = train_per_cycle(
                &trace,
                ctx.netlist(),
                &fs,
                &TrainOptions {
                    q_target: q,
                    ..TrainOptions::default()
                },
            )
            .model;
            let train_pred = model.predict_full(&trace.toggles);
            println!(
                "trained: Q = {} ({:.3}% of {} signal bits), train R2 = {:.3}",
                model.q(),
                100.0 * model.monitored_fraction(),
                model.m_bits,
                metrics::r2(&trace.labels(), &train_pred)
            );
            if let Some(path) = get("out") {
                let json = match serde_json::to_string_pretty(&model) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serialize model: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = save_text(&path, &json, "model") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("model saved to {path}");
            }
            ExitCode::SUCCESS
        }
        "capture" => {
            // Capture the Table-4 test suite (the `profile capture`
            // target) without needing a trained model.
            let Some(cfg) = design_from_flags(flags) else {
                return usage();
            };
            let scale: f64 = get("scale").and_then(|v| v.parse().ok()).unwrap_or(0.25);
            let ctx = DesignContext::with_engine(&cfg, threads, engine);
            let suite = ctx.test_suite(scale);
            let trace = ctx.capture_suite(&suite, 400);
            println!(
                "captured {} benchmarks, {} cycles total ({engine} engine)",
                trace.segments.len(),
                trace.n_cycles()
            );
            ExitCode::SUCCESS
        }
        "eval" => {
            let (Some(cfg), Some(model_path)) = (design_from_flags(flags), get("model")) else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let ctx = DesignContext::with_engine(&cfg, threads, engine);
            let suite = ctx.test_suite(1.0);
            let trace = ctx.capture_suite(&suite, 400);
            let pred = model.predict_full(&trace.toggles);
            let y = trace.labels();
            println!(
                "Table-4 suite: R2 = {:.3}, NRMSE = {:.1}%, NMAE = {:.1}%",
                metrics::r2(&y, &pred),
                100.0 * metrics::nrmse(&y, &pred),
                100.0 * metrics::nmae(&y, &pred)
            );
            for (name, range) in &trace.segments {
                println!(
                    "  {:<14} NRMSE {:>5.1}%",
                    name,
                    100.0 * metrics::nrmse(&y[range.clone()], &pred[range.clone()])
                );
            }
            if let Some(plan_path) = get("fault-plan") {
                let plan = match load_fault_plan(&plan_path) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let bench = apollo_suite::cpu::benchmarks::maxpwr_cpu();
                let cycles = 2000;
                let (faulted, report) = match ctx.capture_faulted(&bench, cycles, 100, &plan) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let fy = faulted.labels();
                let fpred = model.predict_full(&faulted.toggles);
                println!(
                    "fault plan `{plan_path}` (seed {}): {} reg flips, {} mem flips, \
                     {} stuck-bit cycles over {cycles} cycles",
                    report.seed, report.reg_flips, report.mem_flips, report.stuck_cycles
                );
                println!(
                    "  under faults: R2 = {:.3}, NRMSE = {:.1}% (model tracks the \
                     faulted silicon's true power)",
                    metrics::r2(&fy, &fpred),
                    100.0 * metrics::nrmse(&fy, &fpred)
                );
            }
            ExitCode::SUCCESS
        }
        "opm" => {
            let Some(model_path) = get("model") else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let b: u8 = get("bits").and_then(|v| v.parse().ok()).unwrap_or(10);
            let t: usize = get("window").and_then(|v| v.parse().ok()).unwrap_or(8);
            let quant = match QuantizedOpm::from_model(&model, b, t) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let hw = match build_opm(&quant) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "OPM: Q = {}, B = {b}, T = {t}; accumulator {} bits; {} netlist nodes",
                quant.spec.q,
                quant.spec.accumulator_bits(),
                hw.netlist.len()
            );
            // Host for the overhead ratio: rebuild the design the model
            // names (fall back to tiny for unknown names).
            let host = design_of(&model.design_name).unwrap_or_else(CpuConfig::tiny);
            let ctx = DesignContext::new(&host);
            let report = AreaReport::from_areas(&hw, ctx.netlist());
            println!(
                "gate area: OPM {:.0} GE vs host {:.0} GE = {:.3}% overhead",
                report.opm_ge,
                report.cpu_ge,
                100.0 * report.area_overhead
            );
            ExitCode::SUCCESS
        }
        "trace" => {
            let (Some(cfg), Some(model_path)) = (design_from_flags(flags), get("model")) else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let cycles: usize = get("cycles")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100_000);
            let ctx = DesignContext::with_threads(&cfg, threads);
            let phases = (cycles / 2500).clamp(2, 600) as u16;
            let bench = benchmarks::hmmer_like(&ctx.handles.config, phases);
            let report = run_emulator_flow(&ctx, &model, &bench, cycles, 400);
            println!(
                "{} cycles: proxy trace {:.2} MiB ({:.0}x smaller than a full dump), \
                 inference {:.1} Mcycles/s, R2 vs ground truth {:.3}",
                report.cycles,
                report.proxy_trace_bytes as f64 / (1 << 20) as f64,
                report.reduction_factor(),
                report.inference_cycles_per_second() / 1e6,
                metrics::r2(&report.ground_truth, &report.power_trace)
            );
            if let Some(path) = get("out") {
                let json = match serde_json::to_string(&report.power_trace) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serialize trace: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = save_text(&path, &json, "power trace") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("power trace saved to {path}");
            }
            ExitCode::SUCCESS
        }
        "trace-lint" => {
            let Some(path) = get("in") else {
                return usage();
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match get("kind").as_deref() {
                None | Some("trace") => {}
                // Fleet batch streams: framed columnar WindowBatch
                // lines, dense seq per shard.
                Some("batch") => return lint_batches(&path, &text),
                Some(other) => {
                    eprintln!("trace-lint: unknown --kind `{other}` (trace|batch)");
                    return usage();
                }
            }
            let mut n = 0u64;
            let mut last_seq: Option<u64> = None;
            let mut kinds: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for (lineno, line) in text.lines().enumerate() {
                match apollo_telemetry::validate_line(line) {
                    Ok(rec) => {
                        // seq must be dense and in file order.
                        let expected = last_seq.map(|s| s + 1).unwrap_or(rec.seq);
                        if rec.seq != expected {
                            eprintln!(
                                "{path}:{}: seq {} out of order (expected {expected})",
                                lineno + 1,
                                rec.seq
                            );
                            return ExitCode::FAILURE;
                        }
                        last_seq = Some(rec.seq);
                        n += 1;
                        let kind = match &rec.body {
                            apollo_telemetry::RecordBody::Event(ev) => {
                                // Known event families (opm.drift.*,
                                // introspect.*, governor.*) must carry
                                // their pinned typed bodies.
                                if let Err(e) = apollo_telemetry::validate_known(ev) {
                                    eprintln!("{path}:{}: {e}", lineno + 1);
                                    return ExitCode::FAILURE;
                                }
                                format!("event:{}", ev.name)
                            }
                            apollo_telemetry::RecordBody::Span { .. } => "span".to_owned(),
                            apollo_telemetry::RecordBody::Message { .. } => "message".to_owned(),
                        };
                        *kinds.entry(kind).or_default() += 1;
                    }
                    Err(e) => {
                        eprintln!("{path}:{}: {e}", lineno + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
            println!(
                "{path}: {n} records, schema v{} OK",
                apollo_telemetry::SCHEMA_VERSION
            );
            for (kind, count) in &kinds {
                println!("  {kind:<40} {count}");
            }
            ExitCode::SUCCESS
        }
        "trace-export" => {
            let Some(path) = get("in") else {
                return usage();
            };
            let (chrome_out, folded_out, check) = (
                get("chrome"),
                get("flamegraph"),
                flags.contains_key("check"),
            );
            if chrome_out.is_none() && folded_out.is_none() && !check {
                eprintln!("trace-export: pass --chrome, --flamegraph, and/or --check");
                return usage();
            }
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut records = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                match apollo_telemetry::validate_line(line) {
                    Ok(rec) => records.push(rec),
                    Err(e) => {
                        eprintln!("{path}:{}: {e}", lineno + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
            if records.is_empty() {
                eprintln!("{path}: no records to export");
                return ExitCode::FAILURE;
            }
            let json = apollo_telemetry::chrome_trace(&records);
            if check {
                match apollo_telemetry::validate_chrome(&json) {
                    Ok(stats) => println!(
                        "trace ok: {} spans ({} windows) + {} instants across {} trace(s)",
                        stats.spans, stats.window_spans, stats.instants, stats.processes
                    ),
                    Err(e) => {
                        eprintln!("{path}: invalid trace export: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(out) = chrome_out {
                if let Err(e) = save_text(&out, &json, "chrome trace") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("{} records exported to {out} (chrome://tracing / Perfetto)", records.len());
            }
            if let Some(out) = folded_out {
                let folded = apollo_telemetry::flamegraph_folded(&records);
                if let Err(e) = save_text(&out, &folded, "folded stacks") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "{} folded stack lines written to {out} (flamegraph.pl / speedscope)",
                    folded.lines().count()
                );
            }
            ExitCode::SUCCESS
        }
        "monitor" => {
            let (Some(cfg), Some(model_path)) = (design_from_flags(flags), get("model")) else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mcfg = MonitorConfig {
                window_t: get("window").and_then(|v| v.parse().ok()).unwrap_or(32),
                bits: get("bits").and_then(|v| v.parse().ok()).unwrap_or(10),
                cycles: get("cycles").and_then(|v| v.parse().ok()).unwrap_or(0),
                history: get("history").and_then(|v| v.parse().ok()).unwrap_or(256),
                arm: flags.contains_key("arm").then(Default::default),
                ..MonitorConfig::default()
            };
            let ctx = DesignContext::with_threads(&cfg, threads);
            let bench_name = get("bench").unwrap_or_else(|| "dhrystone".to_owned());
            let Some(bench) = benchmarks::table4_suite(&cfg)
                .into_iter()
                .find(|b| b.name == bench_name)
            else {
                eprintln!(
                    "unknown benchmark `{bench_name}`; available: {}",
                    benchmarks::table4_suite(&cfg)
                        .iter()
                        .map(|b| b.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            };
            let checkpoint = match get("checkpoint") {
                Some(dir) => {
                    let every: u64 = get("checkpoint-every")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(64);
                    if every == 0 {
                        eprintln!("--checkpoint-every must be >= 1");
                        return ExitCode::FAILURE;
                    }
                    Some(apollo_introspect::CheckpointPolicy::new(dir, every))
                }
                None => None,
            };
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let hub = MonitorHub::new(1024);
            // One registry shared by the pipeline(s) and the server's
            // /healthz + /status endpoints.
            let health = Arc::new(apollo_introspect::HealthRegistry::new());
            let server = if let Some(listen) = get("listen") {
                let sopts = apollo_introspect::ServerOptions {
                    health: Some(Arc::clone(&health)),
                    ..Default::default()
                };
                match apollo_introspect::serve_with(&listen, Arc::clone(&hub), Arc::clone(&stop), sopts)
                {
                    Ok(s) => {
                        println!(
                            "monitor serving on http://{}/ (/metrics, /events, /healthz, /status, /shutdown)",
                            s.addr()
                        );
                        Some(s)
                    }
                    Err(e) => {
                        eprintln!("bind {listen}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                None
            };
            if flags.contains_key("supervise") {
                // Supervised fleet: N mixed-preset pipelines over the
                // built-in workloads, panic isolation + deterministic
                // backoff + circuit breaker, multiplexed onto one hub.
                let n: usize = get("pipelines").and_then(|v| v.parse().ok()).unwrap_or(4);
                let specs = apollo_introspect::fleet_specs(n.max(1), &mcfg);
                let sup = apollo_introspect::SupervisorConfig {
                    checkpoint,
                    health: Some(Arc::clone(&health)),
                    ..Default::default()
                };
                let ctx = Arc::new(ctx);
                let model = Arc::new(model);
                let report =
                    apollo_introspect::run_supervised(&ctx, &model, &specs, &sup, Some(&hub), &stop);
                hub.close();
                if let Some(s) = server {
                    s.stop();
                }
                println!(
                    "supervised fleet on `{}`: {} pipelines, {} degraded",
                    cfg.name,
                    report.pipelines.len(),
                    report.degraded()
                );
                for p in &report.pipelines {
                    match (&p.state, &p.report) {
                        (apollo_introspect::PipelineState::Completed, Some(r)) => println!(
                            "  {:<24} completed: {} windows / {} cycles, {} attempts{}",
                            p.id,
                            r.windows,
                            r.cycles,
                            p.attempts,
                            r.resumed_from
                                .map(|w| format!(" (resumed from window {w})"))
                                .unwrap_or_default()
                        ),
                        _ => println!(
                            "  {:<24} DEGRADED after {} attempts",
                            p.id, p.attempts
                        ),
                    }
                }
                return if report.degraded() == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            let opts = apollo_introspect::RunOptions {
                resume: checkpoint.is_some(),
                checkpoint,
                health: Some(Arc::clone(&health)),
                ..Default::default()
            };
            let result = apollo_introspect::run_monitor_with(
                &ctx,
                &model,
                &bench,
                &mcfg,
                Some(&hub),
                &stop,
                &opts,
            );
            hub.close();
            if let Some(s) = server {
                s.stop();
            }
            match result {
                Ok(r) => {
                    println!(
                        "monitor `{}` on `{}`: {} windows over {} cycles ({} runs)",
                        bench.name, cfg.name, r.windows, r.cycles, r.runs
                    );
                    if r.resumed_from.is_some() || r.checkpoints > 0 {
                        println!(
                            "  checkpoints: {} written{}",
                            r.checkpoints,
                            r.resumed_from
                                .map(|w| format!(", resumed from window {w}"))
                                .unwrap_or_default()
                        );
                    }
                    println!(
                        "  est power mean {:.2} / peak {:.2} (truth mean {:.2}), energy {:.1}",
                        r.mean_est, r.peak_est, r.mean_true, r.energy
                    );
                    let total_unit: f64 = r.unit_energy.iter().sum();
                    for (label, e) in r.unit_labels.iter().zip(&r.unit_energy) {
                        let share = if total_unit > 0.0 {
                            100.0 * e / total_unit
                        } else {
                            0.0
                        };
                        println!("  unit {label:<8} energy {e:>12.1} ({share:>5.1}%)");
                    }
                    println!(
                        "  drift alarms: quant {} / truth {}; armed {} windows, final throttle {}",
                        r.quant_alarms, r.truth_alarms, r.armed_windows, r.final_throttle
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fleet" => run_fleet_cmd(flags, threads),
        "scrape" => {
            let Some(addr) = get("addr") else {
                return usage();
            };
            // --healthz / --status are path shorthands; a degraded
            // fleet answers 503, which http_get_lines surfaces as an
            // error → nonzero exit (fit for CI gates and probes).
            let path = if flags.contains_key("healthz") {
                "/healthz".to_owned()
            } else if flags.contains_key("status") {
                "/status".to_owned()
            } else {
                get("path").unwrap_or_else(|| "/metrics".to_owned())
            };
            let max_lines: Option<usize> = get("lines").and_then(|v| v.parse().ok());
            // Retry transient failures (connect errors, 5xx shedding)
            // with deterministic exponential backoff; the exit code is
            // nonzero only once every retry is exhausted.
            let policy = apollo_introspect::RetryPolicy {
                retries: get("retries").and_then(|v| v.parse().ok()).unwrap_or(0),
                backoff_ms: get("backoff-ms").and_then(|v| v.parse().ok()).unwrap_or(100),
                deadline_ms: get("deadline-ms")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(10_000),
            };
            match apollo_introspect::http_get_lines_retry(&addr, &path, max_lines, &policy) {
                Ok(lines) => {
                    if let Some(out) = get("out") {
                        let mut text = lines.join("\n");
                        text.push('\n');
                        if let Err(e) = save_text(&out, &text, "scrape") {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                        println!("{} lines from {addr}{path} saved to {out}", lines.len());
                    } else {
                        for l in &lines {
                            println!("{l}");
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("scrape {addr}{path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Lints a fleet batch stream: every line must be a valid framed
/// [`apollo_suite::fleet::WindowBatch`] (schema version, payload
/// invariants, round-trip closure) and each shard's `seq` must be
/// dense in file order.
fn lint_batches(path: &str, text: &str) -> ExitCode {
    use apollo_telemetry::framing::{validate_framed, SeqCheck};
    let mut n = 0u64;
    let mut per_shard: std::collections::BTreeMap<u64, SeqCheck> = std::collections::BTreeMap::new();
    let mut cores: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let batch = match validate_framed::<apollo_suite::fleet::WindowBatch>(line) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = per_shard.entry(batch.shard).or_default().check(batch.seq) {
            eprintln!("{path}:{}: shard {}: {e}", lineno + 1, batch.shard);
            return ExitCode::FAILURE;
        }
        cores.extend(batch.cores.iter().cloned());
        n += 1;
    }
    println!(
        "{path}: {n} batches across {} shard(s), {} core(s), schema v{} OK",
        per_shard.len(),
        cores.len(),
        apollo_suite::fleet::BATCH_VERSION
    );
    ExitCode::SUCCESS
}

/// `apollo fleet`: sharded fleet serving over mixed-preset cores.
fn run_fleet_cmd(flags: &HashMap<String, String>, threads: usize) -> ExitCode {
    use apollo_suite::fleet;
    let get = |k: &str| flags.get(k).cloned();
    let (Some(cfg), Some(model_path)) = (design_from_flags(flags), get("model")) else {
        return usage();
    };
    let model = match load_model(&model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cores: usize = get("cores").and_then(|v| v.parse().ok()).unwrap_or(8).max(1);
    let n_shards: usize = get("shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .clamp(1, cores);
    let window_t: usize = get("window").and_then(|v| v.parse().ok()).unwrap_or(32);
    let bits: u8 = get("bits").and_then(|v| v.parse().ok()).unwrap_or(10);
    let mut kills = Vec::new();
    if let Some(spec) = get("kill") {
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let fields: Vec<&str> = part.split('@').collect();
            let parsed = match fields.as_slice() {
                [s, w] => (s.parse(), w.parse(), Ok(0u32)),
                [s, w, a] => (s.parse(), w.parse(), a.parse()),
                _ => {
                    eprintln!("--kill expects shard@window[@attempt], got `{part}`");
                    return usage();
                }
            };
            let (Ok(shard), Ok(window), Ok(attempt)) = parsed else {
                eprintln!("--kill expects numeric shard@window[@attempt], got `{part}`");
                return usage();
            };
            kills.push(fleet::ShardKill {
                shard,
                window,
                attempt,
            });
        }
    }
    let mut backoff = apollo_introspect::BackoffPolicy::default();
    if let Some(base) = get("backoff-ms").and_then(|v| v.parse().ok()) {
        backoff.base_ms = base;
        backoff.max_ms = backoff.max_ms.max(base);
    }
    let fcfg = fleet::FleetConfig {
        windows: get("windows").and_then(|v| v.parse().ok()).unwrap_or(16),
        backoff,
        kills,
        pace_ms: get("pace-ms").and_then(|v| v.parse().ok()).unwrap_or(0),
        ..fleet::FleetConfig::default()
    };
    let specs = fleet::CoreSpec::fleet(cores, window_t, bits);
    let shards = fleet::shard_cores(specs, n_shards);
    let runtime = fleet::ShardRuntime::new(&shards, &fcfg);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server = if let Some(listen) = get("listen") {
        let sopts = fleet::FleetServerOptions {
            watermark: get("watermark").and_then(|v| v.parse().ok()).unwrap_or(128),
            ..Default::default()
        };
        match fleet::serve_fleet(&listen, Arc::clone(&runtime), Arc::clone(&stop), sopts) {
            Ok(s) => {
                println!(
                    "fleet serving on http://{}/ (/fleet/metrics, /fleet/events, /cores/<id>/..., /healthz, /status, /shutdown)",
                    s.addr()
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("bind {listen}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let ctx = Arc::new(DesignContext::with_threads(&cfg, threads));
    let model = Arc::new(model);
    let report = fleet::run_fleet(&ctx, &model, &shards, &fcfg, &runtime, &stop);
    runtime.close();
    if let Some(s) = server {
        s.stop();
    }
    println!(
        "fleet on `{}`: {} cores / {} shards, window {} reporting {}/{}, {} degraded",
        cfg.name,
        report.cores_total,
        report.outcomes.len(),
        report.aggregate.window,
        report.aggregate.cores_reporting,
        report.aggregate.cores_total,
        report.degraded()
    );
    println!(
        "  power p50 {:.2} / p99 {:.2} / mean {:.2}; alarms {}, energy {:.1}",
        report.aggregate.p50_power,
        report.aggregate.p99_power,
        report.aggregate.mean_power,
        report.aggregate.alarms,
        report.aggregate.energy
    );
    for (label, raw) in report
        .aggregate
        .unit_labels
        .iter()
        .zip(&report.aggregate.unit_raw)
    {
        println!("  unit {label:<8} raw {raw}");
    }
    for o in &report.outcomes {
        println!(
            "  shard{} {:<10} {} windows, {} attempts",
            o.shard,
            format!("{:?}", o.state).to_lowercase(),
            o.windows,
            o.attempts
        );
    }
    if report.degraded() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The store named by `--store`, else `$APOLLO_RESULTS_STORE`, else
/// `results/store`.
fn store_from_flags(flags: &HashMap<String, String>) -> apollo_results::ResultStore {
    match flags.get("store") {
        Some(dir) => apollo_results::ResultStore::open(dir),
        None => apollo_results::default_store(),
    }
}

fn format_from_flags(flags: &HashMap<String, String>) -> Result<apollo_results::Format, String> {
    if flags.contains_key("markdown") {
        return Ok(apollo_results::Format::Markdown);
    }
    match flags.get("format") {
        Some(f) => apollo_results::Format::parse(f),
        None => Ok(apollo_results::Format::Table),
    }
}

fn comma_list(flags: &HashMap<String, String>, key: &str) -> Vec<String> {
    flags
        .get(key)
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// `apollo results <import|query|history|sentinel>`.
fn run_results(args: &[String]) -> ExitCode {
    let Some((sub, rest)) = args.split_first() else {
        return usage();
    };
    // `history` takes two positional operands before its flags.
    let (positionals, rest): (Vec<String>, &[String]) = if sub == "history" {
        if rest.len() < 2 || rest[0].starts_with('-') || rest[1].starts_with('-') {
            eprintln!("results history requires `<suite> <metric>`");
            return usage();
        }
        (rest[..2].to_vec(), &rest[2..])
    } else {
        (Vec::new(), rest)
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let fail = |e: String| -> ExitCode {
        eprintln!("{e}");
        ExitCode::FAILURE
    };

    match sub.as_str() {
        "import" => {
            let dir = flags.get("dir").cloned().unwrap_or_else(|| "results".into());
            let store = store_from_flags(&flags);
            let report = match apollo_results::import_dir(
                std::path::Path::new(&dir),
                &store,
                flags.contains_key("force"),
            ) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            for (suite, n) in &report.imported {
                println!("imported {suite} ({n} metrics)");
            }
            if !report.skipped.is_empty() {
                println!(
                    "skipped {} suites already in the store (use --force to append anyway)",
                    report.skipped.len()
                );
            }
            println!(
                "store {}: {} imported, {} skipped",
                store.dir().display(),
                report.imported.len(),
                report.skipped.len()
            );
            ExitCode::SUCCESS
        }
        "query" => {
            let store = store_from_flags(&flags);
            let view = match store.load_view() {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let format = match format_from_flags(&flags) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            let suite = flags.get("suite").map(String::as_str);
            let metrics = comma_list(&flags, "metric");
            let table = if let Some(tag) = flags.get("group-by") {
                let [metric] = metrics.as_slice() else {
                    return fail("--group-by requires exactly one --metric <name>".into());
                };
                let aggs = if flags.contains_key("agg") {
                    let mut parsed = Vec::new();
                    for a in comma_list(&flags, "agg") {
                        match apollo_results::Agg::parse(&a) {
                            Ok(agg) => parsed.push(agg),
                            Err(e) => return fail(e),
                        }
                    }
                    parsed
                } else {
                    vec![
                        apollo_results::Agg::Count,
                        apollo_results::Agg::Median,
                        apollo_results::Agg::Latest,
                        apollo_results::Agg::DeltaPct,
                    ]
                };
                let tag_filter = (tag != "suite").then_some(tag.as_str());
                apollo_results::query::group_table(&view, suite, tag_filter, metric, &aggs)
            } else {
                match (suite, flags.get("last")) {
                    (Some(s), Some(n)) => {
                        let Ok(n) = n.parse::<usize>() else {
                            return fail(format!("--last must be a count, got `{n}`"));
                        };
                        apollo_results::query::runs_table(&view, s, &metrics, n.max(1))
                    }
                    (Some(s), None) => apollo_results::query::latest_table(&view, s, &metrics),
                    (None, _) => Ok(apollo_results::query::suites_table(&view)),
                }
            };
            match table {
                Ok(t) => {
                    print!("{}", t.render(format));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "history" => {
            let store = store_from_flags(&flags);
            let view = match store.load_view() {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let format = match format_from_flags(&flags) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            match apollo_results::query::history_table(&view, &positionals[0], &positionals[1]) {
                Ok((t, summary)) => {
                    print!("{}", t.render(format));
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "sentinel" => {
            let budgets_path = flags
                .get("budgets")
                .cloned()
                .or_else(|| std::env::var(apollo_results::budgets::BUDGETS_ENV).ok())
                .unwrap_or_else(|| apollo_results::budgets::DEFAULT_BUDGETS_PATH.into());
            let budgets = match apollo_results::Budgets::load(std::path::Path::new(&budgets_path)) {
                Ok(b) => b,
                Err(e) => return fail(e),
            };
            let store = store_from_flags(&flags);
            let view = match store.load_view() {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let format = match format_from_flags(&flags) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            let suite = flags.get("suite").map(String::as_str);
            let check_only = flags.contains_key("check");
            let report = apollo_results::run_sentinel(&view, &budgets, suite);
            print!("{}", report.render(format));
            if !check_only {
                match apollo_results::emit_trajectories(
                    &view,
                    &budgets,
                    std::path::Path::new("."),
                    suite,
                ) {
                    Ok(updated) => {
                        for p in updated {
                            println!("trajectory updated: {}", p.display());
                        }
                    }
                    Err(e) => return fail(e),
                }
            }
            if report.failed() && !check_only {
                eprintln!("sentinel: regression detected");
                ExitCode::FAILURE
            } else {
                if report.failed() {
                    println!("sentinel: failures present (ignored in --check mode)");
                }
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
