//! `apollo` — command-line interface to the APOLLO reproduction.
//!
//! ```text
//! apollo design --config <tiny|n1|a77>
//! apollo train  --config <tiny|n1|a77> --q <N> [--ga-generations <N>] [--threads <N>] [--out model.json]
//! apollo eval   --config <tiny|n1|a77> --model model.json [--threads <N>] [--fault-plan plan.json]
//! apollo opm    --model model.json [--bits <B>] [--window <T>]
//! apollo trace  --config <tiny|n1|a77> --model model.json [--cycles <N>] [--threads <N>] [--out trace.json]
//!
//! `--threads N` runs simulations on N worker threads (bit-identical
//! results; defaults to 1).
//! ```

use apollo_suite::core::{
    benchgen::GaConfig, run_emulator_flow, run_ga, train_per_cycle, ApolloModel, DesignContext,
    FeatureSpace, TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::mlkit::metrics;
use apollo_suite::opm::{build_opm, AreaReport, QuantizedOpm};
use apollo_suite::sim::FaultPlan;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         apollo design --config <tiny|n1|a77>\n  \
         apollo train  --config <tiny|n1|a77> --q <N> [--ga-generations <N>] [--threads <N>] [--out model.json]\n  \
         apollo eval   --config <tiny|n1|a77> --model model.json [--threads <N>] [--fault-plan plan.json]\n  \
         apollo opm    --model model.json [--bits <B>] [--window <T>]\n  \
         apollo trace  --config <tiny|n1|a77> --model model.json [--cycles <N>] [--threads <N>] [--out trace.json]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        out.insert(key.to_owned(), value.clone());
    }
    Some(out)
}

fn design_of(name: &str) -> Option<CpuConfig> {
    match name {
        "tiny" => Some(CpuConfig::tiny()),
        "n1" | "neoverse" | "n1-like" => Some(CpuConfig::neoverse_like()),
        "a77" | "cortex" | "a77-like" => Some(CpuConfig::cortex_like()),
        _ => None,
    }
}

fn load_model(path: &str) -> Result<ApolloModel, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse fault plan {path}: {e}"))
}

/// Writes `json` to `path`, reporting the path in any error instead of
/// panicking mid-write.
fn save_text(path: &str, text: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("write {what} to {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    let get = |k: &str| flags.get(k).cloned();
    let threads: usize = get("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    match cmd.as_str() {
        "design" => {
            let Some(cfg) = get("config").and_then(|c| design_of(&c)) else {
                return usage();
            };
            let ctx = DesignContext::new(&cfg);
            println!("design `{}`", cfg.name);
            print!("{}", ctx.netlist().stats());
            ExitCode::SUCCESS
        }
        "train" => {
            let Some(cfg) = get("config").and_then(|c| design_of(&c)) else {
                return usage();
            };
            let q: usize = get("q").and_then(|v| v.parse().ok()).unwrap_or(64);
            let generations: usize = get("ga-generations")
                .and_then(|v| v.parse().ok())
                .unwrap_or(12);
            let ctx = DesignContext::with_threads(&cfg, threads);
            eprintln!("generating training data ({generations} GA generations)...");
            let ga = run_ga(
                &ctx,
                &GaConfig {
                    population: 16,
                    generations,
                    threads,
                    ..GaConfig::default()
                },
            );
            eprintln!(
                "GA: {} individuals, power spread {:.2}x",
                ga.individuals.len(),
                ga.power_spread()
            );
            let suite = ga.training_suite(120, 100, cfg.dram_words);
            let trace = ctx.capture_suite(&suite, 400);
            let fs = FeatureSpace::build(&trace.toggles);
            eprintln!(
                "training on {} cycles, {} candidate signals",
                trace.n_cycles(),
                fs.n_candidates()
            );
            let model = train_per_cycle(
                &trace,
                ctx.netlist(),
                &fs,
                &TrainOptions { q_target: q, ..TrainOptions::default() },
            )
            .model;
            let train_pred = model.predict_full(&trace.toggles);
            println!(
                "trained: Q = {} ({:.3}% of {} signal bits), train R2 = {:.3}",
                model.q(),
                100.0 * model.monitored_fraction(),
                model.m_bits,
                metrics::r2(&trace.labels(), &train_pred)
            );
            if let Some(path) = get("out") {
                let json = match serde_json::to_string_pretty(&model) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serialize model: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = save_text(&path, &json, "model") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("model saved to {path}");
            }
            ExitCode::SUCCESS
        }
        "eval" => {
            let (Some(cfg), Some(model_path)) =
                (get("config").and_then(|c| design_of(&c)), get("model"))
            else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let ctx = DesignContext::with_threads(&cfg, threads);
            let suite = ctx.test_suite(1.0);
            let trace = ctx.capture_suite(&suite, 400);
            let pred = model.predict_full(&trace.toggles);
            let y = trace.labels();
            println!(
                "Table-4 suite: R2 = {:.3}, NRMSE = {:.1}%, NMAE = {:.1}%",
                metrics::r2(&y, &pred),
                100.0 * metrics::nrmse(&y, &pred),
                100.0 * metrics::nmae(&y, &pred)
            );
            for (name, range) in &trace.segments {
                println!(
                    "  {:<14} NRMSE {:>5.1}%",
                    name,
                    100.0 * metrics::nrmse(&y[range.clone()], &pred[range.clone()])
                );
            }
            if let Some(plan_path) = get("fault-plan") {
                let plan = match load_fault_plan(&plan_path) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let bench = apollo_suite::cpu::benchmarks::maxpwr_cpu();
                let cycles = 2000;
                let (faulted, report) = match ctx.capture_faulted(&bench, cycles, 100, &plan) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let fy = faulted.labels();
                let fpred = model.predict_full(&faulted.toggles);
                println!(
                    "fault plan `{plan_path}` (seed {}): {} reg flips, {} mem flips, \
                     {} stuck-bit cycles over {cycles} cycles",
                    report.seed, report.reg_flips, report.mem_flips, report.stuck_cycles
                );
                println!(
                    "  under faults: R2 = {:.3}, NRMSE = {:.1}% (model tracks the \
                     faulted silicon's true power)",
                    metrics::r2(&fy, &fpred),
                    100.0 * metrics::nrmse(&fy, &fpred)
                );
            }
            ExitCode::SUCCESS
        }
        "opm" => {
            let Some(model_path) = get("model") else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let b: u8 = get("bits").and_then(|v| v.parse().ok()).unwrap_or(10);
            let t: usize = get("window").and_then(|v| v.parse().ok()).unwrap_or(8);
            let quant = match QuantizedOpm::from_model(&model, b, t) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let hw = match build_opm(&quant) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "OPM: Q = {}, B = {b}, T = {t}; accumulator {} bits; {} netlist nodes",
                quant.spec.q,
                quant.spec.accumulator_bits(),
                hw.netlist.len()
            );
            // Host for the overhead ratio: rebuild the design the model
            // names (fall back to tiny for unknown names).
            let host = design_of(&model.design_name).unwrap_or_else(CpuConfig::tiny);
            let ctx = DesignContext::new(&host);
            let report = AreaReport::from_areas(&hw, ctx.netlist());
            println!(
                "gate area: OPM {:.0} GE vs host {:.0} GE = {:.3}% overhead",
                report.opm_ge,
                report.cpu_ge,
                100.0 * report.area_overhead
            );
            ExitCode::SUCCESS
        }
        "trace" => {
            let (Some(cfg), Some(model_path)) =
                (get("config").and_then(|c| design_of(&c)), get("model"))
            else {
                return usage();
            };
            let model = match load_model(&model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let cycles: usize = get("cycles").and_then(|v| v.parse().ok()).unwrap_or(100_000);
            let ctx = DesignContext::with_threads(&cfg, threads);
            let phases = (cycles / 2500).clamp(2, 600) as u16;
            let bench = benchmarks::hmmer_like(&ctx.handles.config, phases);
            let report = run_emulator_flow(&ctx, &model, &bench, cycles, 400);
            println!(
                "{} cycles: proxy trace {:.2} MiB ({:.0}x smaller than a full dump), \
                 inference {:.1} Mcycles/s, R2 vs ground truth {:.3}",
                report.cycles,
                report.proxy_trace_bytes as f64 / (1 << 20) as f64,
                report.reduction_factor(),
                report.inference_cycles_per_second() / 1e6,
                metrics::r2(&report.ground_truth, &report.power_trace)
            );
            if let Some(path) = get("out") {
                let json = match serde_json::to_string(&report.power_trace) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serialize trace: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = save_text(&path, &json, "power trace") {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("power trace saved to {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
