//! # apollo-suite
//!
//! Umbrella crate for the APOLLO (MICRO 2021) reproduction: re-exports
//! every subsystem crate so examples and integration tests can use a
//! single dependency.
//!
//! - [`rtl`] — RTL eDSL and netlist representation.
//! - [`sim`] — cycle-accurate simulator and ground-truth power engine.
//! - [`cpu`] — the synthetic microprocessor designs, ISA and benchmarks.
//! - [`dsp`] — a non-CPU compute engine (streaming MAC/FIR DSP).
//! - [`mlkit`] — penalized regression (MCP/Lasso/Ridge/ElasticNet),
//!   clustering, PCA, a small neural network, and metrics.
//! - [`core`] — the APOLLO framework: training-data generation, proxy
//!   selection, per-cycle and multi-cycle power models, baselines.
//! - [`opm`] — on-chip power meter generation, quantization, overhead
//!   modeling and voltage-droop analysis.
//! - [`telemetry`] — metrics, spans and schema-versioned JSONL events.
//! - [`introspect`] — the runtime power introspection service:
//!   per-unit attribution, drift monitors and the streaming endpoint.
//! - [`fleet`] — sharded fleet serving: many monitored cores behind
//!   one endpoint, with bulkhead isolation, admission control, batched
//!   event export and degrade-don't-die aggregation.
//! - [`results`] — the append-only run-record store, query views, and
//!   the budgets.toml regression sentinel behind `apollo results`.

pub use apollo_core as core;
pub use apollo_cpu as cpu;
pub use apollo_dsp as dsp;
pub use apollo_fleet as fleet;
pub use apollo_introspect as introspect;
pub use apollo_mlkit as mlkit;
pub use apollo_opm as opm;
pub use apollo_results as results;
pub use apollo_rtl as rtl;
pub use apollo_sim as sim;
pub use apollo_telemetry as telemetry;
