//! Per-unit power attribution: where does each benchmark's power go?
//!
//! The ground-truth engine attributes switching power to functional
//! units, which is the design-side insight behind the paper's Figure
//! 15(a) (power proxies concentrate in the units that burn the power).
//!
//! Run with: `cargo run --release --example unit_breakdown`

use apollo_suite::core::DesignContext;
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::rtl::Unit;

fn main() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);

    let suite = vec![
        benchmarks::dhrystone(),
        benchmarks::maxpwr_cpu(),
        benchmarks::saxpy_simd(),
        benchmarks::cache_miss(&config),
    ];

    println!(
        "{:<14} {}",
        "benchmark",
        Unit::ALL
            .iter()
            .map(|u| format!("{:>9.9}", u.label()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for bench in suite {
        let mut sim = ctx.simulate(&bench.program, &bench.data);
        for _ in 0..100 {
            sim.step();
        }
        let mut totals = vec![0.0f64; Unit::ALL.len()];
        let cycles = 400;
        for _ in 0..cycles {
            sim.step();
            for (t, u) in totals.iter_mut().zip(sim.sim().unit_switching()) {
                *t += u;
            }
        }
        let row: Vec<String> = totals
            .iter()
            .map(|t| format!("{:>9.0}", t / cycles as f64))
            .collect();
        println!("{:<14} {}", bench.name, row.join(" "));
    }
    println!("\n(values are mean switching power per cycle attributed to each unit)");
}
