//! The full automated design-time flow of the paper (Figure 2):
//! GA-generated training data → proxy selection → emulator-assisted
//! per-cycle power introspection of a long workload.
//!
//! Run with: `cargo run --release --example design_time_flow`

use apollo_suite::core::{
    benchgen::GaConfig, run_emulator_flow, run_ga, train_per_cycle, DesignContext, FeatureSpace,
    TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::mlkit::metrics;

fn main() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);

    // --- 1. Automatic training-data generation (paper §4.1) -----------
    // A genetic algorithm evolves instruction sequences toward a power
    // virus; the union of all generations spans a wide power range.
    let ga = run_ga(
        &ctx,
        &GaConfig {
            population: 12,
            generations: 8,
            body_len_min: 10,
            body_len_max: 64,
            reps: 8,
            fitness_cycles: 300,
            ..GaConfig::default()
        },
    );
    println!(
        "GA: {} micro-benchmarks, power spread {:.2}x, best-per-generation {:?}",
        ga.individuals.len(),
        ga.power_spread(),
        ga.best_per_gen
            .iter()
            .map(|p| p.round())
            .collect::<Vec<_>>()
    );

    // --- 2. Feature/label collection + model construction -------------
    let suite = ga.training_suite(24, 100, config.dram_words);
    let trace = ctx.capture_suite(&suite, 40);
    let fs = FeatureSpace::build(&trace.toggles);
    let trained = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 24,
            ..TrainOptions::default()
        },
    );
    let model = trained.model;
    println!(
        "model: Q = {} of {} candidate signals (M = {} bits)",
        model.q(),
        fs.n_candidates(),
        model.m_bits
    );

    // --- 3. Emulator-assisted long-workload introspection (paper §5) --
    // Only the Q proxy bits are dumped per cycle, so multi-million-cycle
    // workloads fit in memory; the linear model infers power in seconds.
    let workload = benchmarks::hmmer_like(&config, 12);
    let report = run_emulator_flow(&ctx, &model, &workload, 20_000, 50);
    println!(
        "emulator flow: {} cycles, proxy trace {:.2} MiB vs full dump {:.1} MiB ({:.0}x smaller)",
        report.cycles,
        report.proxy_trace_bytes as f64 / (1 << 20) as f64,
        report.full_trace_bytes as f64 / (1 << 20) as f64,
        report.reduction_factor()
    );
    println!(
        "inference: {:.1} Mcycles/s ({:.0} s per billion cycles)",
        report.inference_cycles_per_second() / 1e6,
        report.seconds_per_billion_cycles()
    );
    println!(
        "accuracy on the long trace: R2 = {:.3}",
        metrics::r2(&report.ground_truth, &report.power_trace)
    );

    // Print a small piece of the power trace (the paper's Figure 16).
    println!("\nper-cycle power excerpt (truth vs APOLLO):");
    for c in (4000..4200).step_by(20) {
        let bar = "#".repeat((report.power_trace[c] / 120.0) as usize);
        println!(
            "  cycle {:>5}  truth {:>7.0}  apollo {:>7.0}  {bar}",
            c, report.ground_truth[c], report.power_trace[c]
        );
    }
}
