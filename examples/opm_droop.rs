//! Runtime side of APOLLO: quantize a trained model to B-bit weights,
//! generate the on-chip power meter hardware (paper Figure 8),
//! co-simulate it bit-exactly, and use its per-cycle output for
//! proactive Ldi/dt voltage-droop mitigation (paper §8.2).
//!
//! Run with: `cargo run --release --example opm_droop`

use apollo_suite::core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::opm::droop::{mitigate, DroopAnalysis, PdnModel};
use apollo_suite::opm::{build_opm, AreaReport, QuantizedOpm};

fn main() {
    // Train a model (see `quickstart` for details).
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let train: Vec<_> = vec![
        (benchmarks::maxpwr_cpu(), 400),
        (benchmarks::dhrystone(), 400),
        (benchmarks::saxpy_simd(), 400),
        (benchmarks::cache_miss(&config), 300),
    ];
    let trace = ctx.capture_suite(&train, 30);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 24,
            ..TrainOptions::default()
        },
    )
    .model;

    // --- Quantize to a hardware spec (Q proxies, B-bit weights, T) ----
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    println!(
        "OPM spec: Q = {}, B = {} bits, T = {} cycles; accumulator {} bits",
        quant.spec.q,
        quant.spec.b,
        quant.spec.t,
        quant.spec.accumulator_bits()
    );

    // --- Generate the Figure-8 hardware and measure its cost ----------
    let hw = build_opm(&quant).expect("build_opm");
    let report = AreaReport::from_areas(&hw, ctx.netlist());
    println!(
        "OPM hardware: {} netlist nodes, {:.0} gate-equivalents ({:.2}% of the host CPU)",
        hw.netlist.len(),
        report.opm_ge,
        100.0 * report.area_overhead
    );

    // --- Bit-exact co-simulation against the software model -----------
    let bench = benchmarks::throttling(1);
    let proxy_trace = ctx.capture_bits(&bench, &model.bits(), 600, 30);
    let cosim = hw.cosim(&proxy_trace.toggles);
    let reference = quant.window_outputs_proxy(&proxy_trace.toggles);
    assert_eq!(
        cosim.windows, reference,
        "hardware == software, bit for bit"
    );
    println!(
        "co-simulation: {} windows match the software reference exactly; OPM power {:.1} units",
        cosim.windows.len(),
        cosim.mean_power.total
    );

    // --- Per-cycle ΔI for droop prediction (Figure 17) ----------------
    let full = ctx.capture_suite(&[(benchmarks::maxpwr_l2(&config), 800)], 30);
    let est = quant.predict_cycles(&full.toggles);
    let truth = full.labels();
    let analysis = DroopAnalysis::analyze(&est, &truth, 0.95);
    println!(
        "delta-I agreement: Pearson {:.3}, droop-precursor recall {:.0}%",
        analysis.pearson,
        100.0 * analysis.droop_recall
    );

    // --- Close the loop: OPM-triggered adaptive clocking ---------------
    let pdn = PdnModel::default();
    let mitigation = mitigate(&pdn, &est, &truth, 0.12, 0.03, 10, 0.93);
    println!(
        "droop mitigation: Vmin {:.3} -> {:.3} V, violations {} -> {} ({} throttled cycles)",
        mitigation.vmin_baseline,
        mitigation.vmin_mitigated,
        mitigation.violations_baseline,
        mitigation.violations_mitigated,
        mitigation.throttled_cycles
    );
}
