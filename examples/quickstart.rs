//! Quickstart: train an APOLLO power model for a CPU design and use it
//! for per-cycle power prediction on an unseen workload.
//!
//! Run with: `cargo run --release --example quickstart`

use apollo_suite::core::{
    train_per_cycle, DesignContext, FeatureSpace, SelectionPenalty, TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::mlkit::metrics;

fn main() {
    // 1. Build a CPU design and annotate parasitics. `tiny()` keeps the
    //    example fast; use `CpuConfig::neoverse_like()` for the
    //    evaluation-scale core.
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    println!(
        "design `{}`: {} RTL nodes, M = {} signal bits",
        config.name,
        ctx.netlist().len(),
        ctx.m_bits()
    );

    // 2. Capture training data: per-cycle signal toggles (features) and
    //    ground-truth power (labels) over a few workloads. The full
    //    framework generates these workloads automatically with a
    //    genetic algorithm (see the `design_time_flow` example).
    let train_suite: Vec<_> = vec![
        (benchmarks::dhrystone(), 400),
        (benchmarks::maxpwr_cpu(), 400),
        (benchmarks::daxpy(), 400),
        (benchmarks::memcpy_l2(&config), 400),
    ];
    let trace = ctx.capture_suite(&train_suite, 30);
    println!(
        "training trace: {} cycles x {} signal bits",
        trace.n_cycles(),
        trace.toggles.m_bits()
    );

    // 3. Select power proxies with MCP regression and train the linear
    //    model (selection + ridge relaxation).
    let fs = FeatureSpace::build(&trace.toggles);
    let trained = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 24,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            ..TrainOptions::default()
        },
    );
    let model = &trained.model;
    println!(
        "selected Q = {} proxies ({:.3}% of all signals); intercept {:.1}",
        model.q(),
        100.0 * model.monitored_fraction(),
        model.intercept
    );
    for proxy in model.proxies.iter().take(5) {
        println!(
            "  proxy {:<28} unit {:<16} weight {:.1}",
            proxy.name,
            proxy.unit.label(),
            proxy.weight
        );
    }

    // 4. Predict per-cycle power on an unseen workload and score it.
    let test_suite: Vec<_> = vec![(benchmarks::saxpy_simd(), 500)];
    let test = ctx.capture_suite(&test_suite, 30);
    let pred = model.predict_full(&test.toggles);
    let truth = test.labels();
    println!(
        "held-out `saxpy_simd`: R2 = {:.3}, NRMSE = {:.1}%, NMAE = {:.1}%",
        metrics::r2(&truth, &pred),
        100.0 * metrics::nrmse(&truth, &pred),
        100.0 * metrics::nmae(&truth, &pred)
    );
    for cycle in (0..20).step_by(4) {
        println!(
            "  cycle {:>3}: truth {:>8.1}  predicted {:>8.1}",
            cycle, truth[cycle], pred[cycle]
        );
    }
}
