//! Multi-cycle power tracing for DVFS-style management (paper §4.5):
//! train an APOLLOτ model on interval-averaged data and read power at
//! coarse window sizes with the same per-cycle hardware (Eq. 9).
//!
//! Run with: `cargo run --release --example multicycle_dvfs`

use apollo_suite::core::{
    train_per_cycle, train_tau, window_average, window_nrmse, DesignContext, FeatureSpace,
    TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};

fn main() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let train: Vec<_> = vec![
        (benchmarks::dhrystone(), 512),
        (benchmarks::maxpwr_cpu(), 512),
        (benchmarks::daxpy(), 512),
        (benchmarks::memcpy_l2(&config), 512),
    ];
    let trace = ctx.capture_suite(&train, 30);
    let fs = FeatureSpace::build(&trace.toggles);
    let opts = TrainOptions {
        q_target: 20,
        ..TrainOptions::default()
    };

    // Per-cycle model (window prediction = average of per-cycle ones)
    // versus APOLLOτ trained at τ = 8 (the paper's best interval).
    let per_cycle = train_per_cycle(&trace, ctx.netlist(), &fs, &opts).model;
    let tau8 = train_tau(&trace, ctx.netlist(), &fs, 8, &opts);
    println!(
        "per-cycle model Q = {}, APOLLO-tau(8) Q = {}",
        per_cycle.q(),
        tau8.q()
    );

    // Held-out workload; score both at several window sizes.
    let test = ctx.capture_suite(&[(benchmarks::saxpy_simd(), 1024)], 30);
    let labels = test.labels();
    let pc_pred = per_cycle.predict_full(&test.toggles);

    println!("\nNRMSE by measurement window (held-out `saxpy_simd`):");
    println!("  T      per-cycle-avg   APOLLO-tau(8)");
    for t in [4usize, 8, 16, 32, 64] {
        let avg = window_average(&pc_pred, t);
        let e_avg = window_nrmse(&avg, &labels, t);
        let tau_pred = tau8.predict_windows(&test.toggles, t);
        let e_tau = window_nrmse(&tau_pred, &labels, t);
        println!(
            "  {:<5}  {:>10.1}%   {:>10.1}%",
            t,
            100.0 * e_avg,
            100.0 * e_tau
        );
    }

    // A DVFS governor view: 64-cycle power epochs over the workload.
    let epochs = tau8.predict_windows(&test.toggles, 64);
    let truth = window_average(&labels, 64);
    println!("\n64-cycle power epochs (what an OS governor would read):");
    for (k, (p, t)) in epochs.iter().zip(&truth).take(8).enumerate() {
        println!("  epoch {:>2}: estimated {:>8.1}  true {:>8.1}", k, p, t);
    }
}
