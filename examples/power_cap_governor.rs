//! Runtime power management with the OPM: a bang-bang power-cap
//! governor that throttles the core's issue rate from meter readings
//! alone — the paper's DVFS-style runtime-management use case.
//!
//! Run with: `cargo run --release --example power_cap_governor`

use apollo_suite::core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::opm::{run_governed, GovernorConfig, QuantizedOpm};

fn main() {
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = vec![
        (benchmarks::maxpwr_cpu(), 400),
        (benchmarks::saxpy_simd(), 400),
        (benchmarks::dhrystone(), 300),
    ];
    let trace = ctx.capture_suite(&suite, 150);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 20,
            ..TrainOptions::default()
        },
    )
    .model;
    let opm = QuantizedOpm::from_model(&model, 10, 32).expect("quantization");

    let bench = benchmarks::maxpwr_cpu();
    let free_power = ctx.mean_power(&bench.program, &bench.data, 100, 400);
    println!("free-running power-virus mean power: {free_power:.0}");

    for cap_frac in [0.9, 0.75, 0.6] {
        let cap = free_power * cap_frac;
        let r = run_governed(
            &ctx.handles,
            &ctx.cap,
            &opm,
            &bench.program,
            &bench.data,
            1024,
            &GovernorConfig {
                epoch: 32,
                cap,
                ..GovernorConfig::default()
            },
        );
        println!(
            "cap {:>6.0}: governed power {:>6.0} ({} of {} epochs over cap; free: {}), IPC ratio {:.2}, throttle levels {:?}",
            cap,
            r.mean_power_governed,
            (r.epochs_over_cap * r.throttle_trace.len() as f64).round() as usize,
            r.throttle_trace.len(),
            (r.epochs_over_cap_free * r.throttle_trace.len() as f64).round() as usize,
            r.retired_governed as f64 / r.retired_free.max(1) as f64,
            &r.throttle_trace[..8.min(r.throttle_trace.len())]
        );
    }
}
