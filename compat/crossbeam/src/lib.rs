//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` and `Scope::spawn` are provided — the
//! surface the workspace uses for fork/join fan-out — implemented on top
//! of `std::thread::scope` (stable since Rust 1.63, which makes the real
//! crossbeam implementation unnecessary here).

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and spawned workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the worker closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// Unlike crossbeam, worker panics propagate out of `scope` directly
    /// (std semantics) rather than being collected into the `Err` variant
    /// — callers that `.expect()` the result observe a panic either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_workers() {
        let counter = AtomicUsize::new(0);
        let out = vec![0usize; 8];
        let mut out = out;
        crate::thread::scope(|s| {
            for (i, slot) in out.chunks_mut(2).enumerate() {
                let counter = &counter;
                s.spawn(move |_| {
                    for v in slot.iter_mut() {
                        *v = i;
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21usize);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
