//! Offline, API-compatible subset of the `rand` crate.
//!
//! The container this repository builds in has no network access and an
//! empty cargo registry, so the real `rand` cannot be fetched. This crate
//! implements the exact surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool, fill}` —
//! over a xoshiro256** generator. Streams are deterministic and stable
//! across runs and platforms, but are **not** the same streams the real
//! `rand` crate would produce; nothing in the workspace depends on the
//! specific values, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`]. Generic over the element
/// type (rather than using an associated type) so untyped integer
/// literals in `gen_range(0..4)` unify with the caller's expected type,
/// matching real-rand inference behavior.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Generators constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`]; provided for API compatibility.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
