//! Offline, API-compatible subset of `proptest`.
//!
//! Covers the surface the workspace tests use: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`
//! macros, `any::<T>()`, range strategies, `Just`, `prop::sample::select`,
//! `prop::collection::vec`, tuple strategies, and `.prop_map`.
//!
//! Shrinking is implemented with lazy value trees: every strategy
//! produces a [`strategy::Tree`] whose children enumerate progressively
//! simpler candidate inputs (integers binary-search toward the range
//! low bound, vectors drop elements then shrink survivors, `select`
//! walks toward index 0, mapped/tuple trees shrink componentwise). The
//! runner greedily descends into the simplest child that still fails,
//! so reported counterexamples are locally minimal.
//!
//! Case generation is deterministic (fixed seed per test function), so
//! failures reproduce without persistence files.

pub mod strategy {
    use std::fmt::Debug;
    use std::rc::Rc;

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generated value plus a lazy enumeration of simpler candidates
    /// (simplest first).
    pub struct Tree<V> {
        /// The concrete value for this node.
        pub value: V,
        children: Rc<dyn Fn() -> Vec<Tree<V>>>,
    }

    impl<V: Clone> Clone for Tree<V> {
        fn clone(&self) -> Self {
            Tree {
                value: self.value.clone(),
                children: Rc::clone(&self.children),
            }
        }
    }

    impl<V: 'static> Tree<V> {
        /// A leaf with no simpler candidates.
        pub fn leaf(value: V) -> Self {
            Tree {
                value,
                children: Rc::new(Vec::new),
            }
        }

        /// A node whose shrink candidates are produced lazily.
        pub fn with_children(value: V, children: impl Fn() -> Vec<Tree<V>> + 'static) -> Self {
            Tree {
                value,
                children: Rc::new(children),
            }
        }

        /// Materializes the shrink candidates for this node.
        pub fn children(&self) -> Vec<Tree<V>> {
            (self.children)()
        }
    }

    /// Maps a tree through `f`, preserving its shrink structure.
    pub fn map_tree<V, U, F>(tree: Tree<V>, f: F) -> Tree<U>
    where
        V: Clone + 'static,
        U: 'static,
        F: Fn(V) -> U + Clone + 'static,
    {
        let value = f(tree.value.clone());
        Tree::with_children(value, move || {
            let f = f.clone();
            tree.children()
                .into_iter()
                .map(move |c| map_tree(c, f.clone()))
                .collect()
        })
    }

    /// A generator of shrinkable values.
    pub trait Strategy: Clone {
        /// The type of values this strategy produces.
        type Value: Clone + Debug + 'static;

        /// Draws a fresh value tree.
        fn new_tree(&self, rng: &mut TestRng) -> Tree<Self::Value>;

        /// Transforms produced values (shrinks still happen in the
        /// source domain, then map through `f`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Clone + Debug + 'static,
            F: Fn(Self::Value) -> U + Clone + 'static,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type; used by `prop_oneof!` so
        /// heterogeneous arms with a common value type can be unioned.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Rc::new(self)
        }
    }

    /// Type-erased strategy handle (see [`Strategy::boxed`]).
    pub type BoxedStrategy<V> = Rc<dyn DynStrategy<V>>;

    /// Object-safe strategy facade used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Draws a fresh value tree.
        fn dyn_new_tree(&self, rng: &mut TestRng) -> Tree<V>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_tree(&self, rng: &mut TestRng) -> Tree<S::Value> {
            self.new_tree(rng)
        }
    }

    /// Strategy that always yields one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone + Debug + 'static> Strategy for Just<V> {
        type Value = V;
        fn new_tree(&self, _rng: &mut TestRng) -> Tree<V> {
            Tree::leaf(self.0.clone())
        }
    }

    /// `.prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + Debug + 'static,
        F: Fn(S::Value) -> U + Clone + 'static,
    {
        type Value = U;
        fn new_tree(&self, rng: &mut TestRng) -> Tree<U> {
            map_tree(self.inner.new_tree(rng), self.f.clone())
        }
    }

    /// `prop_oneof!` support: picks one of several same-valued
    /// strategies uniformly; shrinking stays within the chosen arm.
    pub struct Union<V> {
        arms: Rc<Vec<Rc<dyn DynStrategy<V>>>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: Rc::clone(&self.arms),
            }
        }
    }

    impl<V> Union<V> {
        /// Builds a union from type-erased arms.
        pub fn new(arms: Vec<Rc<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union {
                arms: Rc::new(arms),
            }
        }
    }

    impl<V: Clone + Debug + 'static> Strategy for Union<V> {
        type Value = V;
        fn new_tree(&self, rng: &mut TestRng) -> Tree<V> {
            let idx = rng.inner.gen_range(0..self.arms.len());
            self.arms[idx].dyn_new_tree(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_tree(&self, rng: &mut TestRng) -> Tree<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = rng.inner.gen_range(self.clone());
                    int_tree(self.start, v)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_tree(&self, rng: &mut TestRng) -> Tree<$t> {
                    let v = rng.inner.gen_range(self.clone());
                    int_tree(*self.start(), v)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Integer shrink tree: candidates are the low bound, the midpoint
    /// toward the low bound, and the predecessor — recursively.
    pub fn int_tree<T>(low: T, v: T) -> Tree<T>
    where
        T: IntShrink + Clone + Debug + 'static,
    {
        Tree::with_children(v.clone(), move || {
            let mut out = Vec::new();
            let mut push = |cand: T| {
                if cand != v && !out.iter().any(|t: &Tree<T>| t.value == cand) {
                    out.push(int_tree(low.clone(), cand));
                }
            };
            if low != v {
                push(low.clone());
                push(T::midpoint(&low, &v));
                push(v.step_toward(&low));
            }
            out
        })
    }

    /// Midpoint/step arithmetic needed by integer shrinking.
    pub trait IntShrink: PartialEq {
        /// Value halfway between `low` and `self` (rounded toward `low`).
        fn midpoint(low: &Self, v: &Self) -> Self;
        /// `self` moved one step toward `low`.
        fn step_toward(&self, low: &Self) -> Self;
    }

    macro_rules! int_shrink {
        ($($t:ty => $wide:ty),*) => {$(
            impl IntShrink for $t {
                fn midpoint(low: &Self, v: &Self) -> Self {
                    let l = *low as $wide;
                    let h = *v as $wide;
                    (l + (h - l) / 2) as $t
                }
                fn step_toward(&self, low: &Self) -> Self {
                    if self > low { self - 1 } else { self + 1 }
                }
            }
        )*};
    }
    int_shrink!(u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
                i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_tree(&self, rng: &mut TestRng) -> Tree<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = rng.inner.gen_range(self.clone());
                    float_tree(self.start as f64, v as f64)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    fn float_tree<T>(low: f64, v: f64) -> Tree<T>
    where
        T: Clone + Debug + 'static + FromF64,
    {
        Tree::with_children(T::from_f64(v), move || {
            let mut out = Vec::new();
            if v != low {
                out.push(float_tree(low, low));
                let mid = low + (v - low) / 2.0;
                if mid != low && mid != v {
                    out.push(float_tree(low, mid));
                }
            }
            out
        })
    }

    /// Narrowing used by the shared float shrink tree.
    pub trait FromF64 {
        /// Converts from the f64 shrink domain.
        fn from_f64(v: f64) -> Self;
    }
    impl FromF64 for f64 {
        fn from_f64(v: f64) -> Self {
            v
        }
    }
    impl FromF64 for f32 {
        fn from_f64(v: f64) -> Self {
            v as f32
        }
    }

    macro_rules! tuple_strategy {
        ($($tree_fn:ident : ($($s:ident / $v:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_tree(&self, rng: &mut TestRng) -> Tree<Self::Value> {
                    $(let $v = self.$idx.new_tree(rng);)+
                    $tree_fn(($($v,)+))
                }
            }

            #[allow(non_snake_case)]
            fn $tree_fn<$($s: Clone + Debug + 'static),+>(
                trees: ($(Tree<$s>,)+),
            ) -> Tree<($($s,)+)> {
                let value = ($(trees.$idx.value.clone(),)+);
                Tree::with_children(value, move || {
                    let mut out = Vec::new();
                    $(
                        for child in trees.$idx.children() {
                            let mut next = trees.clone();
                            next.$idx = child;
                            out.push($tree_fn(next));
                        }
                    )+
                    out
                })
            }
        )*};
    }
    tuple_strategy! {
        tuple_tree1: (A1/a1: 0)
        tuple_tree2: (A2/a2: 0, B2/b2: 1)
        tuple_tree3: (A3/a3: 0, B3/b3: 1, C3/c3: 2)
        tuple_tree4: (A4/a4: 0, B4/b4: 1, C4/c4: 2, D4/d4: 3)
        tuple_tree5: (A5/a5: 0, B5/b5: 1, C5/c5: 2, D5/d5: 3, E5/e5: 4)
        tuple_tree6: (A6/a6: 0, B6/b6: 1, C6/c6: 2, D6/d6: 3, E6/e6: 4, F6/f6: 5)
    }
}

pub mod arbitrary {
    use super::strategy::{int_tree, Strategy, Tree};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain integer strategy (shrinks toward zero).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn new_tree(&self, rng: &mut TestRng) -> Tree<$t> {
                    int_tree(0, rng.inner.gen::<$t>())
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-domain bool strategy (shrinks toward `false`).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_tree(&self, rng: &mut TestRng) -> Tree<bool> {
            let v = rng.inner.gen::<bool>();
            if v {
                Tree::with_children(true, || vec![Tree::leaf(false)])
            } else {
                Tree::leaf(false)
            }
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

pub mod sample {
    use super::strategy::{Strategy, Tree};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// Uniformly selects one of the given items; shrinks toward the
    /// first item.
    pub fn select<T: Clone + Debug + 'static>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select {
            items: Rc::new(items),
        }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T> {
        items: Rc<Vec<T>>,
    }

    impl<T: Clone + Debug + 'static> Strategy for Select<T> {
        type Value = T;
        fn new_tree(&self, rng: &mut TestRng) -> Tree<T> {
            let idx = rng.inner.gen_range(0..self.items.len());
            select_tree(Rc::clone(&self.items), idx)
        }
    }

    fn select_tree<T: Clone + Debug + 'static>(items: Rc<Vec<T>>, idx: usize) -> Tree<T> {
        Tree::with_children(items[idx].clone(), move || {
            let mut out = Vec::new();
            let mut push = |cand: usize| {
                if cand != idx && !out.iter().any(|&(i, _)| i == cand) {
                    out.push((cand, select_tree(Rc::clone(&items), cand)));
                }
            };
            if idx > 0 {
                push(0);
                push(idx / 2);
                push(idx - 1);
            }
            out.into_iter().map(|(_, t)| t).collect()
        })
    }
}

pub mod collection {
    use super::strategy::{Strategy, Tree};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates vectors of values from `element`; shrinking drops
    /// elements (respecting the minimum length) and simplifies the
    /// survivors.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_tree(&self, rng: &mut TestRng) -> Tree<Self::Value> {
            let len = rng.inner.gen_range(self.size.min..=self.size.max);
            let elems: Vec<Tree<S::Value>> = (0..len).map(|_| self.element.new_tree(rng)).collect();
            vec_tree(elems, self.size.min)
        }
    }

    fn vec_tree<V: Clone + Debug + 'static>(elems: Vec<Tree<V>>, min: usize) -> Tree<Vec<V>> {
        let value: Vec<V> = elems.iter().map(|t| t.value.clone()).collect();
        Tree::with_children(value, move || {
            let mut out = Vec::new();
            let len = elems.len();
            // Structural shrinks: drop down to the minimum, halve, drop
            // single elements from the back.
            if len > min {
                out.push(vec_tree(elems[..min].to_vec(), min));
                let half = (len + min) / 2;
                if half != min && half != len {
                    out.push(vec_tree(elems[..half].to_vec(), min));
                }
                if len - 1 != min && len - 1 != (len + min) / 2 {
                    out.push(vec_tree(elems[..len - 1].to_vec(), min));
                }
            }
            // Element shrinks (a few candidates per slot keeps the
            // greedy descent bounded).
            for (i, elem) in elems.iter().enumerate() {
                for child in elem.children().into_iter().take(3) {
                    let mut next = elems.clone();
                    next[i] = child;
                    out.push(vec_tree(next, min));
                }
            }
            out
        })
    }
}

pub mod test_runner {
    use super::strategy::{Strategy, Tree};
    use std::fmt::Debug;
    use std::panic::AssertUnwindSafe;

    /// Deterministic RNG used for case generation.
    pub struct TestRng {
        pub(crate) inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A deterministic generator (fixed seed: failures reproduce
        /// run-to-run without persistence files).
        pub fn deterministic() -> Self {
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(0x41504F4C4C4F5054),
            }
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Max `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
        /// Max shrink candidates examined after a failure.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 4096,
                max_shrink_iters: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Config with a specific case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Failure raised by `prop_assert!` / `prop_assume!`.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    /// Result type the `proptest!`-generated closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    enum Outcome {
        Pass,
        Reject,
        Fail(String),
    }

    fn exec<V, F>(test: &F, value: V) -> Outcome
    where
        F: Fn(V) -> TestCaseResult,
    {
        match std::panic::catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => Outcome::Pass,
            Ok(Err(TestCaseError::Reject(_))) => Outcome::Reject,
            Ok(Err(TestCaseError::Fail(msg))) => Outcome::Fail(msg),
            Err(payload) => Outcome::Fail(panic_message(payload)),
        }
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panic: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panic: {s}")
        } else {
            "panic (non-string payload)".to_owned()
        }
    }

    /// Greedy descent: repeatedly move to the simplest child that still
    /// fails, within the shrink budget.
    fn shrink<V, F>(mut tree: Tree<V>, test: &F, mut budget: u32, msg: String) -> (V, String)
    where
        V: Clone + 'static,
        F: Fn(V) -> TestCaseResult,
    {
        let mut msg = msg;
        'descend: while budget > 0 {
            for child in tree.children() {
                if budget == 0 {
                    break 'descend;
                }
                budget -= 1;
                if let Outcome::Fail(m) = exec(test, child.value.clone()) {
                    msg = m;
                    tree = child;
                    continue 'descend;
                }
            }
            break;
        }
        (tree.value, msg)
    }

    /// Runs `cfg.cases` random cases of `test` over `strategy`,
    /// shrinking and panicking on the first failure.
    pub fn run<S, F>(cfg: &ProptestConfig, strategy: S, test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::deterministic();
        let mut rejects = 0u32;
        let mut passed = 0u32;
        while passed < cfg.cases {
            let tree = strategy.new_tree(&mut rng);
            match exec(&test, tree.value.clone()) {
                Outcome::Pass => passed += 1,
                Outcome::Reject => {
                    rejects += 1;
                    assert!(
                        rejects <= cfg.max_global_rejects,
                        "proptest: too many prop_assume! rejections ({rejects})"
                    );
                }
                Outcome::Fail(msg) => {
                    let (min, min_msg) = shrink(tree, &test, cfg.max_shrink_iters, msg);
                    panic!(
                        "proptest: test failed after {passed} passing case(s)\n\
                         minimal failing input: {min:?}\n{min_msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over random inputs, shrinking
/// failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::test_runner::run(&cfg, strat, move |($($arg,)+)| {
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (failure triggers
/// shrinking rather than aborting the test binary).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    let extra = format!($($fmt)*);
                    let sep = if extra.is_empty() { "" } else { ": " };
                    return Err($crate::test_runner::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`{}{}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), sep, extra, l, r
                    )));
                }
            }
        }
    };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type; shrinking stays within the selected arm.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_respect_bounds(a in 3u8..17, b in -5i16..6, x in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..6).contains(&b));
            prop_assert!((0.5..2.0).contains(&x));
        }

        fn vec_sizes(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn shrinks_to_minimal_failure() {
        // Property "n < 40" fails for n >= 40; minimal counterexample
        // under binary shrinking toward 0 is exactly 40.
        let cfg = ProptestConfig::with_cases(256);
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(&cfg, (0u32..1000,), |(n,)| {
                if n >= 40 {
                    return Err(TestCaseError::Fail(format!("{n} too big")));
                }
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("panic message"),
            Ok(()) => panic!("runner should have failed"),
        };
        assert!(
            msg.contains("minimal failing input: (40,)"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn oneof_and_select_generate_all_arms() {
        let strat = prop_oneof![Just(0u8), 1u8..4, crate::sample::select(vec![9u8, 10u8]),];
        let mut rng = TestRng::deterministic();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.new_tree(&mut rng).value);
        }
        assert!(seen.contains(&0));
        assert!(seen.iter().any(|&v| (1..4).contains(&v)));
        assert!(seen.contains(&9) || seen.contains(&10));
    }

    #[test]
    fn prop_map_shrinks_through_mapping() {
        // Map doubles the value; failing predicate "v < 80" on doubled
        // values shrinks the *source*, so the minimal failure is 80.
        let strat = ((0u32..1000).prop_map(|v| v * 2),);
        let cfg = ProptestConfig::with_cases(256);
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(&cfg, strat, |(v,)| {
                if v >= 80 {
                    return Err(TestCaseError::Fail("too big".into()));
                }
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("panic message"),
            Ok(()) => panic!("runner should have failed"),
        };
        assert!(
            msg.contains("minimal failing input: (80,)"),
            "unexpected message: {msg}"
        );
    }
}
