//! `#[derive(Serialize, Deserialize)]` for the local serde compat crate.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this macro parses the item declaration directly
//! from the token stream (attributes, visibility, generics, fields) and
//! emits the impl as source text. Supported shapes — all the workspace
//! uses — are: structs with named fields, tuple/newtype structs, unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Representation conventions follow serde: structs become objects,
//! newtypes are transparent, enums are externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Raw generics with bounds, e.g. `<P: serde::Serialize>` (empty if
    /// the item is not generic).
    generics_decl: String,
    /// Bare parameter list, e.g. `<P>`.
    generics_use: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consumes leading `#[...]` attributes and `pub` / `pub(...)`
/// visibility from `tts[*pos..]`.
fn skip_attrs_and_vis(tts: &[TokenTree], pos: &mut usize) {
    loop {
        if *pos < tts.len() && is_punct(&tts[*pos], '#') {
            *pos += 1; // '#'
            if *pos < tts.len()
                && matches!(&tts[*pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                *pos += 1;
                continue;
            }
            panic!("serde_derive: malformed attribute");
        }
        if *pos < tts.len() && is_ident(&tts[*pos], "pub") {
            *pos += 1;
            if *pos < tts.len()
                && matches!(&tts[*pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                *pos += 1;
            }
            continue;
        }
        break;
    }
}

/// Advances past a type (or expression) to the next top-level comma,
/// tracking `<`/`>` nesting so commas inside generics don't terminate
/// early. Leaves `pos` at the comma (or end).
fn skip_to_top_level_comma(tts: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while *pos < tts.len() {
        match &tts[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Parses `ident : Type ,` lists inside a brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tts.len() {
        skip_attrs_and_vis(&tts, &mut pos);
        if pos >= tts.len() {
            break;
        }
        let TokenTree::Ident(name) = &tts[pos] else {
            panic!("serde_derive: expected field name, got {:?}", tts[pos]);
        };
        fields.push(name.to_string());
        pos += 1;
        assert!(
            pos < tts.len() && is_punct(&tts[pos], ':'),
            "serde_derive: expected `:` after field name"
        );
        pos += 1;
        skip_to_top_level_comma(&tts, &mut pos);
        pos += 1; // consume the comma (or run off the end)
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tts: Vec<TokenTree> = group.into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut n = 0;
    while pos < tts.len() {
        skip_attrs_and_vis(&tts, &mut pos);
        if pos >= tts.len() {
            break;
        }
        n += 1;
        skip_to_top_level_comma(&tts, &mut pos);
        pos += 1;
    }
    n
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tts.len() {
        skip_attrs_and_vis(&tts, &mut pos);
        if pos >= tts.len() {
            break;
        }
        let TokenTree::Ident(name) = &tts[pos] else {
            panic!("serde_derive: expected variant name, got {:?}", tts[pos]);
        };
        let name = name.to_string();
        pos += 1;
        let shape = if pos < tts.len() {
            match &tts[pos] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let s = Shape::Named(parse_named_fields(g.stream()));
                    pos += 1;
                    s
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let s = Shape::Tuple(count_tuple_fields(g.stream()));
                    pos += 1;
                    s
                }
                _ => Shape::Unit,
            }
        } else {
            Shape::Unit
        };
        // Skip an optional discriminant (`= expr`) up to the separating
        // comma.
        skip_to_top_level_comma(&tts, &mut pos);
        pos += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tts, &mut pos);
    let is_enum = if is_ident(&tts[pos], "struct") {
        false
    } else if is_ident(&tts[pos], "enum") {
        true
    } else {
        panic!("serde_derive: only structs and enums are supported");
    };
    pos += 1;
    let TokenTree::Ident(name) = &tts[pos] else {
        panic!("serde_derive: expected item name");
    };
    let name = name.to_string();
    pos += 1;

    // Generics, captured verbatim for the impl header.
    let mut generics_decl = String::new();
    let mut generics_use = String::new();
    if pos < tts.len() && is_punct(&tts[pos], '<') {
        let mut depth = 0i32;
        let mut decl = String::from("<");
        let mut params: Vec<String> = Vec::new();
        let mut expect_param = true;
        pos += 1;
        depth += 1;
        while pos < tts.len() && depth > 0 {
            match &tts[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    decl.push('<');
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    decl.push('>');
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    decl.push(',');
                    expect_param = true;
                }
                tt => {
                    if expect_param {
                        if let TokenTree::Ident(i) = tt {
                            params.push(i.to_string());
                            expect_param = false;
                        }
                    }
                    decl.push_str(&tt.to_string());
                    // No space after punctuation so joint tokens like
                    // `::` survive the round-trip through text.
                    if !matches!(tt, TokenTree::Punct(_)) {
                        decl.push(' ');
                    }
                }
            }
            pos += 1;
        }
        generics_decl = decl;
        generics_use = format!("<{}>", params.join(", "));
    }

    // Body: `;`, `( ... ) ;`, or `{ ... }`.
    let kind = loop {
        match &tts[pos] {
            TokenTree::Punct(p) if p.as_char() == ';' => break ItemKind::Struct(Shape::Unit),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                break ItemKind::Struct(Shape::Tuple(count_tuple_fields(g.stream())));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    ItemKind::Enum(parse_variants(g.stream()))
                } else {
                    ItemKind::Struct(Shape::Named(parse_named_fields(g.stream())))
                };
            }
            // `where` clauses and trailing generics debris are skipped.
            _ => pos += 1,
        }
    };

    Item {
        name,
        generics_decl,
        generics_use,
        kind,
    }
}

fn serialize_impl(item: &Item) -> String {
    let head = format!(
        "impl{} serde::Serialize for {}{}",
        item.generics_decl, item.name, item.generics_use
    );
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => "serde::Value::Null".to_owned(),
        ItemKind::Struct(Shape::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_owned(),
        ItemKind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let elems: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_owned(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", elems.join(", "))
        }
        ItemKind::Enum(variants) => {
            let ty = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{ty}::{vn} => serde::Value::Str({vn:?}.to_owned()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{ty}::{vn}(x0) => serde::Value::Object(vec![({vn:?}.to_owned(), \
                             serde::Serialize::to_value(x0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => serde::Value::Object(vec![({vn:?}.to_owned(), \
                                 serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let elems: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_owned(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {} }} => serde::Value::Object(vec![({vn:?}.to_owned(), \
                                 serde::Value::Object(vec![{}]))]),",
                                fields.join(", "),
                                elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!("{head} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}")
}

fn deserialize_impl(item: &Item) -> String {
    assert!(
        item.generics_decl.is_empty(),
        "serde_derive: Deserialize on generic items is not supported by the compat derive"
    );
    let ty = &item.name;
    let head = format!("impl serde::Deserialize for {ty}");
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => format!("{{ let _ = v; Ok({ty}) }}"),
        ItemKind::Struct(Shape::Tuple(1)) => {
            format!("{{ Ok({ty}(serde::Deserialize::from_value(v)?)) }}")
        }
        ItemKind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         serde::DeError::msg(\"{ty}: tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "{{ match v {{ serde::Value::Array(items) => Ok({ty}({})), other => \
                 Err(serde::DeError::msg(format!(\"{ty}: expected array, got {{other:?}}\"))) }} }}",
                elems.join(", ")
            )
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let elems: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get({f:?}).ok_or_else(|| \
                         serde::DeError::msg(\"{ty}: missing field `{f}`\"))?)?"
                    )
                })
                .collect();
            format!("{{ Ok({ty} {{ {} }}) }}", elems.join(", "))
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({ty}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => Ok({ty}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                                     serde::DeError::msg(\"{ty}::{vn}: tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => match inner {{ serde::Value::Array(items) => \
                             Ok({ty}::{vn}({})), other => Err(serde::DeError::msg(format!(\
                             \"{ty}::{vn}: expected array, got {{other:?}}\"))) }},\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(inner.get({f:?})\
                                     .ok_or_else(|| serde::DeError::msg(\
                                     \"{ty}::{vn}: missing field `{f}`\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => Ok({ty}::{vn} {{ {} }}),\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{{ match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(serde::DeError::msg(format!(\"{ty}: unknown variant `{{other}}`\"))),\n\
                 }},\n\
                 serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(serde::DeError::msg(format!(\"{ty}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::DeError::msg(format!(\"{ty}: unexpected value {{other:?}}\"))),\n\
                 }} }}"
            )
        }
    };
    format!("{head} {{ fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {body} }}")
}

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl did not parse")
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl did not parse")
}
