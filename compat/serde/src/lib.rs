//! Offline, API-compatible subset of `serde`.
//!
//! The real serde's serializer-generic architecture is replaced by a
//! concrete value tree ([`Value`]): `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one, and the companion `serde_json`
//! compat crate converts values to and from JSON text. The
//! `#[derive(Serialize, Deserialize)]` macros come from the local
//! `serde_derive` proc-macro crate and follow serde's conventions
//! (structs as objects, newtypes transparent, enums externally tagged),
//! so existing derive annotations in the workspace compile unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the single data model all
/// serialization in this workspace flows through).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::Int(v as i64) } else { Value::UInt(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match *v {
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::UInt(u) => u,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(DeError::msg(format!(
                        "expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(
                    format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::msg(format!("{u} exceeds i64")))?,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::msg(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(
                    format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(DeError::msg(format!(
                        "expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(it.next().ok_or_else(|| {
                                DeError::msg("tuple too short")
                            })?)?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::msg(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: fmt::Display + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for std::ops::Range<usize> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start.to_value()),
            ("end".to_owned(), self.end.to_value()),
        ])
    }
}

impl Deserialize for std::ops::Range<usize> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let start = usize::from_value(v.get("start").ok_or_else(|| DeError::msg("range.start"))?)?;
        let end = usize::from_value(v.get("end").ok_or_else(|| DeError::msg("range.end"))?)?;
        Ok(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i16::from_value(&(-7i16).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let rt = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(rt, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1usize);
        m.insert("b".to_owned(), 2usize);
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);

        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn large_u64_uses_uint() {
        let big = u64::MAX;
        assert_eq!(big.to_value(), Value::UInt(big));
        assert_eq!(u64::from_value(&Value::UInt(big)).unwrap(), big);
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }
}
