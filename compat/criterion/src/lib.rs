//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the workspace benches use
//! (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros) with a
//! simple wall-clock harness: each benchmark is warmed up, then timed
//! over `sample_size` samples with per-sample iteration counts chosen so
//! a sample takes a measurable amount of time. Results (mean, min,
//! median, throughput) are printed to stdout. There is no HTML report,
//! baseline storage, or statistical outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per benchmark iteration (for rate reporting).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The compat harness always
/// runs setup once per iteration and subtracts nothing, so the variants
/// only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares units processed per iteration so results include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// `iter` / `iter_batched` exactly once per invocation.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up, growing the per-sample iteration count until one
        // sample is long enough to time reliably.
        let warm_up_start = Instant::now();
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
            if bencher.elapsed < Duration::from_millis(2) && bencher.iters < (1 << 20) {
                bencher.iters *= 2;
            }
        }

        // Measurement: fixed iteration count per sample.
        let per_sample_target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        if bencher.elapsed.as_secs_f64() > 0.0 {
            let scale = per_sample_target / (bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            bencher.iters = (scale.max(1.0) as u64).min(1 << 24);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        let min = samples[0];
        print!(
            "bench {}/{:<32} time: [min {} median {} mean {}]",
            self.name,
            id,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
        if let Some(tp) = self.throughput {
            let (units, label) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            print!("  thrpt: {:.4e} {label}", units as f64 / median);
        }
        println!();
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with fresh per-iteration input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a benchmark group runner. Both the struct form
/// (`name = ...; config = ...; targets = ...`) and the simple form
/// (`criterion_group!(benches, f1, f2)`) are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            calls += 1;
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert!(
            calls >= 4,
            "warm-up plus samples should call the closure repeatedly"
        );
    }

    #[test]
    fn group_macros_compile() {
        fn bench_a(c: &mut Criterion) {
            let mut g = c.benchmark_group("a");
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(4));
            targets = bench_a
        }
        benches();
    }
}
