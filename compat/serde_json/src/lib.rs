//! Offline, API-compatible subset of `serde_json`.
//!
//! Converts the local serde compat crate's [`serde::Value`] tree to and
//! from JSON text. Provides the surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`json!`]
//! macro (string-literal keys, arbitrary `Serialize` expressions as
//! values).

use serde::{DeError, Deserialize, Serialize};

/// Re-export of the shared value tree under serde_json's usual name.
pub type Value = serde::Value;

/// JSON (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any `Serialize` type into a [`Value`] (infallible in this
/// compat implementation).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

#[doc(hidden)]
pub use serde::Serialize as __Serialize;

/// Builds a [`Value`] from JSON-like syntax. Keys must be string
/// literals; values may be `null`, nested `{...}` / `[...]`, or any
/// expression implementing `serde::Serialize`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Token-muncher behind [`json!`] (exported for macro hygiene only).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array elements ----------------------------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::__Serialize::to_value(&$next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        vec![$($elems,)* $crate::__Serialize::to_value(&$last)]
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entries (string-literal keys) ------------------
    (@object [$($fields:expr,)*]) => { vec![$($fields,)*] };
    (@object [$($fields:expr),*]) => { vec![$($fields),*] };
    (@object [$($fields:expr,)*] $key:literal : null $($rest:tt)*) => {
        $crate::json_internal!(@object [$($fields,)*
            (($key).to_owned(), $crate::Value::Null)] $($rest)*)
    };
    (@object [$($fields:expr,)*] $key:literal : [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@object [$($fields,)*
            (($key).to_owned(), $crate::json_internal!([$($arr)*]))] $($rest)*)
    };
    (@object [$($fields:expr,)*] $key:literal : {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@object [$($fields,)*
            (($key).to_owned(), $crate::json_internal!({$($map)*}))] $($rest)*)
    };
    (@object [$($fields:expr,)*] $key:literal : $val:expr, $($rest:tt)*) => {
        $crate::json_internal!(@object [$($fields,)*
            (($key).to_owned(), $crate::__Serialize::to_value(&$val)),] $($rest)*)
    };
    (@object [$($fields:expr,)*] $key:literal : $val:expr) => {
        vec![$($fields,)* (($key).to_owned(), $crate::__Serialize::to_value(&$val))]
    };
    (@object [$($fields:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($fields,)*] $($rest)*)
    };

    // ---- top-level value forms ---------------------------------
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_internal!(@object [] $($tt)+)) };
    ($other:expr) => { $crate::__Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` gives Rust's shortest round-trippable rendering, which
        // always includes a decimal point or exponent — valid JSON.
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "apollo",
            "q": 159u32,
            "r2": 0.95f64,
            "tags": ["a", "b"],
            "none": null,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_indented_and_parses_back() {
        let v = json!({"a": [1u8, 2u8], "b": {"c": true}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": ["));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_roundtrip() {
        let data = vec![(1u32, 0.5f64), (2, 1.5)];
        let s = to_string(&data).unwrap();
        assert_eq!(s, "[[1,0.5],[2,1.5]]");
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\u{1F600}".to_owned());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let esc: Value = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(esc, Value::Str("A\u{1F600}".to_owned()));
    }

    #[test]
    fn float_precision_roundtrips() {
        let x = 0.123_456_789_012_345_68_f64;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }
}
