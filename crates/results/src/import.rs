//! Backfill: turning legacy `results/*.json` blobs into store records.
//!
//! Each blob becomes one [`RunRecord`] via a deterministic flattening
//! of its JSON tree — numbers and bools become metrics at dotted
//! paths, strings become tags. The same flattening backs the live
//! writer ([`crate::writer`]), so a value queried from the store is
//! the *same `f64` bits* the legacy blob carried: both go through the
//! one `Value → FieldValue` code path.
//!
//! # Flattening rules
//!
//! * Objects recurse with `.`-joined keys.
//! * Arrays of objects that carry a name-ish key (`name`, `method`,
//!   `variant`, `bench`) flatten keyed by that (sanitized) name.
//! * Arrays whose elements are `[string, ...]` pairs flatten keyed by
//!   the string.
//! * Other arrays flatten by index up to [`MAX_ARRAY_FLATTEN`]
//!   elements; longer ones record only their length at `<path>.n`
//!   (e.g. the 200k-sample GA trace, the 4096-step throttle trace).
//! * `null` and non-finite floats are skipped.

use std::path::Path;

use apollo_telemetry::FieldValue;
use serde_json::Value;

use crate::envelope::RunRecord;
use crate::store::ResultStore;

/// Arrays longer than this flatten to a length metric only.
pub const MAX_ARRAY_FLATTEN: usize = 32;

/// Keys that name the rows of a table-like array of objects.
const NAME_KEYS: [&str; 4] = ["name", "method", "variant", "bench"];

/// Flattened payload: metric columns, then tag columns.
pub type Flattened = (Vec<(String, FieldValue)>, Vec<(String, String)>);

/// Flattens a JSON tree into `(metrics, tags)` per the module rules.
pub fn flatten(value: &Value) -> Flattened {
    let mut metrics = Vec::new();
    let mut tags = Vec::new();
    walk(value, "", &mut metrics, &mut tags);
    (metrics, tags)
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

/// Keeps `[A-Za-z0-9_-]`, mapping runs of anything else to one `_`.
pub fn sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_us = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    out.trim_matches('_').to_string()
}

fn walk(
    v: &Value,
    prefix: &str,
    metrics: &mut Vec<(String, FieldValue)>,
    tags: &mut Vec<(String, String)>,
) {
    match v {
        Value::Null => {}
        Value::Bool(b) => metrics.push((prefix.to_string(), FieldValue::Bool(*b))),
        Value::Int(i) => {
            let fv = if *i < 0 {
                FieldValue::I64(*i)
            } else {
                FieldValue::U64(*i as u64)
            };
            metrics.push((prefix.to_string(), fv));
        }
        Value::UInt(u) => metrics.push((prefix.to_string(), FieldValue::U64(*u))),
        Value::Float(f) => {
            if f.is_finite() {
                metrics.push((prefix.to_string(), FieldValue::F64(*f)));
            }
        }
        Value::Str(s) => tags.push((prefix.to_string(), s.clone())),
        Value::Object(fields) => {
            for (k, item) in fields {
                walk(item, &join(prefix, &sanitize(k)), metrics, tags);
            }
        }
        Value::Array(items) => walk_array(items, prefix, metrics, tags),
    }
}

fn walk_array(
    items: &[Value],
    prefix: &str,
    metrics: &mut Vec<(String, FieldValue)>,
    tags: &mut Vec<(String, String)>,
) {
    if items.is_empty() {
        return;
    }
    // Table shape: every element an object carrying the same name key.
    if let Some(name_key) = NAME_KEYS.iter().find(|nk| {
        items.iter().all(|it| match it {
            Value::Object(fields) => fields.iter().any(|(k, v)| k == *nk && matches!(v, Value::Str(_))),
            _ => false,
        })
    }) {
        for it in items {
            let Value::Object(fields) = it else { unreachable!("checked above") };
            let row_name = fields
                .iter()
                .find_map(|(k, v)| match (k == *name_key, v) {
                    (true, Value::Str(s)) => Some(sanitize(s)),
                    _ => None,
                })
                .expect("name key present per the shape check");
            let row_prefix = join(prefix, &row_name);
            for (k, v) in fields {
                if k != *name_key {
                    walk(v, &join(&row_prefix, &sanitize(k)), metrics, tags);
                }
            }
        }
        return;
    }
    // Keyed-pair shape: every element `[string, ...]`.
    let keyed = items.iter().all(|it| {
        matches!(it, Value::Array(inner) if inner.len() >= 2 && matches!(inner[0], Value::Str(_)))
    });
    if keyed {
        for it in items {
            let Value::Array(inner) = it else { unreachable!("checked above") };
            let Value::Str(key) = &inner[0] else { unreachable!("checked above") };
            let row_prefix = join(prefix, &sanitize(key));
            if inner.len() == 2 {
                walk(&inner[1], &row_prefix, metrics, tags);
            } else {
                for (i, v) in inner[1..].iter().enumerate() {
                    walk(v, &join(&row_prefix, &i.to_string()), metrics, tags);
                }
            }
        }
        return;
    }
    // Positional shape, bounded; beyond the bound only the length is
    // meaningful (sample traces, waveforms).
    if items.len() > MAX_ARRAY_FLATTEN {
        metrics.push((join(prefix, "n"), FieldValue::U64(items.len() as u64)));
        return;
    }
    for (i, it) in items.iter().enumerate() {
        walk(it, &join(prefix, &i.to_string()), metrics, tags);
    }
}

/// Builds the store record for one legacy blob: flatten, then layer
/// adapter tags derived from the file stem.
pub fn record_for_blob(stem: &str, value: &Value) -> RunRecord {
    let (metrics, mut tags) = flatten(value);
    tags.push(("source".into(), "legacy_import".into()));
    let kind = if stem.starts_with("repro_") {
        "bench"
    } else if stem.starts_with("fig") {
        "figure"
    } else if stem.starts_with("table") {
        "table"
    } else {
        "experiment"
    };
    tags.push(("kind".into(), kind.into()));
    // governor_cap_<pct> blobs encode their cap in the file name.
    if let Some(cap) = stem.strip_prefix("governor_cap_") {
        tags.push(("cap".into(), cap.to_string()));
    }
    let mut rec = RunRecord::new(sanitize(stem), metrics, tags);
    rec.git_rev = crate::writer::current_git_rev();
    rec.run_id = crate::writer::new_run_id();
    rec
}

/// Outcome of an [`import_dir`] pass.
#[derive(Debug, Default)]
pub struct ImportReport {
    /// Suites written, with their metric counts.
    pub imported: Vec<(String, usize)>,
    /// Suites skipped because their segment already exists.
    pub skipped: Vec<String>,
}

/// Imports every `*.json` blob under `results_dir` into the store, one
/// record per file, suite named after the file stem.
///
/// Idempotent by default: a suite whose segment already holds records
/// is skipped unless `force` (which appends another record — history,
/// not overwrite; the store never rewrites).
pub fn import_dir(results_dir: &Path, store: &ResultStore, force: bool) -> Result<ImportReport, String> {
    let mut report = ImportReport::default();
    let mut stems = Vec::new();
    let entries = std::fs::read_dir(results_dir)
        .map_err(|e| format!("read {}: {e}", results_dir.display()))?;
    for e in entries.flatten() {
        let p = e.path();
        if p.extension().and_then(|x| x.to_str()) == Some("json")
            && p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| !n.starts_with("BENCH_"))
        {
            if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                stems.push((stem.to_string(), p.clone()));
            }
        }
    }
    stems.sort();
    for (stem, path) in stems {
        let suite = sanitize(&stem);
        if !force && !store.read_suite(&suite)?.records.is_empty() {
            report.skipped.push(suite);
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rec = record_for_blob(&stem, &value);
        let n = rec.metrics.len();
        store.append(&rec)?;
        report.imported.push((suite, n));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn scalars_and_nesting() {
        let v = json!({
            "overhead_pct": 0.7046803509863809,
            "reps": 7u64,
            "pass": true,
            "design": "riscv_mini",
            "inner": {"depth": -2i64, "skip": null},
        });
        let (metrics, tags) = flatten(&v);
        let m: std::collections::BTreeMap<_, _> = metrics.into_iter().collect();
        assert_eq!(m["overhead_pct"], FieldValue::F64(0.7046803509863809));
        assert_eq!(m["reps"], FieldValue::U64(7));
        assert_eq!(m["pass"], FieldValue::Bool(true));
        assert_eq!(m["inner.depth"], FieldValue::I64(-2));
        assert!(!m.contains_key("inner.skip"));
        assert_eq!(tags, vec![("design".to_string(), "riscv_mini".to_string())]);
    }

    #[test]
    fn named_row_tables_flatten_by_name() {
        let v = json!({
            "rows": [
                {"name": "capture_proxy64", "speedup": 5.68, "lanes": 64u64},
                {"name": "ripes (DSP)", "speedup": 2.4},
            ],
        });
        let (metrics, _) = flatten(&v);
        let m: std::collections::BTreeMap<_, _> = metrics.into_iter().collect();
        assert_eq!(m["rows.capture_proxy64.speedup"], FieldValue::F64(5.68));
        assert_eq!(m["rows.capture_proxy64.lanes"], FieldValue::U64(64));
        assert_eq!(m["rows.ripes_DSP.speedup"], FieldValue::F64(2.4));
    }

    #[test]
    fn keyed_pairs_and_long_arrays() {
        let v = json!({
            "pairs": [["dhry", 1000u64], ["matmul", 2000u64]],
            "trace": (0..100u64).collect::<Vec<u64>>(),
            "small": [1.0, 2.0],
        });
        let (metrics, _) = flatten(&v);
        let m: std::collections::BTreeMap<_, _> = metrics.into_iter().collect();
        assert_eq!(m["pairs.dhry"], FieldValue::U64(1000));
        assert_eq!(m["pairs.matmul"], FieldValue::U64(2000));
        assert_eq!(m["trace.n"], FieldValue::U64(100));
        assert!(!m.contains_key("trace.0"));
        assert_eq!(m["small.0"], FieldValue::F64(1.0));
        assert_eq!(m["small.1"], FieldValue::F64(2.0));
    }

    #[test]
    fn triple_keyed_rows_use_positions() {
        // fig9-style: [[name, cycles, {metrics}], ...]
        let v = json!({
            "per_benchmark": [
                ["dhry_like", 40000u64, {"r2": 0.97}],
            ],
        });
        let (metrics, _) = flatten(&v);
        let m: std::collections::BTreeMap<_, _> = metrics.into_iter().collect();
        assert_eq!(m["per_benchmark.dhry_like.0"], FieldValue::U64(40000));
        assert_eq!(m["per_benchmark.dhry_like.1.r2"], FieldValue::F64(0.97));
    }

    #[test]
    fn sanitize_collapses_junk() {
        assert_eq!(sanitize("ripes (DSP)"), "ripes_DSP");
        assert_eq!(sanitize("fig3_ga"), "fig3_ga");
        assert_eq!(sanitize("a//b"), "a_b");
    }

    #[test]
    fn blob_record_carries_adapter_tags() {
        let rec = record_for_blob("governor_cap_50", &json!({"throttle_pct": 12.5}));
        assert_eq!(rec.suite, "governor_cap_50");
        assert_eq!(rec.tag("cap"), Some("50"));
        assert_eq!(rec.tag("source"), Some("legacy_import"));
        assert_eq!(rec.tag("kind"), Some("experiment"));
        let rec = record_for_blob("repro_bitslice", &json!({"quick": false}));
        assert_eq!(rec.tag("kind"), Some("bench"));
    }
}
