//! Hand-rolled parser for the TOML subset `budgets.toml` uses.
//!
//! The build environment has no registry access, so rather than a
//! full TOML implementation this covers exactly what a budgets file
//! needs: comments, `[table]` headers, `[[array-of-table]]` headers,
//! and `key = value` pairs with string / integer / float / boolean
//! values. Anything outside the subset is a parse error, not a silent
//! skip — a malformed budgets file must fail the sentinel loudly.

/// A scalar value in the TOML subset.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// `"quoted"` string (basic strings, common escapes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

impl TomlValue {
    /// Numeric reading (ints widen to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Int(i) => Some(*i as f64),
            TomlValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String reading.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed table: header path (empty for the implicit root table)
/// and its key/value pairs in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct TomlTable {
    /// Header text inside the brackets (e.g. `sentinel`).
    pub name: String,
    /// Whether the header used `[[...]]` (array-of-tables entry).
    pub is_array: bool,
    /// Key/value pairs in file order.
    pub pairs: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// Looks up a key in this table.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parses a document into its tables, file order preserved. Root-level
/// pairs (before any header) land in a table named `""`.
pub fn parse(text: &str) -> Result<Vec<TomlTable>, String> {
    let mut tables = vec![TomlTable {
        name: String::new(),
        is_array: false,
        pairs: Vec::new(),
    }];
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("budgets line {}: {msg}: `{raw}`", lineno + 1);
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = inner.trim();
            if name.is_empty() {
                return Err(err("empty table name"));
            }
            tables.push(TomlTable {
                name: name.to_string(),
                is_array: true,
                pairs: Vec::new(),
            });
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = inner.trim();
            if name.is_empty() {
                return Err(err("empty table name"));
            }
            tables.push(TomlTable {
                name: name.to_string(),
                is_array: false,
                pairs: Vec::new(),
            });
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            let val = line[eq + 1..].trim();
            if key.is_empty() {
                return Err(err("empty key"));
            }
            let value = parse_value(val).map_err(|m| err(&m))?;
            tables
                .last_mut()
                .expect("root table always present")
                .pairs
                .push((key.to_string(), value));
        } else {
            return Err(err("expected `[table]`, `[[table]]`, or `key = value`"));
        }
    }
    // Drop an unused empty root so iteration sees only real tables.
    if tables[0].pairs.is_empty() {
        tables.remove(0);
    }
    Ok(tables)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(s: &str) -> Result<TomlValue, String> {
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        let mut out = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("unsupported escape `\\{:?}`", other)),
                }
            } else if c == '"' {
                return Err("stray quote inside string".into());
            } else {
                out.push(c);
            }
        }
        return Ok(TomlValue::Str(out));
    }
    match s {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if s.contains(['.', 'e', 'E']) {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return Ok(TomlValue::Float(f));
            }
        }
    } else if let Ok(i) = s.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    Err(format!("unsupported value `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_budgets_shape() {
        let doc = r#"
# sentinel config
[sentinel]
history_window = 5  # runs

[[budget]]
suite = "repro_telemetry"
metric = "disabled_overhead_pct"
max = 2.0

[[budget]]
suite = "repro_bitslice"
metric = "rows.capture_proxy64.speedup"
min = 4.0
strict = true
"#;
        let tables = parse(doc).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].name, "sentinel");
        assert!(!tables[0].is_array);
        assert_eq!(tables[0].get("history_window"), Some(&TomlValue::Int(5)));
        assert!(tables[1].is_array);
        assert_eq!(tables[1].get("max").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            tables[2].get("metric").unwrap().as_str(),
            Some("rows.capture_proxy64.speedup")
        );
        assert_eq!(tables[2].get("strict"), Some(&TomlValue::Bool(true)));
    }

    #[test]
    fn comments_respect_strings() {
        let tables = parse("label = \"r2 # floor\" # trailing").unwrap();
        assert_eq!(tables[0].get("label").unwrap().as_str(), Some("r2 # floor"));
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let err = parse("[ok]\nwhat is this").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse("x = nope").is_err());
        assert!(parse("[]").is_err());
    }
}
