//! The on-disk segment store.
//!
//! One JSONL file per suite under a store directory (default
//! `results/store/`). Appends are strictly additive: the store never
//! rewrites history, only adds lines — with one exception: a torn
//! final line (crash mid-write, truncated copy) is clipped before the
//! next append so the segment stays machine-valid.
//!
//! # Corrupt-tail policy
//!
//! Mirrors the introspection checkpoint's CRC fallback: damage at the
//! *end* of a segment is recoverable (the last line is skipped on
//! read, counted in `results.store.tail_skipped`, and truncated away
//! on the next append); damage in the *middle* means the file was
//! edited or interleaved and is a hard error.

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::envelope::{validate_result_line, RunRecord};
use apollo_telemetry::SeqCheck;

/// Handle to a store directory. Creating one performs no IO.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

/// The outcome of reading one segment.
#[derive(Debug, Default)]
pub struct SegmentRead {
    /// Valid records in file order.
    pub records: Vec<RunRecord>,
    /// Whether an invalid final line was skipped.
    pub tail_skipped: bool,
    /// Byte length of the valid prefix (the offset a repairing append
    /// truncates to).
    pub valid_bytes: u64,
}

impl ResultStore {
    /// Opens a store rooted at `dir` (need not exist yet).
    pub fn open(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the segment file backing `suite`.
    pub fn segment_path(&self, suite: &str) -> PathBuf {
        self.dir.join(format!("{suite}.jsonl"))
    }

    /// Sorted list of suites with a segment file present.
    pub fn suites(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) == Some("jsonl") {
                    if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                        out.push(stem.to_string());
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Reads and validates a suite's segment.
    ///
    /// Every line must validate ([`validate_result_line`]), name the
    /// suite matching the file stem, and carry a dense `seq`. An
    /// invalid **last** line is skipped (tail-corruption recovery); an
    /// invalid line anywhere else is an error. A missing file reads as
    /// an empty segment.
    pub fn read_suite(&self, suite: &str) -> Result<SegmentRead, String> {
        let path = self.segment_path(suite);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SegmentRead::default())
            }
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };

        let mut read = SegmentRead::default();
        let mut seqs = SeqCheck::new();
        // Walk physical lines, tracking each line's end offset so a
        // repairing append knows where the valid prefix stops.
        let mut lines: Vec<(&str, u64)> = Vec::new();
        let mut offset = 0u64;
        for line in text.split_inclusive('\n') {
            let content = line.strip_suffix('\n').unwrap_or(line);
            offset += line.len() as u64;
            if !content.trim().is_empty() {
                lines.push((content, offset));
            }
        }
        // A final line without its newline is always suspect (torn
        // write) even if it happens to parse; treat only complete
        // lines as committed.
        let last_complete = text.ends_with('\n');

        let n = lines.len();
        for (i, (content, end)) in lines.iter().enumerate() {
            let is_last = i + 1 == n;
            let verdict = validate_result_line(content).and_then(|rec| {
                if rec.suite != suite {
                    return Err(format!("record for suite `{}` in segment `{suite}`", rec.suite));
                }
                seqs.check(rec.seq)?;
                Ok(rec)
            });
            match verdict {
                Ok(rec) if !is_last || last_complete => {
                    read.records.push(rec);
                    read.valid_bytes = *end;
                }
                Ok(_) | Err(_) if is_last => {
                    // Torn or invalid tail: recoverable.
                    read.tail_skipped = true;
                    apollo_telemetry::counter("results.store.tail_skipped").inc();
                }
                Err(e) => {
                    return Err(format!("{}: line {}: {e}", path.display(), i + 1));
                }
                Ok(_) => unreachable!("non-last Ok arms handled above"),
            }
        }
        Ok(read)
    }

    /// Appends one record to its suite's segment.
    ///
    /// Assigns the next dense `seq`, stamps `ts_ns` (unless already
    /// nonzero — import backfill pre-stamps), clips a corrupt tail
    /// left by a torn write, and writes the line + newline. Returns
    /// the record as stored.
    pub fn append(&self, rec: &RunRecord) -> Result<RunRecord, String> {
        let existing = self.read_suite(&rec.suite)?;
        fs::create_dir_all(&self.dir)
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        let path = self.segment_path(&rec.suite);

        let mut stored = rec.clone();
        stored.v = crate::envelope::RESULT_SCHEMA_VERSION;
        stored.seq = existing.records.last().map(|r| r.seq + 1).unwrap_or(0);
        if stored.ts_ns == 0 {
            stored.ts_ns = now_ns();
        }
        // Validate before touching the file so a malformed record can
        // never poison a segment.
        let line = stored.to_jsonl();
        validate_result_line(&line).map_err(|e| format!("refusing to append: {e}"))?;

        let mut f = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        if existing.tail_skipped {
            f.set_len(existing.valid_bytes)
                .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        }
        f.seek(SeekFrom::End(0))
            .map_err(|e| format!("seek {}: {e}", path.display()))?;
        f.write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .map_err(|e| format!("append {}: {e}", path.display()))?;
        Ok(stored)
    }

    /// Reads every segment into the columnar query view.
    pub fn load_view(&self) -> Result<crate::view::ResultsView, String> {
        let mut view = crate::view::ResultsView::default();
        for suite in self.suites() {
            let read = self.read_suite(&suite)?;
            view.add_suite(&suite, &read);
        }
        Ok(view)
    }
}

/// Wall-clock nanoseconds since the UNIX epoch (0 if the clock is
/// before the epoch, which only a broken clock reports).
pub fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_telemetry::FieldValue;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "apollo_results_store_{tag}_{}_{}",
            std::process::id(),
            now_ns()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn rec(suite: &str, val: f64) -> RunRecord {
        let mut r = RunRecord::new(
            suite,
            vec![("metric".into(), FieldValue::F64(val))],
            vec![],
        );
        r.git_rev = "testrev".into();
        r
    }

    #[test]
    fn append_assigns_dense_seq_and_roundtrips() {
        let dir = tmpdir("dense");
        let store = ResultStore::open(&dir);
        let a = store.append(&rec("suite_a", 1.0)).unwrap();
        let b = store.append(&rec("suite_a", 2.0)).unwrap();
        assert_eq!((a.seq, b.seq), (0, 1));
        assert!(a.ts_ns > 0);

        let read = store.read_suite("suite_a").unwrap();
        assert_eq!(read.records.len(), 2);
        assert!(!read.tail_skipped);
        assert_eq!(read.records[1].metric_f64("metric"), Some(2.0));
        assert_eq!(store.suites(), vec!["suite_a".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_counted_and_repaired() {
        let dir = tmpdir("tail");
        let store = ResultStore::open(&dir);
        store.append(&rec("suite_t", 1.0)).unwrap();
        store.append(&rec("suite_t", 2.0)).unwrap();

        // Tear the final line mid-JSON (no trailing newline).
        let path = store.segment_path("suite_t");
        let text = fs::read_to_string(&path).unwrap();
        let keep = text.match_indices('\n').next().unwrap().0 + 1;
        fs::write(&path, &text[..keep + 20]).unwrap();

        let before = apollo_telemetry::counter("results.store.tail_skipped").get();
        let read = store.read_suite("suite_t").unwrap();
        assert!(read.tail_skipped);
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.valid_bytes, keep as u64);
        assert!(apollo_telemetry::counter("results.store.tail_skipped").get() > before);

        // The next append clips the torn bytes and continues densely.
        let c = store.append(&rec("suite_t", 3.0)).unwrap();
        assert_eq!(c.seq, 1);
        let read = store.read_suite("suite_t").unwrap();
        assert!(!read.tail_skipped);
        assert_eq!(read.records.len(), 2);
        assert_eq!(read.records[1].metric_f64("metric"), Some(3.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_that_still_parses_is_not_committed() {
        // A complete JSON line with no trailing newline is treated as
        // torn: the writer always terminates lines.
        let dir = tmpdir("noterm");
        let store = ResultStore::open(&dir);
        store.append(&rec("suite_n", 1.0)).unwrap();
        let path = store.segment_path("suite_n");
        let mut text = fs::read_to_string(&path).unwrap();
        let stored = store.append(&rec("suite_n", 2.0)).unwrap();
        text.push_str(&stored.to_jsonl()); // no '\n'
        fs::write(&path, &text).unwrap();

        let read = store.read_suite("suite_n").unwrap();
        assert!(read.tail_skipped);
        assert_eq!(read.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmpdir("mid");
        let store = ResultStore::open(&dir);
        store.append(&rec("suite_m", 1.0)).unwrap();
        store.append(&rec("suite_m", 2.0)).unwrap();
        let path = store.segment_path("suite_m");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, format!("garbage\n{text}")).unwrap();
        let err = store.read_suite("suite_m").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_suite_in_segment_is_rejected() {
        let dir = tmpdir("wrong");
        let store = ResultStore::open(&dir);
        store.append(&rec("suite_x", 1.0)).unwrap();
        let other = store.append(&rec("suite_y", 2.0)).unwrap();
        // Splice suite_y's line into suite_x's segment (mid-file, so
        // hard error; as tail it would be skip-with-counter).
        let path = store.segment_path("suite_x");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(&other.to_jsonl());
        text.push('\n');
        fs::write(&path, &text).unwrap();
        // It's the (complete) last line: recoverable skip.
        let read = store.read_suite("suite_x").unwrap();
        assert!(read.tail_skipped);
        assert_eq!(read.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
