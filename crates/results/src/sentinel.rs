//! The CI regression sentinel.
//!
//! Diffs each suite's **latest** stored run against (a) the absolute
//! bounds declared in `budgets.toml` and (b) the median of the prior
//! history window for relative-regression rules. Renders one table of
//! check rows; any `FAIL` row makes the run a failure (exit nonzero)
//! unless the caller asked for `--check` dry mode.
//!
//! Output is deterministic given equal stored values: no timestamps or
//! run ids appear in the table (the [`crate::envelope`] strip-timing
//! contract applied to reporting).

use std::path::Path;

use crate::budgets::{Budget, Budgets};
use crate::render::{num, Format, Table};
use crate::view::ResultsView;

/// Verdict of one budget check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within bounds.
    Pass,
    /// Out of bounds — the sentinel fails.
    Fail,
    /// The suite or metric has no stored data to check. Not a failure
    /// (a budget for a suite that hasn't run yet must not block CI),
    /// but reported so coverage gaps stay visible.
    Missing,
}

impl Status {
    fn text(self) -> &'static str {
        match self {
            Status::Pass => "PASS",
            Status::Fail => "FAIL",
            Status::Missing => "MISSING",
        }
    }
}

/// One evaluated budget rule.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Suite checked.
    pub suite: String,
    /// Metric checked.
    pub metric: String,
    /// Latest stored value, if present.
    pub value: Option<f64>,
    /// Rendered bound text (e.g. `<= 2`, `>= 4`).
    pub bound: String,
    /// Prior-window median baseline, when history exists.
    pub baseline: Option<f64>,
    /// Percent change vs baseline (sign preserved).
    pub delta_pct: Option<f64>,
    /// Verdict.
    pub status: Status,
    /// Failure detail (empty on pass).
    pub detail: String,
}

/// The full sentinel outcome.
#[derive(Debug, Default)]
pub struct SentinelReport {
    /// One row per declared budget (suite-filtered callers see the
    /// filtered subset).
    pub rows: Vec<CheckRow>,
}

impl SentinelReport {
    /// Whether any rule failed.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.status == Status::Fail)
    }

    /// Renders the verdict table.
    pub fn render(&self, format: Format) -> String {
        let mut t = Table::new(
            "regression sentinel",
            &["status", "suite", "metric", "value", "bound", "baseline", "delta%", "detail"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.status.text().to_string(),
                r.suite.clone(),
                r.metric.clone(),
                r.value.map(num).unwrap_or_else(|| "-".into()),
                r.bound.clone(),
                r.baseline.map(num).unwrap_or_else(|| "-".into()),
                r.delta_pct
                    .map(|d| format!("{d:+.2}"))
                    .unwrap_or_else(|| "-".into()),
                r.detail.clone(),
            ]);
        }
        t.render(format)
    }
}

/// Evaluates every budget (optionally restricted to one suite) against
/// the loaded view.
pub fn run_sentinel(view: &ResultsView, budgets: &Budgets, suite_filter: Option<&str>) -> SentinelReport {
    let mut report = SentinelReport::default();
    for budget in &budgets.budgets {
        if let Some(f) = suite_filter {
            if budget.suite != f {
                continue;
            }
        }
        report.rows.push(check_one(view, budgets, budget));
    }
    report
}

fn check_one(view: &ResultsView, budgets: &Budgets, budget: &Budget) -> CheckRow {
    let mut row = CheckRow {
        suite: budget.suite.clone(),
        metric: budget.metric.clone(),
        value: None,
        bound: bound_text(budget),
        baseline: None,
        delta_pct: None,
        status: Status::Missing,
        detail: String::new(),
    };
    let Some(sv) = view.suite(&budget.suite) else {
        row.detail = "no stored runs".into();
        return row;
    };
    let Some(value) = sv.latest_f64(&budget.metric) else {
        row.detail = if sv.is_empty() {
            "no stored runs".into()
        } else {
            "latest run lacks metric".into()
        };
        return row;
    };
    row.value = Some(value);
    row.baseline = sv.median_of_prior(&budget.metric, budgets.history_window);
    if let Some(base) = row.baseline {
        if base != 0.0 {
            row.delta_pct = Some(100.0 * (value - base) / base.abs());
        }
    }

    let mut failures = Vec::new();
    if let Some(max) = budget.max {
        if value > max {
            failures.push(format!("{} > max {}", num(value), num(max)));
        }
    }
    if let Some(min) = budget.min {
        if value < min {
            failures.push(format!("{} < min {}", num(value), num(min)));
        }
    }
    if let (Some(limit), Some(delta)) = (budget.max_regress_pct, row.delta_pct) {
        // "Worse" is up for ceiling-bounded metrics, down for
        // floor-bounded ones; a budget with both treats up as worse.
        let worse = if budget.max.is_some() { delta } else { -delta };
        if worse > limit {
            failures.push(format!(
                "regressed {:+.2}% vs prior median (limit {}%)",
                delta,
                num(limit)
            ));
        }
    }
    if failures.is_empty() {
        row.status = Status::Pass;
    } else {
        row.status = Status::Fail;
        row.detail = failures.join("; ");
    }
    row
}

fn bound_text(b: &Budget) -> String {
    let mut parts = Vec::new();
    if let Some(max) = b.max {
        parts.push(format!("<= {}", num(max)));
    }
    if let Some(min) = b.min {
        parts.push(format!(">= {}", num(min)));
    }
    if let Some(r) = b.max_regress_pct {
        parts.push(format!("regress <= {}%", num(r)));
    }
    parts.join(", ")
}

/// Mirrors each trajectory's headline metric into its `BENCH_*.json`
/// file under `root`, appending one point for the suite's latest run.
///
/// Append-safe: if the file's last point already carries the latest
/// run's `(seq, run_id)`, nothing is written — re-running the sentinel
/// never duplicates points. Returns the paths actually updated.
pub fn emit_trajectories(
    view: &ResultsView,
    budgets: &Budgets,
    root: &Path,
    suite_filter: Option<&str>,
) -> Result<Vec<std::path::PathBuf>, String> {
    let mut updated = Vec::new();
    for traj in &budgets.trajectories {
        if let Some(f) = suite_filter {
            if traj.suite != f {
                continue;
            }
        }
        let Some(sv) = view.suite(&traj.suite) else {
            continue;
        };
        let (Some(value), Some(&seq)) = (sv.latest_f64(&traj.metric), sv.seqs.last()) else {
            continue;
        };
        let run_id = sv.run_ids.last().cloned().unwrap_or_default();
        let git_rev = sv.git_revs.last().cloned().unwrap_or_default();

        let path = root.join(&traj.out);
        let mut points: Vec<serde_json::Value> = Vec::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            let existing: serde_json::Value = serde_json::from_str(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            if let serde_json::Value::Object(fields) = existing {
                for (k, v) in fields {
                    if k == "points" {
                        if let serde_json::Value::Array(p) = v {
                            points = p;
                        }
                    }
                }
            }
        }
        let already = points.last().is_some_and(|p| {
            point_field(p, "seq") == Some(serde_json::Value::Int(seq as i64))
                && point_field(p, "run_id") == Some(serde_json::Value::Str(run_id.clone()))
        });
        if already {
            continue;
        }
        points.push(serde_json::json!({
            "seq": seq,
            "run_id": run_id,
            "git_rev": git_rev,
            "value": value,
        }));
        let doc = serde_json::json!({
            "suite": traj.suite,
            "metric": traj.metric,
            "points": points,
        });
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("serialize trajectory: {e}"))?;
        std::fs::write(&path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        updated.push(path);
    }
    Ok(updated)
}

fn point_field(p: &serde_json::Value, key: &str) -> Option<serde_json::Value> {
    if let serde_json::Value::Object(fields) = p {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::RunRecord;
    use crate::store::SegmentRead;
    use apollo_telemetry::FieldValue;

    fn view_with(suite: &str, metric: &str, vals: &[f64]) -> ResultsView {
        let mut read = SegmentRead::default();
        for (i, v) in vals.iter().enumerate() {
            let mut r = RunRecord::new(
                suite,
                vec![(metric.to_string(), FieldValue::F64(*v))],
                vec![],
            );
            r.seq = i as u64;
            r.run_id = format!("run{i}");
            r.git_rev = "rev".into();
            read.records.push(r);
        }
        let mut view = ResultsView::default();
        view.add_suite(suite, &read);
        view
    }

    fn budgets(doc: &str) -> Budgets {
        Budgets::parse(doc).unwrap()
    }

    #[test]
    fn ceiling_pass_and_fail() {
        let b = budgets("[[budget]]\nsuite = \"s\"\nmetric = \"m\"\nmax = 2.0");
        let pass = run_sentinel(&view_with("s", "m", &[1.5]), &b, None);
        assert!(!pass.failed());
        assert_eq!(pass.rows[0].status, Status::Pass);

        let fail = run_sentinel(&view_with("s", "m", &[2.5]), &b, None);
        assert!(fail.failed());
        assert!(fail.rows[0].detail.contains("> max 2"), "{}", fail.rows[0].detail);
    }

    #[test]
    fn floor_and_regression_rules() {
        let b = budgets(
            "[[budget]]\nsuite = \"s\"\nmetric = \"m\"\nmin = 4.0\nmax_regress_pct = 10",
        );
        // Floor ok, but a >10% drop vs the prior median fails.
        let r = run_sentinel(&view_with("s", "m", &[6.0, 6.0, 4.5]), &b, None);
        assert!(r.failed());
        assert!(r.rows[0].detail.contains("regressed"), "{}", r.rows[0].detail);
        // Small drop passes both rules.
        let r = run_sentinel(&view_with("s", "m", &[6.0, 6.0, 5.7]), &b, None);
        assert!(!r.failed());
        // Floor violation alone.
        let r = run_sentinel(&view_with("s", "m", &[3.0]), &b, None);
        assert!(r.failed());
        assert!(r.rows[0].detail.contains("< min 4"));
    }

    #[test]
    fn missing_data_reports_but_does_not_fail() {
        let b = budgets("[[budget]]\nsuite = \"absent\"\nmetric = \"m\"\nmax = 1.0");
        let r = run_sentinel(&view_with("s", "m", &[0.5]), &b, None);
        assert!(!r.failed());
        assert_eq!(r.rows[0].status, Status::Missing);
    }

    #[test]
    fn suite_filter_narrows_rows() {
        let b = budgets(
            "[[budget]]\nsuite = \"a\"\nmetric = \"m\"\nmax = 1.0\n\n[[budget]]\nsuite = \"b\"\nmetric = \"m\"\nmax = 1.0",
        );
        let r = run_sentinel(&view_with("a", "m", &[0.5]), &b, Some("a"));
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].suite, "a");
    }

    #[test]
    fn render_is_deterministic_and_timestamps_free() {
        let b = budgets("[[budget]]\nsuite = \"s\"\nmetric = \"m\"\nmax = 2.0");
        let v = view_with("s", "m", &[1.5]);
        let a = run_sentinel(&v, &b, None).render(Format::Table);
        let c = run_sentinel(&v, &b, None).render(Format::Table);
        assert_eq!(a, c);
        assert!(!a.contains("run0"));
    }

    #[test]
    fn trajectories_append_once_per_run() {
        let dir = std::env::temp_dir().join(format!(
            "apollo_results_traj_{}_{}",
            std::process::id(),
            crate::store::now_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let b = budgets(
            "[[trajectory]]\nsuite = \"s\"\nmetric = \"m\"\nout = \"BENCH_s.json\"",
        );
        let v = view_with("s", "m", &[4.0, 5.0]);
        let first = emit_trajectories(&v, &b, &dir, None).unwrap();
        assert_eq!(first.len(), 1);
        let again = emit_trajectories(&v, &b, &dir, None).unwrap();
        assert!(again.is_empty(), "re-run must not duplicate points");

        let text = std::fs::read_to_string(dir.join("BENCH_s.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let serde_json::Value::Object(fields) = doc else { panic!() };
        let points = fields.iter().find(|(k, _)| k == "points").unwrap();
        let serde_json::Value::Array(pts) = &points.1 else { panic!() };
        assert_eq!(pts.len(), 1); // one point per latest run, not per history row
        let _ = std::fs::remove_dir_all(&dir);
    }
}
