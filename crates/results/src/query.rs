//! Query shapes behind `apollo results query` / `history`.
//!
//! Each function turns view data into a renderer-ready [`Table`];
//! the CLI only parses flags and picks a shape. All shapes exclude
//! `ts_ns` and `run_id` (the determinism contract), so identical
//! stored values render to identical bytes in every format.

use crate::envelope::field_text;
use crate::render::{num, sparkline, Table};
use crate::view::{Agg, ResultsView, SuiteView};

/// Two-column `metric | value` table for a suite's latest run — the
/// shape embedded into EXPERIMENTS.md. `metrics` filters (exact names,
/// empty = all).
pub fn latest_table(view: &ResultsView, suite: &str, metrics: &[String]) -> Result<Table, String> {
    let sv = require_suite(view, suite)?;
    if sv.is_empty() {
        return Err(format!("suite `{suite}` holds no runs"));
    }
    let mut t = Table::new(format!("{suite} (latest run, git {})", short_rev(sv)), &["metric", "value"]);
    for name in sv.metric_names() {
        if !metrics.is_empty() && !metrics.iter().any(|m| m == name) {
            continue;
        }
        if let Some(v) = sv.latest(name) {
            t.push_row(vec![name.to_string(), field_text(v)]);
        }
    }
    if t.rows.is_empty() {
        return Err(format!("no matching metrics in suite `{suite}`"));
    }
    Ok(t)
}

/// Run-per-row comparison table over the last `n` runs: one column per
/// requested metric (empty = all observed metrics).
pub fn runs_table(
    view: &ResultsView,
    suite: &str,
    metrics: &[String],
    last_n: usize,
) -> Result<Table, String> {
    let sv = require_suite(view, suite)?;
    let names: Vec<String> = if metrics.is_empty() {
        sv.metric_names().iter().map(|s| s.to_string()).collect()
    } else {
        metrics.to_vec()
    };
    let mut header: Vec<&str> = vec!["seq", "git_rev"];
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    header.extend(&name_refs);
    let mut t = Table::new(format!("{suite} (last {} runs)", last_n.min(sv.len())), &header);
    for row in sv.latest_rows(last_n) {
        let mut cells = vec![sv.seqs[row].to_string(), shorten(&sv.git_revs[row])];
        for name in &names {
            let cell = sv
                .metrics
                .get(name)
                .and_then(|col| col[row].as_ref())
                .map(field_text)
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        t.push_row(cells);
    }
    Ok(t)
}

/// Group-by table: rows are groups of a tag column (or whole suites
/// when `tag` is `None`), columns are the aggregations of one metric.
pub fn group_table(
    view: &ResultsView,
    suite: Option<&str>,
    tag: Option<&str>,
    metric: &str,
    aggs: &[Agg],
) -> Result<Table, String> {
    let mut header = vec![if tag.is_some() { "group" } else { "suite" }];
    header.extend(aggs.iter().map(Agg::label));
    let title = match tag {
        Some(tagname) => format!("{} by {tagname}: {metric}", suite.unwrap_or("all")),
        None => format!("by suite: {metric}"),
    };
    let mut t = Table::new(title, &header);

    let mut push_group = |name: String, sv: &SuiteView, rows: &[usize]| {
        let mut cells = vec![name];
        for agg in aggs {
            cells.push(
                sv.aggregate(metric, rows, *agg)
                    .map(num)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.push_row(cells);
    };

    match (suite, tag) {
        (Some(s), Some(tagname)) => {
            let sv = require_suite(view, s)?;
            for (group, rows) in sv.group_by_tag(tagname) {
                push_group(group, sv, &rows);
            }
        }
        (Some(s), None) => {
            let sv = require_suite(view, s)?;
            let rows: Vec<usize> = (0..sv.len()).collect();
            push_group(s.to_string(), sv, &rows);
        }
        (None, _) => {
            // Cross-suite: group per suite (tag grouping needs a suite
            // to anchor column semantics).
            for (name, sv) in &view.suites {
                if sv.metrics.contains_key(metric) {
                    let rows: Vec<usize> = (0..sv.len()).collect();
                    push_group(name.clone(), sv, &rows);
                }
            }
        }
    }
    if t.rows.is_empty() {
        return Err(format!("no data for metric `{metric}`"));
    }
    Ok(t)
}

/// History table for `apollo results history <suite> <metric>`: one row
/// per run reporting the metric, plus a sparkline/delta summary line
/// returned alongside.
pub fn history_table(
    view: &ResultsView,
    suite: &str,
    metric: &str,
) -> Result<(Table, String), String> {
    let sv = require_suite(view, suite)?;
    let hist = sv.history(metric);
    if hist.is_empty() {
        return Err(format!("no history for `{metric}` in suite `{suite}`"));
    }
    let mut t = Table::new(
        format!("{suite}: {metric}"),
        &["seq", "git_rev", "value", "delta%"],
    );
    let mut prev: Option<f64> = None;
    for (seq, v) in &hist {
        let row_idx = sv.seqs.iter().position(|s| s == seq).unwrap_or(0);
        let delta = match prev {
            Some(p) if p != 0.0 => format!("{:+.2}", 100.0 * (v - p) / p.abs()),
            _ => "-".into(),
        };
        t.push_row(vec![
            seq.to_string(),
            shorten(&sv.git_revs[row_idx]),
            num(*v),
            delta,
        ]);
        prev = Some(*v);
    }
    let vals: Vec<f64> = hist.iter().map(|(_, v)| *v).collect();
    let first = vals[0];
    let last = *vals.last().unwrap();
    let overall = if first != 0.0 {
        format!("{:+.2}%", 100.0 * (last - first) / first.abs())
    } else {
        "-".into()
    };
    let summary = format!(
        "{} runs  {}  first {}  latest {}  overall {}",
        vals.len(),
        sparkline(&vals),
        num(first),
        num(last),
        overall
    );
    Ok((t, summary))
}

/// Store overview: one row per suite with run counts and health.
pub fn suites_table(view: &ResultsView) -> Table {
    let mut t = Table::new("results store", &["suite", "runs", "metrics", "latest git_rev", "tail"]);
    for (name, sv) in &view.suites {
        t.push_row(vec![
            name.clone(),
            sv.len().to_string(),
            sv.metrics.len().to_string(),
            sv.git_revs.last().map(|r| shorten(r)).unwrap_or_else(|| "-".into()),
            if sv.tail_skipped { "skipped" } else { "ok" }.to_string(),
        ]);
    }
    t
}

fn require_suite<'v>(view: &'v ResultsView, suite: &str) -> Result<&'v SuiteView, String> {
    view.suite(suite).ok_or_else(|| {
        let known = view
            .suites
            .keys()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ");
        format!("unknown suite `{suite}` (stored: {known})")
    })
}

fn shorten(rev: &str) -> String {
    rev.chars().take(12).collect()
}

fn short_rev(sv: &SuiteView) -> String {
    sv.git_revs.last().map(|r| shorten(r)).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::RunRecord;
    use crate::store::SegmentRead;
    use apollo_telemetry::FieldValue;

    fn view() -> ResultsView {
        let mut read = SegmentRead::default();
        for (i, (v, mode)) in [(4.0, "quick"), (5.0, "full"), (5.5, "full")].iter().enumerate() {
            let mut r = RunRecord::new(
                "bench",
                vec![
                    ("speedup".into(), FieldValue::F64(*v)),
                    ("reps".into(), FieldValue::U64(7)),
                ],
                vec![("mode".into(), mode.to_string())],
            );
            r.seq = i as u64;
            r.git_rev = format!("rev{i}abcdefabcdef");
            read.records.push(r);
        }
        let mut v = ResultsView::default();
        v.add_suite("bench", &read);
        v
    }

    #[test]
    fn latest_table_filters_metrics() {
        let t = latest_table(&view(), "bench", &[]).unwrap();
        assert_eq!(t.rows.len(), 2);
        let t = latest_table(&view(), "bench", &["speedup".to_string()]).unwrap();
        assert_eq!(t.rows, vec![vec!["speedup".to_string(), "5.5".to_string()]]);
        assert!(latest_table(&view(), "nope", &[]).is_err());
    }

    #[test]
    fn runs_table_last_n() {
        let t = runs_table(&view(), "bench", &["speedup".to_string()], 2).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "1");
        assert_eq!(t.rows[1][2], "5.5");
    }

    #[test]
    fn group_table_by_tag_and_by_suite() {
        let t = group_table(&view(), Some("bench"), Some("mode"), "speedup", &[Agg::Count, Agg::Median]).unwrap();
        assert_eq!(t.rows.len(), 2); // full, quick
        assert_eq!(t.rows[0], vec!["full".to_string(), "2".to_string(), "5".to_string()]);
        let t = group_table(&view(), None, None, "speedup", &[Agg::Latest]).unwrap();
        assert_eq!(t.rows, vec![vec!["bench".to_string(), "5.5".to_string()]]);
    }

    #[test]
    fn history_has_deltas_and_sparkline() {
        let (t, summary) = history_table(&view(), "bench", "speedup").unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][3], "+25.00");
        assert!(summary.contains("3 runs"));
        assert!(summary.contains('█'));
        assert!(summary.contains("+37.50%"));
    }

    #[test]
    fn suites_overview() {
        let t = suites_table(&view());
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][1], "3");
    }
}
