//! Table rendering for `apollo results` output.
//!
//! One [`Table`] model, four output formats. The unicode table follows
//! the comfy-table `UTF8_HORIZONTAL_ONLY` preset look (top/bottom
//! rules, double rule under the header, no vertical borders) so CLI
//! output matches the ecosystem idiom without carrying the dependency.
//! All formats are byte-deterministic given equal cell text.

/// Output format selector for the CLI's `--format` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Unicode box table (default, human-facing).
    Table,
    /// JSON array of row objects keyed by header.
    Json,
    /// RFC-4180-style CSV with a header row.
    Csv,
    /// GitHub-flavored markdown pipe table.
    Markdown,
}

impl Format {
    /// Parses a CLI format name.
    pub fn parse(s: &str) -> Result<Format, String> {
        Ok(match s {
            "table" => Format::Table,
            "json" => Format::Json,
            "csv" => Format::Csv,
            "markdown" | "md" => Format::Markdown,
            other => return Err(format!("unknown format `{other}` (table|json|csv|markdown)")),
        })
    }
}

/// A rendered-format-agnostic table: title, header, text rows.
#[derive(Debug, Default)]
pub struct Table {
    /// Optional title line printed above the table (blank to omit).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row-major cell text.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table from string-ish parts.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Table => self.render_unicode(),
            Format::Json => self.render_json(),
            Format::Csv => self.render_csv(),
            Format::Markdown => self.render_markdown(),
        }
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if let Some(slot) = w.get_mut(i) {
                    *slot = (*slot).max(cell.chars().count());
                }
            }
        }
        w
    }

    fn render_unicode(&self) -> String {
        let w = self.widths();
        let rule = |c: char| -> String {
            let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
            c.to_string().repeat(total)
        };
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        out.push_str(&rule('─'));
        out.push('\n');
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&rule('═'));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out.push_str(&rule('─'));
        out.push('\n');
        out
    }

    fn render_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let obj: Vec<(String, serde_json::Value)> = self
                    .header
                    .iter()
                    .zip(row)
                    .map(|(h, c)| (h.clone(), serde_json::Value::Str(c.clone())))
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        let mut s =
            serde_json::to_string_pretty(&serde_json::Value::Array(rows)).unwrap_or_default();
        s.push('\n');
        s
    }

    fn render_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("**{}**\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| " --- |").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Renders a numeric series as a unicode sparkline (`▁▂▃▄▅▆▇█`).
/// Flat series render as all-low blocks; empty series as "".
pub fn sparkline(vals: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return String::new();
    }
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    vals.iter()
        .map(|v| {
            let idx = if span > 0.0 {
                (((v - min) / span) * 7.0).round() as usize
            } else {
                0
            };
            BLOCKS[idx.min(7)]
        })
        .collect()
}

/// Formats an f64 for table cells: integral values without a trailing
/// `.0`, others in shortest round-trip form (matching the JSON wire
/// format, so displayed metrics compare bit-for-bit against blobs).
pub fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        serde_json::to_string(&v).unwrap_or_else(|_| v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("demo", &["suite", "value"]);
        t.push_row(vec!["repro_x".into(), "4.5".into()]);
        t.push_row(vec!["repro_y".into(), "0.7".into()]);
        t
    }

    #[test]
    fn unicode_table_shape() {
        let s = t().render(Format::Table);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "demo");
        assert!(lines[1].starts_with('─'));
        assert!(lines[2].starts_with("suite"));
        assert!(lines[3].starts_with('═'));
        assert!(lines.last().unwrap().starts_with('─'));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let s = t.render(Format::Csv);
        assert_eq!(s, "a,b\n\"x,y\",plain\n");
    }

    #[test]
    fn markdown_and_json_forms() {
        let md = t().render(Format::Markdown);
        assert!(md.contains("| suite | value |"));
        assert!(md.contains("| --- | --- |"));
        let js = t().render(Format::Json);
        let v = serde_json::from_str::<serde_json::Value>(&js).unwrap();
        match v {
            serde_json::Value::Array(rows) => assert_eq!(rows.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn sparkline_spans_blocks() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(4.0), "4");
        assert_eq!(num(0.7046803509863809), "0.7046803509863809");
    }
}
