//! The checked-in budget file (`budgets.toml`).
//!
//! Budgets used to live as constants inside each bench bin and as env
//! assertions in CI; this module moves them into data so the sentinel,
//! the bins, and CI all read one source of truth. The file is the TOML
//! subset of [`crate::minitoml`]:
//!
//! ```toml
//! [sentinel]
//! history_window = 5
//!
//! [[budget]]
//! suite = "repro_telemetry"
//! metric = "disabled_overhead_pct"
//! max = 2.0
//! label = "telemetry disabled-path overhead"
//!
//! [[trajectory]]
//! suite = "repro_bitslice"
//! metric = "rows.capture_proxy64.speedup"
//! out = "BENCH_bitslice.json"
//! ```
//!
//! A budget may bound a metric absolutely (`min` / `max`) and/or
//! relative to history (`max_regress_pct` against the median of the
//! prior window). Trajectories name headline metrics the sentinel
//! mirrors into append-safe `BENCH_*.json` files.

use std::path::Path;

use crate::minitoml::{self, TomlValue};

/// One budget rule for `suite`/`metric`.
#[derive(Clone, Debug, PartialEq)]
pub struct Budget {
    /// Suite whose latest run is checked.
    pub suite: String,
    /// Flattened metric key inside the suite's records.
    pub metric: String,
    /// Absolute floor (inclusive).
    pub min: Option<f64>,
    /// Absolute ceiling (inclusive).
    pub max: Option<f64>,
    /// Maximum tolerated regression (percent, in the "worse"
    /// direction) of the latest value vs the median of the prior
    /// window. "Worse" means up when `max` bounds the metric, down
    /// when `min` does.
    pub max_regress_pct: Option<f64>,
    /// Human label for rendered tables.
    pub label: String,
}

/// A headline metric mirrored into a `BENCH_*.json` trajectory file.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Source suite.
    pub suite: String,
    /// Flattened metric key.
    pub metric: String,
    /// Output file name, relative to the repo root.
    pub out: String,
}

/// Parsed budgets file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Budgets {
    /// Prior-run window for regression baselines.
    pub history_window: usize,
    /// All budget rules, file order.
    pub budgets: Vec<Budget>,
    /// All trajectory mirrors, file order.
    pub trajectories: Vec<Trajectory>,
}

/// Default budgets path relative to the repo root.
pub const DEFAULT_BUDGETS_PATH: &str = "budgets.toml";

/// Env var overriding the budgets path (used by bins run from other
/// working directories).
pub const BUDGETS_ENV: &str = "APOLLO_BUDGETS";

impl Budgets {
    /// Parses a budgets document.
    pub fn parse(text: &str) -> Result<Budgets, String> {
        let mut out = Budgets {
            history_window: 5,
            ..Budgets::default()
        };
        for table in minitoml::parse(text)? {
            match (table.name.as_str(), table.is_array) {
                ("sentinel", false) => {
                    if let Some(v) = table.get("history_window") {
                        let w = v
                            .as_f64()
                            .filter(|w| *w >= 1.0)
                            .ok_or("sentinel.history_window must be a positive integer")?;
                        out.history_window = w as usize;
                    }
                }
                ("budget", true) => {
                    let suite = req_str(&table, "suite")?;
                    let metric = req_str(&table, "metric")?;
                    let budget = Budget {
                        label: table
                            .get("label")
                            .and_then(TomlValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                        min: opt_f64(&table, "min")?,
                        max: opt_f64(&table, "max")?,
                        max_regress_pct: opt_f64(&table, "max_regress_pct")?,
                        suite,
                        metric,
                    };
                    if budget.min.is_none()
                        && budget.max.is_none()
                        && budget.max_regress_pct.is_none()
                    {
                        return Err(format!(
                            "budget {}/{} declares no bound (min/max/max_regress_pct)",
                            budget.suite, budget.metric
                        ));
                    }
                    out.budgets.push(budget);
                }
                ("trajectory", true) => out.trajectories.push(Trajectory {
                    suite: req_str(&table, "suite")?,
                    metric: req_str(&table, "metric")?,
                    out: req_str(&table, "out")?,
                }),
                (other, _) => {
                    return Err(format!(
                        "unknown budgets table `{other}` (sentinel|budget|trajectory)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Loads and parses a budgets file.
    pub fn load(path: &Path) -> Result<Budgets, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Budgets::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads from `$APOLLO_BUDGETS` or `./budgets.toml`; `Ok(None)`
    /// when neither exists (callers fall back to built-in defaults).
    pub fn load_default() -> Result<Option<Budgets>, String> {
        let path = std::env::var(BUDGETS_ENV)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| std::path::PathBuf::from(DEFAULT_BUDGETS_PATH));
        if !path.exists() {
            return Ok(None);
        }
        Budgets::load(&path).map(Some)
    }

    /// Budget rules for one suite, file order.
    pub fn for_suite(&self, suite: &str) -> Vec<&Budget> {
        self.budgets.iter().filter(|b| b.suite == suite).collect()
    }

    /// The declared ceiling for `suite`/`metric`, if any — the lookup
    /// bench bins use in place of their old `BUDGET_PCT` constants.
    pub fn declared_max(&self, suite: &str, metric: &str) -> Option<f64> {
        self.budgets
            .iter()
            .find(|b| b.suite == suite && b.metric == metric)
            .and_then(|b| b.max)
    }

    /// The declared floor for `suite`/`metric`, if any.
    pub fn declared_min(&self, suite: &str, metric: &str) -> Option<f64> {
        self.budgets
            .iter()
            .find(|b| b.suite == suite && b.metric == metric)
            .and_then(|b| b.min)
    }
}

/// One-call helper for bench bins: the budget ceiling for
/// `suite`/`metric` from the default budgets file, or `fallback` when
/// the file (or the rule) is absent.
pub fn budget_max_or(suite: &str, metric: &str, fallback: f64) -> f64 {
    Budgets::load_default()
        .ok()
        .flatten()
        .and_then(|b| b.declared_max(suite, metric))
        .unwrap_or(fallback)
}

/// One-call helper for bench bins: the budget floor for
/// `suite`/`metric`, or `fallback`.
pub fn budget_min_or(suite: &str, metric: &str, fallback: f64) -> f64 {
    Budgets::load_default()
        .ok()
        .flatten()
        .and_then(|b| b.declared_min(suite, metric))
        .unwrap_or(fallback)
}

fn req_str(table: &minitoml::TomlTable, key: &str) -> Result<String, String> {
    table
        .get(key)
        .and_then(TomlValue::as_str)
        .map(str::to_string)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("[[{}]] missing string key `{key}`", table.name))
}

fn opt_f64(table: &minitoml::TomlTable, key: &str) -> Result<Option<f64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("[[{}]] key `{key}` must be numeric", table.name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
[sentinel]
history_window = 3

[[budget]]
suite = "repro_telemetry"
metric = "disabled_overhead_pct"
max = 2.0
label = "disabled-path overhead"

[[budget]]
suite = "repro_bitslice"
metric = "rows.capture_proxy64.speedup"
min = 4.0
max_regress_pct = 20

[[trajectory]]
suite = "repro_bitslice"
metric = "rows.capture_proxy64.speedup"
out = "BENCH_bitslice.json"
"#;

    #[test]
    fn parses_full_document() {
        let b = Budgets::parse(DOC).unwrap();
        assert_eq!(b.history_window, 3);
        assert_eq!(b.budgets.len(), 2);
        assert_eq!(b.trajectories.len(), 1);
        assert_eq!(b.declared_max("repro_telemetry", "disabled_overhead_pct"), Some(2.0));
        assert_eq!(b.declared_min("repro_bitslice", "rows.capture_proxy64.speedup"), Some(4.0));
        assert_eq!(b.budgets[1].max_regress_pct, Some(20.0));
        assert_eq!(b.for_suite("repro_telemetry").len(), 1);
        assert_eq!(b.for_suite("nope").len(), 0);
    }

    #[test]
    fn boundless_budget_is_rejected() {
        let doc = "[[budget]]\nsuite = \"s\"\nmetric = \"m\"\nlabel = \"no bound\"";
        let err = Budgets::parse(doc).unwrap_err();
        assert!(err.contains("declares no bound"), "{err}");
    }

    #[test]
    fn unknown_table_is_rejected() {
        assert!(Budgets::parse("[mystery]\nx = 1").is_err());
    }
}
