//! The run-record wire schema.
//!
//! Every line a store segment holds is one [`RunRecord`], framed
//! exactly like the telemetry event stream (shared machinery in
//! [`apollo_telemetry::framing`]):
//!
//! ```json
//! {"v":1,"seq":2,"ts_ns":1754650000000000000,
//!  "run_id":"5f21c407d1e8","git_rev":"fc2332d9a1b2","suite":"repro_telemetry",
//!  "metrics":[["disabled_overhead_pct",{"F64":0.70}],["reps",{"U64":7}]],
//!  "tags":[["quick","0"],["source","bench"]]}
//! ```
//!
//! * `v` — schema version ([`RESULT_SCHEMA_VERSION`]); readers must
//!   reject versions they do not know.
//! * `seq` — dense per-suite sequence number assigned by the store at
//!   append time.
//! * `ts_ns` — nanoseconds since the UNIX epoch at append time.
//! * `run_id` — opaque per-process run identity.
//! * `git_rev` — the repository revision the run was produced at
//!   (`unknown` outside a checkout).
//! * `suite` — the segment name; one JSONL file per suite.
//! * `metrics` — ordered `[key, typed value]` pairs (telemetry
//!   [`FieldValue`]s), sorted strictly ascending by key.
//! * `tags` — ordered `[key, string]` pairs, sorted strictly
//!   ascending by key.
//!
//! # Determinism contract
//!
//! `ts_ns` and `run_id` are the only fields allowed to differ between
//! two appends of the same logical run; [`RunRecord::strip_timing`]
//! clears both — the same contract as the telemetry
//! `Record::strip_timing`. Query and sentinel renderings never print
//! either field, so their outputs are byte-deterministic given equal
//! stored values.

use apollo_telemetry::framing::{self, Framed};
use apollo_telemetry::FieldValue;
use serde::{Deserialize, Serialize};

/// Version stamped into every run record's `v` field.
pub const RESULT_SCHEMA_VERSION: u32 = 1;

/// One store line: framing fields, run identity, and the flattened
/// metric/tag payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Schema version ([`RESULT_SCHEMA_VERSION`]).
    pub v: u32,
    /// Dense per-suite append index (store-assigned).
    pub seq: u64,
    /// Nanoseconds since the UNIX epoch at append time. Timing-only:
    /// excluded from determinism comparisons.
    pub ts_ns: u64,
    /// Opaque per-process run identity. Excluded from determinism
    /// comparisons alongside `ts_ns`.
    pub run_id: String,
    /// Repository revision the run was produced at.
    pub git_rev: String,
    /// Suite name (also the segment file stem).
    pub suite: String,
    /// Flattened numeric/bool payload, sorted strictly ascending by
    /// key.
    pub metrics: Vec<(String, FieldValue)>,
    /// String payload (configs, modes), sorted strictly ascending by
    /// key.
    pub tags: Vec<(String, String)>,
}

impl Framed for RunRecord {
    const VERSION: u32 = RESULT_SCHEMA_VERSION;

    fn version(&self) -> u32 {
        self.v
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn check_payload(&self) -> Result<(), String> {
        if self.suite.is_empty() {
            return Err("empty suite name".into());
        }
        if self
            .suite
            .chars()
            .any(|c| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        {
            return Err(format!("suite `{}` is not a clean segment name", self.suite));
        }
        let mut prev: Option<&str> = None;
        for (k, v) in &self.metrics {
            if k.is_empty() {
                return Err("empty metric key".into());
            }
            if let Some(p) = prev {
                if p >= k.as_str() {
                    return Err(format!("metric keys not strictly sorted at `{k}`"));
                }
            }
            prev = Some(k);
            if let FieldValue::F64(f) = v {
                if !f.is_finite() {
                    return Err(format!("non-finite metric `{k}`"));
                }
            }
        }
        let mut prev: Option<&str> = None;
        for (k, _) in &self.tags {
            if k.is_empty() {
                return Err("empty tag key".into());
            }
            if let Some(p) = prev {
                if p >= k.as_str() {
                    return Err(format!("tag keys not strictly sorted at `{k}`"));
                }
            }
            prev = Some(k);
        }
        Ok(())
    }
}

impl RunRecord {
    /// Builds a record in canonical form: metrics and tags sorted by
    /// key with duplicates dropped (first occurrence wins), `v` set,
    /// `seq` left 0 for the store to assign.
    pub fn new(
        suite: impl Into<String>,
        mut metrics: Vec<(String, FieldValue)>,
        mut tags: Vec<(String, String)>,
    ) -> RunRecord {
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        metrics.dedup_by(|b, a| a.0 == b.0);
        tags.sort_by(|a, b| a.0.cmp(&b.0));
        tags.dedup_by(|b, a| a.0 == b.0);
        RunRecord {
            v: RESULT_SCHEMA_VERSION,
            seq: 0,
            ts_ns: 0,
            run_id: String::new(),
            git_rev: String::new(),
            suite: suite.into(),
            metrics,
            tags,
        }
    }

    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        framing::to_jsonl(self)
    }

    /// Copy with the wall-clock/identity fields cleared (`ts_ns`,
    /// `run_id`) for differential comparisons — the results-store
    /// mirror of the telemetry `Record::strip_timing` contract.
    pub fn strip_timing(&self) -> RunRecord {
        let mut r = self.clone();
        r.ts_ns = 0;
        r.run_id = String::new();
        r
    }

    /// Looks up a metric by exact key.
    pub fn metric(&self, key: &str) -> Option<&FieldValue> {
        self.metrics
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Looks up a metric and widens it to `f64` (bools as 0/1).
    pub fn metric_f64(&self, key: &str) -> Option<f64> {
        self.metric(key).and_then(field_f64)
    }

    /// Looks up a tag by exact key.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.tags[i].1.as_str())
    }
}

/// Widens a numeric/bool field value to `f64` (strings have no numeric
/// reading and return `None`).
pub fn field_f64(v: &FieldValue) -> Option<f64> {
    match v {
        FieldValue::U64(u) => Some(*u as f64),
        FieldValue::I64(i) => Some(*i as f64),
        FieldValue::F64(f) => Some(*f),
        FieldValue::Bool(b) => Some(u8::from(*b) as f64),
        FieldValue::Str(_) => None,
    }
}

/// Renders a field value the way the JSON wire format would — floats
/// with shortest round-trip formatting, so a printed metric matches
/// the legacy blob byte-for-byte.
pub fn field_text(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(u) => u.to_string(),
        FieldValue::I64(i) => i.to_string(),
        FieldValue::F64(f) => {
            serde_json::to_string(f).expect("finite float serialization is infallible")
        }
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => s.clone(),
    }
}

/// Parses and validates one store line (shared framing checks plus the
/// run-record payload rules).
pub fn validate_result_line(line: &str) -> Result<RunRecord, String> {
    framing::validate_framed(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> RunRecord {
        let mut r = RunRecord::new(
            "demo_suite",
            vec![
                ("b.speed".into(), FieldValue::F64(4.5)),
                ("a.count".into(), FieldValue::U64(7)),
            ],
            vec![("quick".into(), "0".into())],
        );
        r.seq = 3;
        r.ts_ns = 123;
        r.run_id = "abc".into();
        r.git_rev = "deadbeef".into();
        r
    }

    #[test]
    fn canonical_form_and_roundtrip() {
        let r = rec();
        assert_eq!(r.metrics[0].0, "a.count"); // sorted at construction
        let line = r.to_jsonl();
        assert_eq!(validate_result_line(&line).unwrap(), r);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let line = rec().to_jsonl().replace("\"v\":1", "\"v\":2");
        let err = validate_result_line(&line).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
    }

    #[test]
    fn unsorted_metrics_are_rejected() {
        let mut r = rec();
        r.metrics.swap(0, 1);
        let err = validate_result_line(&r.to_jsonl()).unwrap_err();
        assert!(err.contains("not strictly sorted"), "{err}");
    }

    #[test]
    fn strip_timing_clears_only_identity() {
        let r = rec();
        let s = r.strip_timing();
        assert_eq!(s.ts_ns, 0);
        assert_eq!(s.run_id, "");
        assert_eq!(s.git_rev, r.git_rev);
        assert_eq!(s.metrics, r.metrics);
    }

    #[test]
    fn lookups() {
        let r = rec();
        assert_eq!(r.metric_f64("a.count"), Some(7.0));
        assert_eq!(r.metric_f64("b.speed"), Some(4.5));
        assert_eq!(r.metric("nope"), None);
        assert_eq!(r.tag("quick"), Some("0"));
    }

    #[test]
    fn field_text_matches_json_wire_format() {
        assert_eq!(field_text(&FieldValue::F64(0.7046803509863809)), "0.7046803509863809");
        assert_eq!(field_text(&FieldValue::U64(10000)), "10000");
        assert_eq!(field_text(&FieldValue::Bool(true)), "true");
    }
}
