//! Columnar in-memory query view over the segment store.
//!
//! [`ResultsView`] transposes each suite's record stream into columns
//! (one `Vec<Option<...>>` per metric/tag key, row-aligned with the
//! run axis) so queries — latest-N, history, group-by, aggregation —
//! are cheap scans rather than repeated record walks.

use std::collections::BTreeMap;

use apollo_telemetry::FieldValue;

use crate::envelope::field_f64;
use crate::store::SegmentRead;

/// All loaded suites, keyed by name (sorted iteration for free).
#[derive(Debug, Default)]
pub struct ResultsView {
    /// Per-suite columnar data.
    pub suites: BTreeMap<String, SuiteView>,
}

/// One suite's runs, column-major.
///
/// Row `i` across all columns describes the suite's `i`-th stored run
/// (file order == seq order). Metric/tag columns hold `None` where a
/// run did not report that key, so schema drift between runs is
/// queryable rather than fatal.
#[derive(Debug, Default)]
pub struct SuiteView {
    /// Sequence numbers, dense and ascending.
    pub seqs: Vec<u64>,
    /// Append timestamps (ns since epoch).
    pub ts_ns: Vec<u64>,
    /// Run identities.
    pub run_ids: Vec<String>,
    /// Repository revisions.
    pub git_revs: Vec<String>,
    /// Metric columns, keyed by metric name.
    pub metrics: BTreeMap<String, Vec<Option<FieldValue>>>,
    /// Tag columns, keyed by tag name.
    pub tags: BTreeMap<String, Vec<Option<String>>>,
    /// Whether the segment read skipped a corrupt tail line.
    pub tail_skipped: bool,
}

/// An aggregation over one metric column of a row group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// Number of runs reporting the metric.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median (lower-middle for even counts — deterministic, no
    /// interpolation).
    Median,
    /// Value of the latest run reporting the metric.
    Latest,
    /// Percent change of the latest value vs the median of the prior
    /// window (`100 * (latest - prior_median) / |prior_median|`).
    DeltaPct,
}

impl Agg {
    /// Parses a CLI aggregation name.
    pub fn parse(s: &str) -> Result<Agg, String> {
        Ok(match s {
            "count" | "n" => Agg::Count,
            "min" => Agg::Min,
            "max" => Agg::Max,
            "median" => Agg::Median,
            "latest" => Agg::Latest,
            "delta" | "delta_pct" => Agg::DeltaPct,
            other => return Err(format!("unknown aggregation `{other}` (count|min|max|median|latest|delta)")),
        })
    }

    /// Short column label for rendered tables.
    pub fn label(&self) -> &'static str {
        match self {
            Agg::Count => "n",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Median => "median",
            Agg::Latest => "latest",
            Agg::DeltaPct => "delta%",
        }
    }
}

impl ResultsView {
    /// Ingests one suite's segment read (store glue).
    pub fn add_suite(&mut self, suite: &str, read: &SegmentRead) {
        let sv = self.suites.entry(suite.to_string()).or_default();
        sv.tail_skipped = read.tail_skipped;
        for rec in &read.records {
            let row = sv.seqs.len();
            sv.seqs.push(rec.seq);
            sv.ts_ns.push(rec.ts_ns);
            sv.run_ids.push(rec.run_id.clone());
            sv.git_revs.push(rec.git_rev.clone());
            for (k, v) in &rec.metrics {
                let col = sv.metrics.entry(k.clone()).or_default();
                col.resize(row, None);
                col.push(Some(v.clone()));
            }
            for (k, v) in &rec.tags {
                let col = sv.tags.entry(k.clone()).or_default();
                col.resize(row, None);
                col.push(Some(v.clone()));
            }
        }
        // Right-pad columns a late run stopped reporting.
        let n = sv.seqs.len();
        for col in sv.metrics.values_mut() {
            col.resize(n, None);
        }
        for col in sv.tags.values_mut() {
            col.resize(n, None);
        }
    }

    /// The named suite, if loaded.
    pub fn suite(&self, name: &str) -> Option<&SuiteView> {
        self.suites.get(name)
    }
}

impl SuiteView {
    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the suite holds no runs.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Sorted metric names observed across all runs.
    pub fn metric_names(&self) -> Vec<&str> {
        self.metrics.keys().map(String::as_str).collect()
    }

    /// Metric value at `row`, widened to `f64`.
    pub fn metric_at(&self, metric: &str, row: usize) -> Option<f64> {
        self.metrics
            .get(metric)?
            .get(row)?
            .as_ref()
            .and_then(field_f64)
    }

    /// The latest run's value for `metric` (typed).
    pub fn latest(&self, metric: &str) -> Option<&FieldValue> {
        self.metrics.get(metric)?.last()?.as_ref()
    }

    /// The latest run's value for `metric` as `f64`.
    pub fn latest_f64(&self, metric: &str) -> Option<f64> {
        self.latest(metric).and_then(field_f64)
    }

    /// Row indices of the last `n` runs, oldest first.
    pub fn latest_rows(&self, n: usize) -> std::ops::Range<usize> {
        self.len().saturating_sub(n)..self.len()
    }

    /// `(seq, value)` history of a metric across runs that report it,
    /// oldest first.
    pub fn history(&self, metric: &str) -> Vec<(u64, f64)> {
        let Some(col) = self.metrics.get(metric) else {
            return Vec::new();
        };
        col.iter()
            .enumerate()
            .filter_map(|(i, v)| Some((self.seqs[i], field_f64(v.as_ref()?)?)))
            .collect()
    }

    /// Median of the metric over up to `window` runs *before* the
    /// latest one — the sentinel's regression baseline. `None` until
    /// at least one prior run reports the metric.
    pub fn median_of_prior(&self, metric: &str, window: usize) -> Option<f64> {
        let hist = self.history(metric);
        if hist.len() < 2 || window == 0 {
            return None;
        }
        let prior = &hist[..hist.len() - 1];
        let start = prior.len().saturating_sub(window);
        let mut vals: Vec<f64> = prior[start..].iter().map(|(_, v)| *v).collect();
        median_in_place(&mut vals)
    }

    /// Applies one aggregation to the metric over the given rows.
    pub fn aggregate(&self, metric: &str, rows: &[usize], agg: Agg) -> Option<f64> {
        let vals: Vec<f64> = rows
            .iter()
            .filter_map(|&r| self.metric_at(metric, r))
            .collect();
        match agg {
            Agg::Count => Some(vals.len() as f64),
            Agg::Min => vals.iter().copied().reduce(f64::min),
            Agg::Max => vals.iter().copied().reduce(f64::max),
            Agg::Median => {
                let mut v = vals;
                median_in_place(&mut v)
            }
            Agg::Latest => vals.last().copied(),
            Agg::DeltaPct => {
                if vals.len() < 2 {
                    return None;
                }
                let latest = *vals.last().unwrap();
                let mut prior: Vec<f64> = vals[..vals.len() - 1].to_vec();
                let base = median_in_place(&mut prior)?;
                if base == 0.0 {
                    return None;
                }
                Some(100.0 * (latest - base) / base.abs())
            }
        }
    }

    /// Groups rows by the values of a tag column (rows without the tag
    /// fall into the `"-"` group). Returns sorted `(group, rows)`.
    pub fn group_by_tag(&self, tag: &str) -> Vec<(String, Vec<usize>)> {
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let col = self.tags.get(tag);
        for row in 0..self.len() {
            let key = col
                .and_then(|c| c.get(row))
                .and_then(|v| v.clone())
                .unwrap_or_else(|| "-".to_string());
            groups.entry(key).or_default().push(row);
        }
        groups.into_iter().collect()
    }
}

/// Deterministic median: sorts (total order via `total_cmp`) and takes
/// the lower-middle element, so the result is always a stored value.
pub fn median_in_place(vals: &mut [f64]) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(f64::total_cmp);
    Some(vals[(vals.len() - 1) / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::RunRecord;

    fn read_of(vals: &[(&str, f64)]) -> SegmentRead {
        let mut read = SegmentRead::default();
        for (i, (tag, v)) in vals.iter().enumerate() {
            let mut r = RunRecord::new(
                "s",
                vec![("m".into(), FieldValue::F64(*v))],
                vec![("mode".into(), tag.to_string())],
            );
            r.seq = i as u64;
            read.records.push(r);
        }
        read
    }

    #[test]
    fn columns_align_and_queries_work() {
        let mut view = ResultsView::default();
        view.add_suite("s", &read_of(&[("a", 1.0), ("b", 3.0), ("a", 2.0)]));
        let sv = view.suite("s").unwrap();
        assert_eq!(sv.len(), 3);
        assert_eq!(sv.latest_f64("m"), Some(2.0));
        assert_eq!(sv.history("m"), vec![(0, 1.0), (1, 3.0), (2, 2.0)]);
        assert_eq!(sv.median_of_prior("m", 5), Some(1.0)); // median of [1,3] = lower-middle
        let groups = sv.group_by_tag("mode");
        assert_eq!(groups, vec![("a".into(), vec![0, 2]), ("b".into(), vec![1])]);
        let rows: Vec<usize> = (0..3).collect();
        assert_eq!(sv.aggregate("m", &rows, Agg::Min), Some(1.0));
        assert_eq!(sv.aggregate("m", &rows, Agg::Max), Some(3.0));
        assert_eq!(sv.aggregate("m", &rows, Agg::Median), Some(2.0));
        assert_eq!(sv.aggregate("m", &rows, Agg::Count), Some(3.0));
    }

    #[test]
    fn missing_metrics_pad_with_none() {
        let mut read = read_of(&[("a", 1.0)]);
        let mut extra = RunRecord::new("s", vec![("other".into(), FieldValue::U64(9))], vec![]);
        extra.seq = 1;
        read.records.push(extra);
        let mut view = ResultsView::default();
        view.add_suite("s", &read);
        let sv = view.suite("s").unwrap();
        assert_eq!(sv.metrics["m"].len(), 2);
        assert_eq!(sv.metrics["m"][1], None);
        assert_eq!(sv.metrics["other"][0], None);
        assert_eq!(sv.latest("m"), None); // latest run didn't report it
        assert_eq!(sv.metric_at("other", 1), Some(9.0));
    }

    #[test]
    fn delta_pct_vs_prior_median() {
        let mut view = ResultsView::default();
        view.add_suite("s", &read_of(&[("a", 10.0), ("a", 10.0), ("a", 12.0)]));
        let sv = view.suite("s").unwrap();
        let rows: Vec<usize> = (0..3).collect();
        assert_eq!(sv.aggregate("m", &rows, Agg::DeltaPct), Some(20.0));
    }
}
