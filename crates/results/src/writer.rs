//! Live-writer glue for bench bins.
//!
//! A bin that already serializes its legacy `results/<name>.json` blob
//! calls [`record_bench_run`] with the same value; the record is the
//! blob flattened through the exact code path the importer uses, so
//! store queries reproduce the blob's numbers bit-for-bit.

use std::path::PathBuf;

use crate::envelope::RunRecord;
use crate::import::flatten;
use crate::store::ResultStore;
use serde::Serialize;

/// Env var overriding the store directory (tests and CI point it at
/// scratch space so quick-mode runs don't pollute checked-in history).
pub const STORE_ENV: &str = "APOLLO_RESULTS_STORE";

/// Env var overriding the recorded git revision (CI sets it to the
/// commit under test; otherwise `.git/HEAD` is resolved).
pub const GIT_REV_ENV: &str = "APOLLO_GIT_REV";

/// The store bins and the CLI write to by default:
/// `$APOLLO_RESULTS_STORE` or `results/store`.
pub fn default_store() -> ResultStore {
    let dir = std::env::var(STORE_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results").join("store"));
    ResultStore::open(dir)
}

/// A practically-unique run identity: hex of wall-clock nanos mixed
/// with the process id. Opaque by contract — consumers only ever
/// compare it for equality.
pub fn new_run_id() -> String {
    let ns = crate::store::now_ns();
    let pid = std::process::id() as u64;
    format!("{:016x}", ns ^ pid.rotate_left(40))
}

/// The current repository revision: `$APOLLO_GIT_REV`, else resolved
/// from `.git/HEAD` (following one level of ref indirection, including
/// packed refs), else `"unknown"`.
pub fn current_git_rev() -> String {
    if let Ok(rev) = std::env::var(GIT_REV_ENV) {
        if !rev.is_empty() {
            return rev;
        }
    }
    resolve_git_head().unwrap_or_else(|| "unknown".to_string())
}

fn resolve_git_head() -> Option<String> {
    // Walk up from the CWD so bins run from crate subdirectories still
    // find the repository root.
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_head(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(text) = std::fs::read_to_string(git.join(refname)) {
            return Some(text.trim().to_string());
        }
        // Packed ref fallback.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return Some(hash.trim().to_string());
            }
        }
        return None;
    }
    (!head.is_empty()).then(|| head.to_string())
}

/// Appends one run record for a bench bin's output value.
///
/// `out` is the same struct the bin writes as its legacy JSON blob;
/// it is flattened with the importer's rules, tagged with
/// `source=bench` plus `extra_tags`, stamped with run identity, and
/// appended to the default store. Returns the stored record.
pub fn record_bench_run<T: Serialize>(
    suite: &str,
    out: &T,
    extra_tags: &[(&str, &str)],
) -> Result<RunRecord, String> {
    let value = serde_json::to_value(out).map_err(|e| format!("serialize {suite}: {e}"))?;
    let (metrics, mut tags) = flatten(&value);
    tags.push(("source".into(), "bench".into()));
    for (k, v) in extra_tags {
        tags.push(((*k).to_string(), (*v).to_string()));
    }
    let mut rec = RunRecord::new(suite, metrics, tags);
    rec.run_id = new_run_id();
    rec.git_rev = current_git_rev();
    default_store().append(&rec)
}

/// [`record_bench_run`] for bins: warn on stderr instead of failing —
/// a benchmark must never die because the results store is unwritable.
pub fn record_bench_run_soft<T: Serialize>(suite: &str, out: &T, extra_tags: &[(&str, &str)]) {
    if let Err(e) = record_bench_run(suite, out, extra_tags) {
        eprintln!("warning: results store append failed for {suite}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_unique_enough() {
        let a = new_run_id();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = new_run_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn head_resolution_reads_repo_rev() {
        // The workspace is a git repo; HEAD resolution should find
        // *some* rev rather than nothing. (Env override is covered by
        // the CLI smoke paths; mutating env vars in parallel unit
        // tests races.)
        let rev = resolve_git_head();
        assert!(rev.map(|r| !r.is_empty()).unwrap_or(true));
    }
}
