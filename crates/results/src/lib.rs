//! Queryable results store for the APOLLO reproduction.
//!
//! Every bench, accuracy, and overhead run in this repo used to leave
//! behind a point-in-time JSON blob (`results/<name>.json`) that the
//! next run overwrote. This crate gives those numbers a history:
//!
//! * **Envelope** ([`envelope`]): one schema-versioned [`RunRecord`]
//!   per run — `{v, seq, ts_ns, run_id, git_rev, suite, metrics,
//!   tags}` — framed and validated exactly like the telemetry event
//!   stream (shared machinery in `apollo_telemetry::framing`).
//! * **Store** ([`store`]): append-only JSONL segments, one file per
//!   suite under `results/store/`. Corrupt tails are skipped with a
//!   counter and clipped on the next append; mid-file corruption is a
//!   hard error.
//! * **View** ([`view`]): a columnar in-memory transpose for queries —
//!   latest-N, per-metric history, group-by tag/suite, min / median /
//!   latest / delta aggregations.
//! * **Query & render** ([`query`], [`render`]): the table shapes
//!   behind `apollo results`, rendered as unicode table, JSON, CSV, or
//!   markdown — byte-deterministic given equal stored values.
//! * **Budgets & sentinel** ([`budgets`], [`sentinel`]): regression
//!   gating against the checked-in `budgets.toml` (absolute floors /
//!   ceilings plus percent-regression vs the prior-window median) with
//!   a rendered verdict table, and append-safe `BENCH_*.json`
//!   trajectory mirrors.
//! * **Import & writer** ([`import`], [`writer`]): backfill adapters
//!   for legacy blobs and the live append path bench bins call — both
//!   flatten through one code path, so stored values match blob values
//!   bit-for-bit.
//!
//! # Determinism contract
//!
//! `ts_ns` and `run_id` are the only record fields that may differ
//! between identical runs ([`RunRecord::strip_timing`] clears both).
//! No query, history, or sentinel rendering includes either, so equal
//! stored values produce byte-equal output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budgets;
pub mod envelope;
pub mod import;
pub mod minitoml;
pub mod query;
pub mod render;
pub mod sentinel;
pub mod store;
pub mod view;
pub mod writer;

pub use budgets::{budget_max_or, budget_min_or, Budget, Budgets, Trajectory};
pub use envelope::{
    field_f64, field_text, validate_result_line, RunRecord, RESULT_SCHEMA_VERSION,
};
pub use import::{flatten, import_dir, ImportReport};
pub use render::{sparkline, Format, Table};
pub use sentinel::{emit_trajectories, run_sentinel, SentinelReport, Status};
pub use store::{ResultStore, SegmentRead};
pub use view::{Agg, ResultsView, SuiteView};
pub use writer::{default_store, record_bench_run, record_bench_run_soft};
