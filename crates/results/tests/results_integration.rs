//! Integration tests for the results store: write→read→query
//! round-trips, schema evolution, corrupt-tail recovery, the import
//! adapters over the real checked-in `results/*.json` blobs, and the
//! sentinel's regression gate.

use apollo_results::import::record_for_blob;
use apollo_results::{
    flatten, import_dir, run_sentinel, validate_result_line, Budgets, ResultStore, RunRecord,
    Status,
};
use apollo_telemetry::FieldValue;
use proptest::prelude::*;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "apollo_results_it_{tag}_{}_{}",
        std::process::id(),
        apollo_results::store::now_ns()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Path to the repo's checked-in legacy result blobs.
fn repo_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn rec(suite: &str, metrics: Vec<(String, FieldValue)>, tags: Vec<(String, String)>) -> RunRecord {
    let mut r = RunRecord::new(suite, metrics, tags);
    r.git_rev = "itest".into();
    r.run_id = "deadbeef00000000".into();
    r
}

// --- proptest: write → read → query equality ------------------------

fn field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        (-1.0e9f64..1.0e9).prop_map(FieldValue::F64),
        any::<u64>().prop_map(FieldValue::U64),
        any::<i64>().prop_map(FieldValue::I64),
        any::<bool>().prop_map(FieldValue::Bool),
        (0u32..1000).prop_map(|n| FieldValue::Str(format!("s{n}"))),
    ]
}

fn metric_key() -> impl Strategy<Value = String> {
    // Dotted paths like the flattened blob keys, drawn from a small
    // pool so duplicate-key canonicalization gets exercised too.
    (0usize..24, 0usize..4).prop_map(|(i, d)| {
        if d == 0 {
            format!("metric_{i}")
        } else {
            format!("group{d}.metric_{i}")
        }
    })
}

fn metric_set() -> impl Strategy<Value = Vec<(String, FieldValue)>> {
    prop::collection::vec((metric_key(), field_value()), 1..8)
}

fn tag_set() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        ((0usize..6).prop_map(|i| format!("tag{i}")), (0u32..40).prop_map(|v| format!("v{v}"))),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Appending arbitrary records and reading them back yields the
    /// same payloads (modulo ts_ns/run_id), dense seqs, and a view
    /// whose latest/history queries agree with the in-memory records.
    #[test]
    fn roundtrip_write_read_query(
        runs in prop::collection::vec((metric_set(), tag_set()), 1..6),
        case in any::<u64>(),
    ) {
        let dir = tmpdir(&format!("prop{case}"));
        let store = ResultStore::open(&dir);
        let mut expected = Vec::new();
        for (metrics, tags) in &runs {
            let r = rec("prop_suite", metrics.clone(), tags.clone());
            let appended = store.append(&r).unwrap();
            expected.push(appended);
        }
        let read = store.read_suite("prop_suite").unwrap();
        prop_assert!(!read.tail_skipped);
        prop_assert_eq!(read.records.len(), expected.len());
        for (i, (got, want)) in read.records.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got.seq, i as u64);
            prop_assert_eq!(got.strip_timing(), want.strip_timing());
        }

        // The columnar view reports exactly what the last record holds.
        let view = store.load_view().unwrap();
        let sv = view.suite("prop_suite").unwrap();
        let last = expected.last().unwrap();
        for (k, v) in &last.metrics {
            prop_assert_eq!(sv.latest(k), Some(v));
        }
        for (k, v) in &last.tags {
            let col = sv.tags.get(k).unwrap();
            prop_assert_eq!(col.last().unwrap().as_deref(), Some(v.as_str()));
        }
        // History over any metric only surfaces rows where it was
        // present, in seq order.
        for (k, _) in &last.metrics {
            let hist = sv.history(k);
            let mut prev = None;
            for (seq, _) in &hist {
                prop_assert!(prev.map(|p| p < *seq).unwrap_or(true));
                prev = Some(*seq);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

// --- schema evolution -----------------------------------------------

#[test]
fn v1_reader_rejects_unknown_schema_version() {
    let good = rec(
        "evo",
        vec![("m".into(), FieldValue::F64(1.0))],
        vec![],
    );
    let mut line: serde_json::Value = serde_json::from_str(&good.to_jsonl()).unwrap();
    if let serde_json::Value::Object(pairs) = &mut line {
        for (k, v) in pairs.iter_mut() {
            if k == "v" {
                *v = serde_json::Value::UInt(2);
            }
        }
    }
    let future = serde_json::to_string(&line).unwrap();
    let err = validate_result_line(&future).unwrap_err();
    assert!(
        err.contains("schema version 2") && err.contains("this reader understands 1"),
        "unexpected error: {err}"
    );

    // In a segment: a future-version line mid-file is a hard error (no
    // silent data loss); as the very last line it is a recoverable
    // torn tail.
    let dir = tmpdir("evo");
    let store = ResultStore::open(&dir);
    let a = store.append(&good).unwrap();
    let seg = store.segment_path("evo");
    let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
    let mut future_next: serde_json::Value = serde_json::from_str(&a.to_jsonl()).unwrap();
    if let serde_json::Value::Object(pairs) = &mut future_next {
        for (k, v) in pairs.iter_mut() {
            if k == "v" {
                *v = serde_json::Value::UInt(2);
            } else if k == "seq" {
                *v = serde_json::Value::UInt(1);
            }
        }
    }
    writeln!(f, "{}", serde_json::to_string(&future_next).unwrap()).unwrap();
    let read = store.read_suite("evo").unwrap();
    assert_eq!((read.records.len(), read.tail_skipped), (1, true));

    // Same future line followed by a valid one: now it is mid-file.
    writeln!(f, "{}", a.to_jsonl()).unwrap();
    drop(f);
    let err = store.read_suite("evo").unwrap_err();
    assert!(err.contains("schema version 2"), "unexpected error: {err}");
    let _ = fs::remove_dir_all(&dir);
}

// --- corrupt-tail recovery ------------------------------------------

#[test]
fn truncated_tail_is_skipped_and_repaired_on_append() {
    let dir = tmpdir("tail");
    let store = ResultStore::open(&dir);
    for i in 0..3 {
        store
            .append(&rec(
                "tail",
                vec![("m".into(), FieldValue::U64(i))],
                vec![],
            ))
            .unwrap();
    }
    // Tear the last line in half, as a crashed writer would.
    let seg = store.segment_path("tail");
    let text = fs::read_to_string(&seg).unwrap();
    let keep = text.len() - 20;
    fs::write(&seg, &text.as_bytes()[..keep]).unwrap();

    let read = store.read_suite("tail").unwrap();
    assert_eq!(read.records.len(), 2);
    assert!(read.tail_skipped);
    assert_eq!(read.records[1].metric_f64("m"), Some(1.0));

    // The next append truncates the torn bytes and lands at seq 2.
    let fixed = store
        .append(&rec(
            "tail",
            vec![("m".into(), FieldValue::U64(9))],
            vec![],
        ))
        .unwrap();
    assert_eq!(fixed.seq, 2);
    let read = store.read_suite("tail").unwrap();
    assert_eq!((read.records.len(), read.tail_skipped), (3, false));
    assert_eq!(read.records[2].metric_f64("m"), Some(9.0));
    let _ = fs::remove_dir_all(&dir);
}

// --- import adapters over the checked-in blobs ----------------------

#[test]
fn import_matches_checked_in_blobs_bit_for_bit() {
    let results_dir = repo_results_dir();
    assert!(
        results_dir.join("repro_telemetry.json").exists(),
        "checked-in fixtures missing at {}",
        results_dir.display()
    );
    let dir = tmpdir("import");
    let store = ResultStore::open(&dir);
    let report = import_dir(&results_dir, &store, false).unwrap();
    assert!(
        report.imported.len() >= 4,
        "expected at least the four repro suites, got {:?}",
        report.imported
    );

    // Every imported record must carry exactly the values `flatten`
    // derives from the source blob — bit-for-bit for floats.
    let view = store.load_view().unwrap();
    for (suite, _) in &report.imported {
        let blob_path = results_dir.join(format!("{suite}.json"));
        let text = fs::read_to_string(&blob_path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let want = record_for_blob(suite, &value);
        let sv = view
            .suite(suite)
            .unwrap_or_else(|| panic!("suite {suite} missing from store"));
        for (k, v) in &want.metrics {
            let got = sv
                .latest(k)
                .unwrap_or_else(|| panic!("{suite}: metric {k} missing"));
            match (got, v) {
                (FieldValue::F64(a), FieldValue::F64(b)) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{suite}.{k}: {a} != {b}"
                ),
                (a, b) => assert_eq!(a, b, "{suite}.{k}"),
            }
        }
        assert_eq!(sv.tags.get("source").and_then(|c| c.last().cloned()).flatten(),
            Some("legacy_import".to_string()));
    }

    // A second import without --force is a no-op.
    let again = import_dir(&results_dir, &store, false).unwrap();
    assert!(again.imported.is_empty());
    assert_eq!(again.skipped.len(), report.imported.len() + report.skipped.len());
    let _ = fs::remove_dir_all(&dir);
}

/// The live bench writer and the importer share one flatten path, so
/// a record written from a deserialized blob equals the imported one.
#[test]
fn live_writer_and_importer_flatten_identically() {
    let results_dir = repo_results_dir();
    let text = fs::read_to_string(results_dir.join("repro_telemetry.json")).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).unwrap();
    let (metrics, tags) = flatten(&value);
    let imported = record_for_blob("repro_telemetry", &value);
    for (k, v) in &metrics {
        assert_eq!(imported.metric(k), Some(v), "metric {k}");
    }
    for (k, v) in &tags {
        assert_eq!(imported.tag(k), Some(v.as_str()), "tag {k}");
    }
}

// --- sentinel gate ---------------------------------------------------

const GATE_BUDGETS: &str = r#"
[sentinel]
history_window = 5

[[budget]]
suite = "repro_bitslice"
metric = "speedup"
min = 4.0
label = "proxy capture speedup"

[[budget]]
suite = "repro_telemetry"
metric = "overhead_pct"
max = 2.0
label = "disabled-path overhead"
"#;

fn speed_rec(suite: &str, key: &str, val: f64) -> RunRecord {
    rec(suite, vec![(key.into(), FieldValue::F64(val))], vec![])
}

#[test]
fn sentinel_fails_on_synthetic_regression_and_passes_on_good_data() {
    let budgets = Budgets::parse(GATE_BUDGETS).unwrap();

    // Healthy history: floors and ceilings respected.
    let dir = tmpdir("sent_ok");
    let store = ResultStore::open(&dir);
    for v in [5.2, 5.4, 5.3] {
        store.append(&speed_rec("repro_bitslice", "speedup", v)).unwrap();
    }
    store
        .append(&speed_rec("repro_telemetry", "overhead_pct", 0.4))
        .unwrap();
    let view = store.load_view().unwrap();
    let report = run_sentinel(&view, &budgets, None);
    assert!(!report.failed(), "healthy data must pass:\n{:?}", report.rows);
    let _ = fs::remove_dir_all(&dir);

    // Inject a regression: latest speedup drops below the 4.0 floor.
    let dir = tmpdir("sent_bad");
    let store = ResultStore::open(&dir);
    for v in [5.2, 5.4, 3.0] {
        store.append(&speed_rec("repro_bitslice", "speedup", v)).unwrap();
    }
    store
        .append(&speed_rec("repro_telemetry", "overhead_pct", 0.4))
        .unwrap();
    let view = store.load_view().unwrap();
    let report = run_sentinel(&view, &budgets, None);
    assert!(report.failed(), "3.0 < min 4.0 must fail");
    let fail_rows: Vec<_> = report
        .rows
        .iter()
        .filter(|r| r.status == Status::Fail)
        .collect();
    assert_eq!(fail_rows.len(), 1);
    assert_eq!(fail_rows[0].metric, "speedup");
    let _ = fs::remove_dir_all(&dir);

    // A suite named in budgets but absent from the store reports
    // Missing without failing the gate.
    let dir = tmpdir("sent_missing");
    let store = ResultStore::open(&dir);
    store
        .append(&speed_rec("repro_telemetry", "overhead_pct", 0.4))
        .unwrap();
    let view = store.load_view().unwrap();
    let report = run_sentinel(&view, &budgets, None);
    assert!(!report.failed());
    assert!(report.rows.iter().any(|r| r.status == Status::Missing));
    let _ = fs::remove_dir_all(&dir);
}

/// The checked-in budgets.toml activates relative-regression rules
/// (`max_regress_pct`) for the introspect overhead ceiling and the
/// bitslice speedup floor. This test pins both: the declarations must
/// exist, and the rules must actually fire against synthetic
/// regressing histories (and stay quiet on drifts inside the limit).
#[test]
fn repo_budgets_activate_max_regress_rules() {
    let budgets = Budgets::load(&repo_results_dir().join("../budgets.toml")).unwrap();
    let regress_limit = |suite: &str, metric: &str| {
        budgets
            .budgets
            .iter()
            .find(|b| b.suite == suite && b.metric == metric)
            .unwrap_or_else(|| panic!("budgets.toml lacks {suite}.{metric}"))
            .max_regress_pct
            .unwrap_or_else(|| panic!("{suite}.{metric} lacks max_regress_pct"))
    };
    let overhead_limit = regress_limit("repro_introspect", "serving_overhead_pct");
    let speedup_limit = regress_limit("repro_bitslice", "rows.capture_proxy64.speedup");

    // Ceiling-bounded metric: "worse" is up. A latest value inside the
    // absolute max but far above the prior median must fail; the same
    // history with a drift inside the limit must pass.
    let run = |suite: &str, metric: &str, vals: &[f64]| {
        let dir = tmpdir("regress");
        let store = ResultStore::open(&dir);
        for v in vals {
            store.append(&speed_rec(suite, metric, *v)).unwrap();
        }
        let view = store.load_view().unwrap();
        let report = run_sentinel(&view, &budgets, Some(suite));
        let _ = fs::remove_dir_all(&dir);
        report
    };
    let bad_up = 1.0 * (1.0 + (overhead_limit + 50.0) / 100.0);
    let report = run("repro_introspect", "serving_overhead_pct", &[1.0, 1.0, bad_up]);
    assert!(report.failed(), "+{:.0}% overhead jump must trip the rule", overhead_limit + 50.0);
    assert!(
        report.rows.iter().any(|r| r.detail.contains("regressed")),
        "{:?}",
        report.rows
    );
    let ok_up = 1.0 * (1.0 + (overhead_limit - 50.0).max(0.0) / 100.0);
    let report = run("repro_introspect", "serving_overhead_pct", &[1.0, 1.0, ok_up]);
    assert!(!report.failed(), "drift inside the limit must pass: {:?}", report.rows);

    // Floor-bounded metric: "worse" is down. A speedup still above the
    // absolute min but collapsed vs the prior median must fail.
    let bad_down = 8.0 * (1.0 - (speedup_limit + 10.0) / 100.0);
    assert!(bad_down > 4.0, "regression case must isolate the relative rule");
    let report = run(
        "repro_bitslice",
        "rows.capture_proxy64.speedup",
        &[8.0, 8.0, bad_down],
    );
    assert!(report.failed(), "speedup collapse must trip the rule");
    let report = run(
        "repro_bitslice",
        "rows.capture_proxy64.speedup",
        &[8.0, 8.0, 7.9],
    );
    assert!(!report.failed(), "small drop must pass: {:?}", report.rows);
}

/// The checked-in budgets.toml must pass against the imported
/// checked-in history — the exact combination CI's sentinel runs.
#[test]
fn sentinel_passes_on_checked_in_history_with_repo_budgets() {
    let root = repo_results_dir().join("..");
    let budgets_path = root.join("budgets.toml");
    let budgets = Budgets::load(&budgets_path).unwrap();
    let dir = tmpdir("sent_repo");
    let store = ResultStore::open(&dir);
    import_dir(&repo_results_dir(), &store, false).unwrap();
    let view = store.load_view().unwrap();
    let report = run_sentinel(&view, &budgets, None);
    for row in &report.rows {
        assert_ne!(
            row.status,
            Status::Fail,
            "checked-in history violates budget {}.{}: {}",
            row.suite,
            row.metric,
            row.detail
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
