//! §8.1: per-cycle inference throughput of APOLLO versus the
//! all-signals baselines, on identical traces.

use apollo_bench::{Pipeline, PipelineConfig};
use apollo_core::baselines::{train_primal, PrimalOptions};
use apollo_core::SelectionPenalty;
use apollo_mlkit::MlpOptions;
use apollo_opm::QuantizedOpm;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::OnceLock;

static PIPE: OnceLock<Pipeline> = OnceLock::new();

fn pipe() -> &'static Pipeline {
    PIPE.get_or_init(|| Pipeline::new(PipelineConfig::quick()))
}

fn bench_inference(c: &mut Criterion) {
    let p = pipe();
    let model = p.model(16, SelectionPenalty::Mcp { gamma: 10.0 }).model;
    let test = p.test_trace();
    let cycles = test.n_cycles() as u64;

    let mut g = c.benchmark_group("inference");
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("apollo_linear", |b| {
        b.iter(|| model.predict_full(&test.toggles).len())
    });
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    g.bench_function("apollo_opm_fixed_point", |b| {
        b.iter(|| quant.window_outputs(&test.toggles).len())
    });
    let primal = train_primal(
        p.train_trace(),
        p.feature_space(),
        &PrimalOptions {
            hash_dim: 128,
            mlp: MlpOptions {
                hidden: vec![32],
                epochs: 2,
                ..MlpOptions::default()
            },
            ..PrimalOptions::default()
        },
    );
    g.bench_function("primal_nn_all_signals", |b| {
        b.iter(|| primal.predict(&test.toggles, &p.feature_space().reps).len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
