//! Proxy-selection benchmarks: MCP vs Lasso coordinate descent on real
//! toggle data (the training cost the paper reports as "within three
//! hours"; here: seconds).

use apollo_bench::{Pipeline, PipelineConfig};
use apollo_core::{train_per_cycle, SelectionPenalty, TrainOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

static PIPE: OnceLock<Pipeline> = OnceLock::new();

fn pipe() -> &'static Pipeline {
    PIPE.get_or_init(|| {
        let p = Pipeline::new(PipelineConfig::quick());
        p.train_trace();
        p.feature_space();
        p
    })
}

fn bench_selection(c: &mut Criterion) {
    let p = pipe();
    let mut g = c.benchmark_group("selection");
    for (name, penalty) in [
        ("mcp_q16", SelectionPenalty::Mcp { gamma: 10.0 }),
        ("lasso_q16", SelectionPenalty::Lasso),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                train_per_cycle(
                    p.train_trace(),
                    p.ctx.netlist(),
                    p.feature_space(),
                    &TrainOptions {
                        q_target: 16,
                        penalty,
                        ..TrainOptions::default()
                    },
                )
                .model
                .q()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection
}
criterion_main!(benches);
