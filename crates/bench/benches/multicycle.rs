//! Figure 11 infrastructure: APOLLO-tau training on interval-averaged
//! features and Eq. (9) window inference.

use apollo_bench::{Pipeline, PipelineConfig};
use apollo_core::{train_tau, TrainOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

static PIPE: OnceLock<Pipeline> = OnceLock::new();

fn pipe() -> &'static Pipeline {
    PIPE.get_or_init(|| Pipeline::new(PipelineConfig::quick()))
}

fn bench_multicycle(c: &mut Criterion) {
    let p = pipe();
    let mut g = c.benchmark_group("multicycle");
    g.bench_function("train_tau8_q12", |b| {
        b.iter(|| {
            train_tau(
                p.train_trace(),
                p.ctx.netlist(),
                p.feature_space(),
                8,
                &TrainOptions {
                    q_target: 12,
                    ..TrainOptions::default()
                },
            )
            .q()
        })
    });
    let tau = train_tau(
        p.train_trace(),
        p.ctx.netlist(),
        p.feature_space(),
        8,
        &TrainOptions {
            q_target: 12,
            ..TrainOptions::default()
        },
    );
    let test = p.test_trace();
    g.bench_function("predict_windows_t32", |b| {
        b.iter(|| tau.predict_windows(&test.toggles, 32).len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multicycle
}
criterion_main!(benches);
