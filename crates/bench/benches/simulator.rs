//! Substrate benchmarks: RTL simulation, toggle capture and ground-truth
//! power throughput (the costs behind every experiment; paper §7.1
//! infrastructure).

use apollo_cpu::{benchmarks, build_cpu, CpuConfig, CpuSim};
use apollo_rtl::CapModel;
use apollo_sim::{PowerConfig, TraceCapture};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let handles = build_cpu(&CpuConfig::tiny()).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);
    let bench = benchmarks::maxpwr_cpu();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(500));
    g.bench_function("cycles_500_tiny", |b| {
        b.iter_batched(
            || {
                CpuSim::new(
                    &handles,
                    &cap,
                    PowerConfig::default(),
                    &bench.program,
                    &bench.data,
                )
            },
            |mut sim| {
                for _ in 0..500 {
                    sim.step();
                }
                sim.sim().power().total
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("capture_500_tiny", |b| {
        b.iter_batched(
            || {
                CpuSim::new(
                    &handles,
                    &cap,
                    PowerConfig::default(),
                    &bench.program,
                    &bench.data,
                )
            },
            |mut sim| {
                let mut tc = TraceCapture::all(&handles.netlist, 500);
                tc.record(sim.sim_mut(), 500, "w");
                tc.finish().n_cycles()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("build_cpu_tiny", |b| {
        b.iter(|| build_cpu(&CpuConfig::tiny()).unwrap().netlist.len())
    });
    g.finish();
}

/// Sequential vs. parallel levelized engine on the neoverse-like core
/// (the design the paper's speedup claims are judged on). Results are
/// bit-identical across thread counts; only wall-clock should differ.
fn bench_parallel_engine(c: &mut Criterion) {
    let handles = build_cpu(&CpuConfig::neoverse_like()).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);
    let bench = benchmarks::maxpwr_cpu();
    const CYCLES: u64 = 200;

    let mut g = c.benchmark_group("parallel_engine_n1");
    g.throughput(Throughput::Elements(CYCLES));
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("cycles_{CYCLES}_threads_{threads}"), |b| {
            b.iter_batched(
                || {
                    CpuSim::with_threads(
                        &handles,
                        &cap,
                        PowerConfig::default(),
                        &bench.program,
                        &bench.data,
                        threads,
                    )
                },
                |mut sim| {
                    for _ in 0..CYCLES {
                        sim.step();
                    }
                    sim.sim().power().total
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_parallel_engine
}
criterion_main!(benches);
