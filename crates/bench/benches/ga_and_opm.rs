//! GA training-data generation (Figure 3) and OPM hardware generation /
//! co-simulation (Figures 8, 15b) benchmarks.

use apollo_bench::{Pipeline, PipelineConfig};
use apollo_core::benchgen::{run_ga, GaConfig};
use apollo_core::SelectionPenalty;
use apollo_opm::{build_opm, opm_gate_area, QuantizedOpm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

static PIPE: OnceLock<Pipeline> = OnceLock::new();

fn pipe() -> &'static Pipeline {
    PIPE.get_or_init(|| Pipeline::new(PipelineConfig::quick()))
}

fn bench_ga(c: &mut Criterion) {
    let p = pipe();
    let mut g = c.benchmark_group("ga");
    g.sample_size(10);
    g.bench_function("one_generation_pop8", |b| {
        b.iter(|| {
            run_ga(
                &p.ctx,
                &GaConfig {
                    population: 8,
                    generations: 1,
                    body_len_min: 10,
                    body_len_max: 32,
                    reps: 4,
                    warmup: 150,
                    fitness_cycles: 150,
                    threads: 1,
                    ..GaConfig::default()
                },
            )
            .individuals
            .len()
        })
    });
    g.finish();
}

fn bench_opm(c: &mut Criterion) {
    let p = pipe();
    let model = p.model(16, SelectionPenalty::Mcp { gamma: 10.0 }).model;
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    let bench = apollo_cpu::benchmarks::maxpwr_cpu();
    let proxy = p.ctx.capture_bits(&bench, &model.bits(), 256, 150);

    let mut g = c.benchmark_group("opm");
    g.bench_function("build_hardware", |b| {
        b.iter(|| opm_gate_area(&build_opm(&quant).expect("build_opm")))
    });
    let hw = build_opm(&quant).expect("build_opm");
    g.bench_function("cosim_256_cycles", |b| {
        b.iter(|| hw.cosim(&proxy.toggles).windows.len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ga, bench_opm
}
criterion_main!(benches);
