//! # apollo-bench
//!
//! Reproduction harness for every table and figure in the APOLLO paper's
//! evaluation, plus Criterion micro-benchmarks.
//!
//! The [`Pipeline`] lazily builds and caches the expensive artifacts —
//! design, GA training data, toggle traces, trained models — so the
//! `repro_*` binaries can share work within a process. Run
//! `cargo run --release -p apollo-bench --bin repro_all` to regenerate
//! every experiment; results are printed as the paper's rows/series and
//! saved as JSON under `results/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod pipeline;

pub use pipeline::{init_cli_verbosity, Pipeline, PipelineConfig};
