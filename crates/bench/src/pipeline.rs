//! Lazily-built, cached experiment pipeline shared by all repro
//! binaries.

use apollo_core::{
    run_ga, train_per_cycle, ApolloModel, DesignContext, FeatureSpace, GaConfig, GaRun,
    SelectionPenalty, TrainOptions, TrainedPerCycle,
};
use apollo_cpu::CpuConfig;
use apollo_sim::TraceData;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// Top-level knobs of a reproduction run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// CPU design under evaluation.
    pub design: CpuConfig,
    /// GA settings for training-data generation.
    pub ga: GaConfig,
    /// Micro-benchmarks drawn from the GA pool for training.
    pub train_benchmarks: usize,
    /// Recorded cycles per training micro-benchmark.
    pub train_cycles_each: usize,
    /// Warm-up cycles skipped before recording each workload.
    pub warmup: usize,
    /// Scale on the Table-4 per-benchmark test windows.
    pub test_scale: f64,
    /// Headline proxy count (the paper's Q = 159).
    pub q_main: usize,
}

impl PipelineConfig {
    /// Full-quality run on the Neoverse-like design (paper setup:
    /// ≈ 30k training cycles, ≈ 15k testing cycles, Q = 159).
    pub fn neoverse() -> Self {
        PipelineConfig {
            design: CpuConfig::neoverse_like(),
            ga: GaConfig {
                population: 24,
                generations: 40,
                body_len_min: 12,
                body_len_max: 220,
                reps: 30,
                fitness_cycles: 500,
                warmup: 400,
                ..GaConfig::default()
            },
            train_benchmarks: 400,
            train_cycles_each: 100,
            warmup: 400,
            test_scale: 1.0,
            q_main: 159,
        }
    }

    /// Full-quality run on the larger Cortex-like design (paper setup:
    /// 5k training cycles, 2k testing cycles).
    pub fn cortex() -> Self {
        PipelineConfig {
            design: CpuConfig::cortex_like(),
            ga: GaConfig {
                population: 16,
                generations: 16,
                body_len_min: 12,
                body_len_max: 300,
                reps: 30,
                fitness_cycles: 400,
                warmup: 450,
                ..GaConfig::default()
            },
            train_benchmarks: 50,
            train_cycles_each: 100,
            warmup: 450,
            test_scale: 0.14, // ≈ 2k total test cycles
            q_main: 300,
        }
    }

    /// Small, fast configuration for Criterion benches and examples.
    pub fn quick() -> Self {
        PipelineConfig {
            design: CpuConfig::tiny(),
            ga: GaConfig {
                population: 10,
                generations: 6,
                body_len_min: 10,
                body_len_max: 48,
                reps: 8,
                warmup: 150,
                fitness_cycles: 250,
                ..GaConfig::default()
            },
            train_benchmarks: 24,
            train_cycles_each: 80,
            warmup: 150,
            test_scale: 0.25,
            q_main: 24,
        }
    }
}

/// Lazily-computed pipeline state.
pub struct Pipeline {
    /// The design context (always built eagerly).
    pub ctx: DesignContext,
    /// Configuration.
    pub cfg: PipelineConfig,
    ga: OnceLock<GaRun>,
    train: OnceLock<TraceData>,
    fs: OnceLock<FeatureSpace>,
    test: OnceLock<TraceData>,
    models: Mutex<HashMap<(usize, bool), TrainedPerCycle>>,
}

/// Reports a timestamped progress line: printed to stderr unless the
/// telemetry verbosity is `Quiet`, and recorded as a `Message` event
/// when a trace sink is installed.
pub fn progress(msg: &str) {
    apollo_telemetry::diag(&format!("[{:>8.1?}] {msg}", START.elapsed()));
}

/// Sets the global telemetry verbosity from the process arguments
/// (`--quiet`/`-q`, `--verbose`/`-v`); repro binaries call this first
/// thing in `main`. Unknown arguments are left for the caller.
pub fn init_cli_verbosity() {
    let mut v = apollo_telemetry::Verbosity::Normal;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quiet" | "-q" => v = apollo_telemetry::Verbosity::Quiet,
            "--verbose" | "-v" => v = apollo_telemetry::Verbosity::Verbose,
            _ => {}
        }
    }
    apollo_telemetry::set_verbosity(v);
}

static START: LazyLock<Instant> = LazyLock::new(Instant::now);
use std::sync::LazyLock;

impl Pipeline {
    /// Builds the design and prepares the lazy caches.
    pub fn new(cfg: PipelineConfig) -> Self {
        progress(&format!("building design `{}`", cfg.design.name));
        let ctx = DesignContext::new(&cfg.design);
        progress(&format!(
            "design ready: {} nodes, M = {} signal bits",
            ctx.netlist().len(),
            ctx.m_bits()
        ));
        Pipeline {
            ctx,
            cfg,
            ga: OnceLock::new(),
            train: OnceLock::new(),
            fs: OnceLock::new(),
            test: OnceLock::new(),
            models: Mutex::new(HashMap::new()),
        }
    }

    /// GA training-data generation (cached).
    pub fn ga(&self) -> &GaRun {
        self.ga.get_or_init(|| {
            progress("running GA training-data generation");
            let run = run_ga(&self.ctx, &self.cfg.ga);
            progress(&format!(
                "GA done: {} individuals, power spread {:.2}x",
                run.individuals.len(),
                run.power_spread()
            ));
            run
        })
    }

    /// Full-signal training trace over the GA-selected suite (cached).
    pub fn train_trace(&self) -> &TraceData {
        self.train.get_or_init(|| {
            let suite = self.ga().training_suite(
                self.cfg.train_benchmarks,
                self.cfg.train_cycles_each,
                self.ctx.handles.config.dram_words,
            );
            progress(&format!(
                "capturing training trace: {} benchmarks x {} cycles",
                suite.len(),
                self.cfg.train_cycles_each
            ));
            let t = self.ctx.capture_suite(&suite, self.cfg.warmup);
            progress(&format!(
                "training trace: {} cycles, {:?}",
                t.n_cycles(),
                t.toggles
            ));
            t
        })
    }

    /// Deduplicated candidate feature space (cached).
    pub fn feature_space(&self) -> &FeatureSpace {
        self.fs.get_or_init(|| {
            progress("building feature space (dedup)");
            let fs = FeatureSpace::build(&self.train_trace().toggles);
            progress(&format!(
                "feature space: {} candidates of {} bits ({} constant)",
                fs.n_candidates(),
                fs.total_bits,
                fs.constant_bits
            ));
            fs
        })
    }

    /// Full-signal testing trace over the Table-4 suite (cached).
    pub fn test_trace(&self) -> &TraceData {
        self.test.get_or_init(|| {
            progress("capturing Table-4 test trace");
            let suite = self.ctx.test_suite(self.cfg.test_scale);
            let t = self.ctx.capture_suite(&suite, self.cfg.warmup);
            progress(&format!("test trace: {} cycles", t.n_cycles()));
            t
        })
    }

    /// Trains (or fetches) a per-cycle model at proxy budget `q`.
    pub fn model(&self, q: usize, penalty: SelectionPenalty) -> TrainedPerCycle {
        let key = (q, matches!(penalty, SelectionPenalty::Mcp { .. }));
        if let Some(m) = self.models.lock().unwrap().get(&key) {
            return m.clone();
        }
        progress(&format!(
            "training per-cycle model: Q target {q}, {penalty:?}"
        ));
        let trained = train_per_cycle(
            self.train_trace(),
            self.ctx.netlist(),
            self.feature_space(),
            &TrainOptions {
                q_target: q,
                penalty,
                ..TrainOptions::default()
            },
        );
        progress(&format!("model trained: Q = {}", trained.model.q()));
        self.models.lock().unwrap().insert(key, trained.clone());
        trained
    }

    /// The headline APOLLO model (MCP at the configured main Q).
    pub fn main_model(&self) -> ApolloModel {
        self.model(self.cfg.q_main, SelectionPenalty::Mcp { gamma: 10.0 })
            .model
    }
}

/// Writes a JSON value to `results/<name>.json` (creating the
/// directory), and returns the path.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    path
}

/// A sustained power virus: the maxpwr_cpu inner mix looped far past a
/// governed window (the stock Table-4 benchmark halts after a few
/// hundred cycles, which would let a governor off the hook). Shared by
/// the governor-style repro binaries.
pub fn sustained_virus() -> (Vec<apollo_cpu::Inst>, Vec<u64>) {
    use apollo_cpu::{Asm, VecOp, Vr, Xr};
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0);
    a.vld(Vr(0), Xr(2), 0);
    a.vld(Vr(1), Xr(2), 2);
    a.vld(Vr(2), Xr(2), 4);
    a.load_const(Xr(3), 0xA5A5_5A5A_DEAD_BEEF);
    a.load_const(Xr(4), 0x0123_4567_89AB_CDEF);
    a.addi(Xr(1), Xr(0), 8000);
    a.addi(Xr(15), Xr(0), 1);
    let top = a.label();
    a.vec(VecOp::VMac, Vr(2), Vr(0), Vr(1));
    a.mul(Xr(5), Xr(3), Xr(4));
    a.xor(Xr(6), Xr(3), Xr(4));
    a.add(Xr(7), Xr(5), Xr(6));
    a.vec(VecOp::VMul, Vr(3), Vr(1), Vr(2));
    a.sub(Xr(8), Xr(7), Xr(3));
    a.lw(Xr(9), Xr(0), 1);
    a.shri(Xr(10), Xr(8), 7);
    a.vec(VecOp::VAdd, Vr(4), Vr(2), Vr(3));
    a.or(Xr(3), Xr(10), Xr(9));
    a.sub(Xr(1), Xr(1), Xr(15));
    a.bne(Xr(1), Xr(0), top);
    a.halt();
    let data: Vec<u64> = (0..64)
        .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1)
        .collect();
    (a.assemble(), data)
}
