//! Introspection serving-layer overhead benchmark.
//!
//! Measures the monitor pipeline's ns/cycle in two interleaved
//! configurations: offline (no hub, no server — the `apollo eval`
//! equivalent path) and serving (TCP endpoint bound, one live
//! `/events` subscriber draining the stream). The serving overhead
//! must stay under the 3% budget: the endpoint is sampled from the
//! hot loop only once per `T`-cycle window and never blocks on a slow
//! reader (budget from `budgets.toml`, default 3%). Writes
//! `results/repro_introspect.json` and appends a run record to the
//! results store.
//!
//! Set `APOLLO_QUICK=1` for a smoke run.

use apollo_bench::pipeline::save_json;
use apollo_core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{http_get_lines, run_monitor, serve, MonitorConfig, MonitorHub};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_BUDGET_PCT: f64 = 3.0;
const ATTEMPTS: usize = 3;

fn monitor_ns_per_cycle(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    hub: Option<&MonitorHub>,
) -> f64 {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let report = run_monitor(ctx, model, bench, cfg, hub, &stop).expect("monitor run");
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(report.energy);
    ns / cfg.cycles as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[derive(Debug, serde::Serialize)]
struct IntrospectOverhead {
    cycles_per_rep: u64,
    reps: usize,
    offline_a_ns_per_cycle: f64,
    offline_b_ns_per_cycle: f64,
    /// A/B delta between the two offline sets, in percent — the
    /// measurement noise floor.
    offline_noise_pct: f64,
    serving_ns_per_cycle: f64,
    serving_overhead_pct: f64,
    /// Windows streamed to the draining subscriber per serving rep.
    windows_per_rep: u64,
    budget_pct: f64,
    pass: bool,
}

fn measure(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    reps: usize,
    budget_pct: f64,
) -> IntrospectOverhead {
    // Interleave offline and serving reps so slow drift (frequency
    // scaling, cache warmth) hits both configurations equally.
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    let mut s = Vec::with_capacity(reps);
    for _ in 0..reps {
        a.push(monitor_ns_per_cycle(ctx, model, bench, cfg, None));

        // Serving rep: endpoint bound, one /events subscriber
        // draining the stream for the whole run.
        let stop = Arc::new(AtomicBool::new(false));
        let hub = MonitorHub::new(1024);
        let server =
            serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).expect("bind bench endpoint");
        let addr = server.addr().to_string();
        let drain = std::thread::spawn(move || http_get_lines(&addr, "/events", None));
        s.push(monitor_ns_per_cycle(ctx, model, bench, cfg, Some(&hub)));
        hub.close();
        server.stop();
        let _ = drain.join().expect("drain thread");

        b.push(monitor_ns_per_cycle(ctx, model, bench, cfg, None));
    }
    let offline_a = median(&mut a);
    let offline_b = median(&mut b);
    let offline = offline_a.min(offline_b);
    let serving = median(&mut s);

    IntrospectOverhead {
        cycles_per_rep: cfg.cycles,
        reps,
        offline_a_ns_per_cycle: offline_a,
        offline_b_ns_per_cycle: offline_b,
        offline_noise_pct: 100.0 * (offline_a - offline_b).abs() / offline,
        serving_ns_per_cycle: serving,
        serving_overhead_pct: 100.0 * (serving - offline) / offline,
        windows_per_rep: cfg.cycles / cfg.window_t as u64,
        budget_pct,
        pass: false,
    }
}

fn main() -> ExitCode {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cycles, reps) = if quick { (8_000u64, 3) } else { (32_000u64, 7) };
    let budget_pct = apollo_results::budget_max_or(
        "repro_introspect",
        "serving_overhead_pct",
        DEFAULT_BUDGET_PCT,
    );

    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = vec![
        (benchmarks::dhrystone(), 300),
        (benchmarks::maxpwr_cpu(), 300),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model;
    let bench = benchmarks::maxpwr_cpu();
    // T = 256 is at the small end of the paper's OPM window range
    // (2^7..2^17 cycles); serving cost is per-window, so the budget is
    // stated against a realistic window, not a stress-test T.
    let cfg = MonitorConfig {
        cycles,
        window_t: 256,
        ..MonitorConfig::default()
    };

    // One unmeasured warmup run to settle lazy init and caches.
    monitor_ns_per_cycle(&ctx, &model, &bench, &cfg, None);

    let mut out = measure(&ctx, &model, &bench, &cfg, reps, budget_pct);
    for attempt in 1..ATTEMPTS {
        if out.serving_overhead_pct < budget_pct {
            break;
        }
        eprintln!(
            "attempt {attempt}: serving overhead {:.2}% over budget (noise {:.2}%), remeasuring",
            out.serving_overhead_pct, out.offline_noise_pct
        );
        out = measure(&ctx, &model, &bench, &cfg, reps, budget_pct);
    }
    out.pass = out.serving_overhead_pct < budget_pct;

    println!("== Introspection serving overhead on the monitor loop ==");
    println!(
        "offline:  {:.1} ns/cycle (A {:.1}, B {:.1}; noise {:.2}%)",
        out.offline_a_ns_per_cycle.min(out.offline_b_ns_per_cycle),
        out.offline_a_ns_per_cycle,
        out.offline_b_ns_per_cycle,
        out.offline_noise_pct
    );
    println!(
        "serving:  {:.1} ns/cycle ({:+.2}%, budget {budget_pct}%) over {} windows/rep",
        out.serving_ns_per_cycle, out.serving_overhead_pct, out.windows_per_rep
    );
    save_json("repro_introspect", &out);
    apollo_results::record_bench_run_soft(
        "repro_introspect",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );
    if out.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: serving overhead exceeds {budget_pct}%");
        ExitCode::FAILURE
    }
}
