//! Multi-core SoC power introspection (paper §1: design-time analysis of
//! "the simultaneous execution of multiple CPU cores"): one APOLLO model
//! for a dual-core die, trained on concurrent random workloads and
//! tested on concurrent handcrafted kernels.

use apollo_bench::pipeline::{progress, save_json};
use apollo_core::benchgen::training_data_pattern;
use apollo_core::{train_per_cycle, FeatureSpace, SelectionPenalty, TrainOptions};
use apollo_cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
use apollo_cpu::{benchmarks, build_soc, CpuConfig, SocConfig, SocSim};
use apollo_mlkit::metrics;
use apollo_sim::TraceCapture;

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let core = CpuConfig::tiny();
    let soc = build_soc(&SocConfig::homogeneous("duo", core.clone(), 2)).unwrap();
    progress(&format!(
        "dual-core SoC: {} nodes, M = {} signal bits",
        soc.netlist.len(),
        soc.netlist.signal_bits()
    ));

    let (pairs, cycles_each, q) = if quick { (6, 250, 24) } else { (24, 400, 48) };
    let data = training_data_pattern(core.dram_words as usize);
    let w = GenWeights::default();

    // Training: concurrent pairs of random programs.
    let mut capture = TraceCapture::all(&soc.netlist, pairs * cycles_each);
    for seed in 0..pairs as u64 {
        let p0 = wrap_body(&random_body(seed * 2, 60, &w), 10);
        let p1 = wrap_body(&random_body(seed * 2 + 1, 60, &w), 10);
        let workloads = vec![(p0, data.clone()), (p1, data.clone())];
        let (_cap, mut sim) = SocSim::with_defaults(&soc, &workloads);
        for _ in 0..150 {
            sim.sim_mut().step();
        }
        capture.record(sim.sim_mut(), cycles_each, &format!("pair{seed}"));
    }
    let trace = capture.finish();
    let fs = FeatureSpace::build(&trace.toggles);
    progress(&format!(
        "training: {} cycles, {} candidates",
        trace.n_cycles(),
        fs.n_candidates()
    ));
    let model = train_per_cycle(
        &trace,
        &soc.netlist,
        &fs,
        &TrainOptions {
            q_target: q,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            ..TrainOptions::default()
        },
    )
    .model;

    // Test: asymmetric concurrent kernels (vector-heavy + memory-heavy).
    let b0 = benchmarks::maxpwr_cpu();
    let b1 = benchmarks::memcpy_l2(&core);
    let workloads = vec![(b0.program, b0.data), (b1.program, b1.data)];
    let (_cap, mut sim) = SocSim::with_defaults(&soc, &workloads);
    for _ in 0..150 {
        sim.sim_mut().step();
    }
    let test_cycles = if quick { 800 } else { 1_500 };
    let mut capture = TraceCapture::all(&soc.netlist, test_cycles);
    capture.record(sim.sim_mut(), test_cycles, "concurrent");
    let test = capture.finish();

    let pred = model.predict_full(&test.toggles);
    let y = test.labels();
    let r2 = metrics::r2(&y, &pred);
    let nrmse = metrics::nrmse(&y, &pred);

    // Per-core attribution by flat-bit ranges.
    let (mut c0, mut c1) = (0usize, 0usize);
    for p in &model.proxies {
        if soc.core_bit_ranges[0].contains(&p.bit) {
            c0 += 1;
        } else if soc.core_bit_ranges[1].contains(&p.bit) {
            c1 += 1;
        }
    }

    println!("\n== Multi-core SoC power introspection (2x tiny cores) ==");
    println!(
        "  M = {} bits, Q = {} proxies (core0: {c0}, core1: {c1})",
        model.m_bits,
        model.q()
    );
    println!(
        "  concurrent asymmetric test: R2 = {r2:.3}, NRMSE = {:.1}%",
        100.0 * nrmse
    );
    save_json(
        "soc_multicore",
        &serde_json::json!({
            "m_bits": model.m_bits, "q": model.q(),
            "proxies_core0": c0, "proxies_core1": c1,
            "r2": r2, "nrmse": nrmse,
        }),
    );
}
