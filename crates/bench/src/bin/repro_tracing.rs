//! Causal-tracing and health-surface overhead benchmark.
//!
//! Measures the monitor pipeline's ns/cycle in interleaved
//! configurations:
//!
//! * **baseline** — no sink, no timing: the production fast path the
//!   2% disabled-telemetry budget already guards;
//! * **traced** — causal tracing on, exactly the `apollo monitor
//!   --trace out.jsonl` configuration: a JSONL sink capturing every
//!   span/event with the deterministic id triple and span durations.
//!   (The deep per-level profile clocks behind `set_timing` /
//!   `apollo profile` are a pre-existing separate instrument with
//!   its own much larger cost; they stay off here, as they are in
//!   every traced production run.)
//! * **serving** — endpoint bound, one `/events` drain, the health
//!   registry wired — with and without an aggressive `/status` poller
//!   hammering the snapshot path from another thread.
//!
//! `tracing_enabled_overhead_pct` and `status_endpoint_overhead_pct`
//! must stay under their `budgets.toml` ceilings. Writes
//! `results/repro_tracing.json` and appends a run record to the
//! results store.
//!
//! Set `APOLLO_QUICK=1` for a smoke run.

use apollo_bench::pipeline::save_json;
use apollo_core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{
    http_get_lines, run_monitor_with, serve_with, HealthRegistry, MonitorConfig, MonitorHub,
    RunOptions, ServerOptions,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_TRACING_BUDGET_PCT: f64 = 10.0;
const DEFAULT_STATUS_BUDGET_PCT: f64 = 5.0;
const ATTEMPTS: usize = 3;

fn monitor_ns_per_cycle(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    hub: Option<&MonitorHub>,
    opts: &RunOptions,
) -> f64 {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let report = run_monitor_with(ctx, model, bench, cfg, hub, &stop, opts).expect("monitor run");
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(report.energy);
    ns / cfg.cycles as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[derive(Debug, serde::Serialize)]
struct TracingOverhead {
    cycles_per_rep: u64,
    reps: usize,
    baseline_a_ns_per_cycle: f64,
    baseline_b_ns_per_cycle: f64,
    /// A/B delta between the two baseline sets, in percent — the
    /// measurement noise floor.
    baseline_noise_pct: f64,
    traced_ns_per_cycle: f64,
    /// Causal tracing (JSONL sink + id derivation + span clocks) vs
    /// the disabled path.
    tracing_enabled_overhead_pct: f64,
    /// Trace records captured per traced rep.
    trace_records_per_rep: u64,
    serving_ns_per_cycle: f64,
    polled_ns_per_cycle: f64,
    /// Serving with a tight-loop `/status` poller vs serving without:
    /// the snapshot path must stay off the monitor's hot loop.
    status_endpoint_overhead_pct: f64,
    /// `/status` scrapes answered per polled rep.
    status_scrapes_per_rep: u64,
    tracing_budget_pct: f64,
    status_budget_pct: f64,
    pass: bool,
}

struct Setup<'a> {
    ctx: &'a DesignContext,
    model: &'a apollo_core::ApolloModel,
    bench: &'a benchmarks::Benchmark,
    cfg: &'a MonitorConfig,
    trace_path: std::path::PathBuf,
}

fn serving_rep(setup: &Setup, poll_status: bool) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let hub = MonitorHub::new(1024);
    let health = Arc::new(HealthRegistry::new());
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&hub),
        Arc::clone(&stop),
        ServerOptions {
            health: Some(Arc::clone(&health)),
            ..ServerOptions::default()
        },
    )
    .expect("bind bench endpoint");
    let addr = server.addr().to_string();
    let drain = {
        let addr = addr.clone();
        std::thread::spawn(move || http_get_lines(&addr, "/events", None))
    };
    let poll_stop = Arc::new(AtomicBool::new(false));
    let poller = poll_status.then(|| {
        let poll_stop = Arc::clone(&poll_stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !poll_stop.load(Ordering::Relaxed) {
                if http_get_lines(&addr, "/status", None).is_ok() {
                    scrapes += 1;
                }
                // ~1 kHz — orders of magnitude beyond any real probe
                // cadence, while keeping the measurement about the
                // snapshot path (registry lock + serialization), not
                // raw CPU stealing by a spin loop.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            scrapes
        })
    });
    let opts = RunOptions {
        health: Some(health),
        ..RunOptions::default()
    };
    let ns = monitor_ns_per_cycle(setup.ctx, setup.model, setup.bench, setup.cfg, Some(&hub), &opts);
    poll_stop.store(true, Ordering::Relaxed);
    let scrapes = poller.map_or(0, |p| p.join().expect("status poller"));
    hub.close();
    server.stop();
    let _ = drain.join().expect("drain thread");
    (ns, scrapes)
}

fn measure(setup: &Setup, reps: usize, tracing_budget: f64, status_budget: f64) -> TracingOverhead {
    let plain = RunOptions::default();
    // Interleave all configurations so slow drift (frequency scaling,
    // cache warmth) hits them equally.
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    let mut traced = Vec::with_capacity(reps);
    let mut serving = Vec::with_capacity(reps);
    let mut polled = Vec::with_capacity(reps);
    let mut trace_records = 0u64;
    let mut scrapes = 0u64;
    for _ in 0..reps {
        a.push(monitor_ns_per_cycle(
            setup.ctx, setup.model, setup.bench, setup.cfg, None, &plain,
        ));

        // Traced rep: JSONL sink installed — the `--trace` config.
        // Spans (and their ids) are emitted whenever a sink is live.
        let sink =
            apollo_telemetry::JsonlSink::create(&setup.trace_path).expect("create trace file");
        apollo_telemetry::install_sink(Arc::new(sink));
        traced.push(monitor_ns_per_cycle(
            setup.ctx, setup.model, setup.bench, setup.cfg, None, &plain,
        ));
        apollo_telemetry::clear_sink();
        trace_records = std::fs::read_to_string(&setup.trace_path)
            .map(|t| t.lines().count() as u64)
            .unwrap_or(0);

        b.push(monitor_ns_per_cycle(
            setup.ctx, setup.model, setup.bench, setup.cfg, None, &plain,
        ));

        let (ns, _) = serving_rep(setup, false);
        serving.push(ns);
        let (ns, n) = serving_rep(setup, true);
        polled.push(ns);
        scrapes = n;
    }
    let baseline_a = median(&mut a);
    let baseline_b = median(&mut b);
    let baseline = baseline_a.min(baseline_b);
    let traced = median(&mut traced);
    let serving = median(&mut serving);
    let polled = median(&mut polled);

    TracingOverhead {
        cycles_per_rep: setup.cfg.cycles,
        reps,
        baseline_a_ns_per_cycle: baseline_a,
        baseline_b_ns_per_cycle: baseline_b,
        baseline_noise_pct: 100.0 * (baseline_a - baseline_b).abs() / baseline,
        traced_ns_per_cycle: traced,
        tracing_enabled_overhead_pct: 100.0 * (traced - baseline) / baseline,
        trace_records_per_rep: trace_records,
        serving_ns_per_cycle: serving,
        polled_ns_per_cycle: polled,
        status_endpoint_overhead_pct: 100.0 * (polled - serving) / serving,
        status_scrapes_per_rep: scrapes,
        tracing_budget_pct: tracing_budget,
        status_budget_pct: status_budget,
        pass: false,
    }
}

fn main() -> ExitCode {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cycles, reps) = if quick { (8_000u64, 3) } else { (32_000u64, 7) };
    let tracing_budget = apollo_results::budget_max_or(
        "repro_tracing",
        "tracing_enabled_overhead_pct",
        DEFAULT_TRACING_BUDGET_PCT,
    );
    let status_budget = apollo_results::budget_max_or(
        "repro_tracing",
        "status_endpoint_overhead_pct",
        DEFAULT_STATUS_BUDGET_PCT,
    );

    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = vec![
        (benchmarks::dhrystone(), 300),
        (benchmarks::maxpwr_cpu(), 300),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model;
    let bench = benchmarks::maxpwr_cpu();
    // Same realistic window as repro_introspect: tracing and health
    // costs are per-window, so T = 256 states the budget against the
    // small end of the paper's OPM range, not a stress-test T.
    let cfg = MonitorConfig {
        cycles,
        window_t: 256,
        ..MonitorConfig::default()
    };
    let setup = Setup {
        ctx: &ctx,
        model: &model,
        bench: &bench,
        cfg: &cfg,
        trace_path: std::env::temp_dir().join("repro_tracing_trace.jsonl"),
    };

    // One unmeasured warmup run to settle lazy init and caches.
    monitor_ns_per_cycle(&ctx, &model, &bench, &cfg, None, &RunOptions::default());

    let mut out = measure(&setup, reps, tracing_budget, status_budget);
    for attempt in 1..ATTEMPTS {
        if out.tracing_enabled_overhead_pct < tracing_budget
            && out.status_endpoint_overhead_pct < status_budget
        {
            break;
        }
        eprintln!(
            "attempt {attempt}: tracing {:.2}% / status {:.2}% over budget (noise {:.2}%), remeasuring",
            out.tracing_enabled_overhead_pct, out.status_endpoint_overhead_pct, out.baseline_noise_pct
        );
        out = measure(&setup, reps, tracing_budget, status_budget);
    }
    out.pass = out.tracing_enabled_overhead_pct < tracing_budget
        && out.status_endpoint_overhead_pct < status_budget;
    let _ = std::fs::remove_file(&setup.trace_path);

    println!("== Causal tracing & health surface overhead on the monitor loop ==");
    println!(
        "baseline: {:.1} ns/cycle (A {:.1}, B {:.1}; noise {:.2}%)",
        out.baseline_a_ns_per_cycle.min(out.baseline_b_ns_per_cycle),
        out.baseline_a_ns_per_cycle,
        out.baseline_b_ns_per_cycle,
        out.baseline_noise_pct
    );
    println!(
        "traced:   {:.1} ns/cycle ({:+.2}%, budget {tracing_budget}%) — {} records/rep",
        out.traced_ns_per_cycle, out.tracing_enabled_overhead_pct, out.trace_records_per_rep
    );
    println!(
        "status:   {:.1} vs {:.1} ns/cycle ({:+.2}%, budget {status_budget}%) — {} scrapes/rep",
        out.polled_ns_per_cycle,
        out.serving_ns_per_cycle,
        out.status_endpoint_overhead_pct,
        out.status_scrapes_per_rep
    );
    save_json("repro_tracing", &out);
    apollo_results::record_bench_run_soft(
        "repro_tracing",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );
    if out.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: tracing/status overhead exceeds budget");
        ExitCode::FAILURE
    }
}
