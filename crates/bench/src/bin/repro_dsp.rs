//! Micro-architecture-agnosticism experiment: APOLLO applied unchanged
//! to a non-CPU compute engine (the streaming MAC/FIR DSP), as claimed
//! in the paper's §1 ("applicable to a wide spectrum of compute-units
//! and not just CPUs") and motivated by the Hexagon-DSP discussion in
//! §8.2.

use apollo_bench::pipeline::{progress, save_json};
use apollo_core::{train_per_cycle, FeatureSpace, SelectionPenalty, TrainOptions};
use apollo_dsp::{build_dsp, random_commands, DspConfig, DspSim};
use apollo_mlkit::metrics;
use apollo_sim::TraceCapture;

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let config = DspConfig {
        lanes: 6,
        ..DspConfig::default()
    };
    let handles = build_dsp(&config).unwrap();
    progress(&format!(
        "DSP engine: {} nodes, M = {} signal bits",
        handles.netlist.len(),
        handles.netlist.signal_bits()
    ));

    let (n_train, cycles_each, q_target) = if quick { (6, 300, 12) } else { (40, 500, 40) };

    // Training: random command streams with varying lengths and gaps.
    let mut capture = TraceCapture::all(&handles.netlist, n_train * cycles_each);
    for seed in 0..n_train as u64 {
        let w = random_commands(seed, 40, 300);
        let mut sim = DspSim::new(&handles);
        sim.load_samples(&w.samples);
        sim.load_coefficients(&w.coefs);
        sim.load_commands(&w.commands);
        for _ in 0..20 {
            sim.sim_mut().step();
        }
        capture.record(sim.sim_mut(), cycles_each, &w.name);
    }
    let trace = capture.finish();
    progress(&format!("training trace: {} cycles", trace.n_cycles()));

    let fs = FeatureSpace::build(&trace.toggles);
    progress(&format!(
        "feature space: {} candidates of {} bits",
        fs.n_candidates(),
        fs.total_bits
    ));
    let trained = train_per_cycle(
        &trace,
        &handles.netlist,
        &fs,
        &TrainOptions {
            q_target,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            ..TrainOptions::default()
        },
    );
    let model = trained.model;

    // Held-out: unseen seeds, denser duty cycle.
    let test_cycles = if quick { 1_000 } else { 4_000 };
    let mut capture = TraceCapture::all(&handles.netlist, test_cycles);
    let w = random_commands(0xFEED, 60, 150);
    let mut sim = DspSim::new(&handles);
    sim.load_samples(&w.samples);
    sim.load_coefficients(&w.coefs);
    sim.load_commands(&w.commands);
    for _ in 0..20 {
        sim.sim_mut().step();
    }
    capture.record(sim.sim_mut(), test_cycles, "held-out");
    let test = capture.finish();

    let pred = model.predict_full(&test.toggles);
    let y = test.labels();
    let r2 = metrics::r2(&y, &pred);
    let nrmse = metrics::nrmse(&y, &pred);

    println!("\n== APOLLO on a non-CPU compute engine (MAC/FIR DSP) ==");
    println!(
        "  M = {} signal bits, Q = {} proxies ({:.2}%)",
        model.m_bits,
        model.q(),
        100.0 * model.monitored_fraction()
    );
    println!(
        "  held-out per-cycle accuracy: R2 = {r2:.3}, NRMSE = {:.1}%",
        100.0 * nrmse
    );
    let dist = apollo_core::report::proxy_distribution(&model);
    for (unit, n) in &dist {
        println!("    {unit:<18} {n}");
    }
    save_json(
        "dsp_generality",
        &serde_json::json!({
            "m_bits": model.m_bits,
            "q": model.q(),
            "r2": r2,
            "nrmse": nrmse,
            "distribution": dist,
        }),
    );
}
