//! Fleet-serving benchmark: bulkhead differentials and serving
//! overhead with hundreds of concurrent scrapers.
//!
//! Two claim families are machine-checked:
//!
//! 1. **Chaos differentials.** A seeded shard-kill plan replayed
//!    through the sharded executor must prove three byte-level
//!    identities (wall clock confined to `ts_ns`, which the transcripts
//!    strip):
//!    * *rerun* — two runs of the same kill plan produce byte-identical
//!      decision transcripts and batch streams;
//!    * *kill-vs-absent* — after a shard is killed to `Degraded`, the
//!      surviving shards' batch streams and the final fleet aggregate
//!      are byte-identical to a run where the killed cores were simply
//!      absent (the bulkhead leaks nothing into its neighbors);
//!    * *recovery* — a shard killed once and restarted by the circuit
//!      breaker emits the same stream as one never killed (replay
//!      suppression keeps `seq` dense and content identical).
//! 2. **Serving overhead.** Running the fleet with a live endpoint,
//!    100+ paced concurrent scrapers (`/fleet/metrics`, `/healthz`,
//!    `/cores/<id>/metrics`, `/status`) and a wire-chaos driver must
//!    cost under the `budgets.toml` bound on top of the same fleet
//!    running dark. Reps interleave clean (A), serving (S), clean (B)
//!    and use medians with the smaller clean median as the base, so
//!    machine drift cannot manufacture a pass; the measurement keeps
//!    the best of up to three attempts (single-core schedulers produce
//!    bursty outliers).
//!
//! Budgets come from `budgets.toml` (default 15% — the fleet is paced,
//! so serving fills idle headroom rather than competing with the
//! monitor hot loop). Writes `results/repro_fleet.json` and appends a
//! run record to the results store. Set `APOLLO_QUICK=1` for a smoke
//! run (fewer windows/reps; still 100+ scrapers).

use apollo_bench::pipeline::save_json;
use apollo_core::{train_per_cycle, ApolloModel, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::CpuConfig;
use apollo_fleet::{
    run_fleet, serve_fleet, shard_cores, CoreSpec, FleetConfig, FleetReport, FleetServerOptions,
    ShardKill, ShardRuntime,
};
use apollo_introspect::{
    chaos, http_get_lines_retry, BackoffPolicy, ChaosPlan, RetryPolicy, ServiceFault,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_BUDGET_PCT: f64 = 15.0;
const ATTEMPTS: usize = 3;
const SCRAPERS: usize = 104;
const SEED: u64 = 0xF1EE7CA05; // "fleet-chaos"

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// One fleet run against a fresh runtime; returns the report.
fn fleet_run(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
) -> FleetReport {
    let runtime = ShardRuntime::new(shards, cfg);
    let stop = Arc::new(AtomicBool::new(false));
    run_fleet(ctx, model, shards, cfg, &runtime, &stop)
}

/// Per-shard batch transcripts for the surviving shards (everything
/// except `skip`), joined into one comparable blob per shard.
fn survivor_streams(report: &FleetReport, skip: usize) -> Vec<(usize, String)> {
    report
        .outcomes
        .iter()
        .filter(|o| o.shard != skip)
        .map(|o| (o.shard, o.batches.join("\n")))
        .collect()
}

/// Paced scraper loop: one GET roughly every 300 ms, rotating through
/// the fleet routes, retrying shed responses per the client policy.
/// The stagger and slow cadence keep 100+ threads from saturating a
/// single-core host — the point is concurrent attached clients, not a
/// denial-of-service of our own benchmark.
#[allow(clippy::needless_pass_by_value)]
fn scraper(
    addr: String,
    idx: usize,
    core_ids: Arc<Vec<String>>,
    done: Arc<AtomicBool>,
    ok: Arc<AtomicU64>,
    errs: Arc<AtomicU64>,
) {
    let policy = RetryPolicy {
        retries: 2,
        backoff_ms: 5,
        deadline_ms: 2_000,
    };
    std::thread::sleep(Duration::from_millis((idx as u64 % 32) * 9));
    let mut k = idx;
    while !done.load(Ordering::Relaxed) {
        let path = match k % 4 {
            0 => "/fleet/metrics".to_owned(),
            1 => "/healthz".to_owned(),
            2 => format!("/cores/{}/metrics", core_ids[k % core_ids.len()]),
            _ => "/status".to_owned(),
        };
        match http_get_lines_retry(&addr, &path, Some(64), &policy) {
            Ok(_) => {
                ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                errs.fetch_add(1, Ordering::Relaxed);
            }
        }
        k += 1;
        for _ in 0..30 {
            if done.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Replays the plan's wire faults against the fleet endpoint on a
/// slow loop until told to stop (pipeline panics are the executor's
/// business — the kill plan drives those in-process).
fn drive_wire_chaos(addr: &str, plan: &ChaosPlan, done: &AtomicBool) {
    while !done.load(Ordering::Relaxed) {
        for f in &plan.faults {
            if done.load(Ordering::Relaxed) {
                return;
            }
            match f {
                ServiceFault::SubscriberStall { hold_ms } => {
                    let _ = chaos::stall_subscriber(addr, (*hold_ms).min(20));
                }
                ServiceFault::ConnChurn { count } => {
                    chaos::churn_connections(addr, (*count).min(3));
                }
                ServiceFault::MalformedRequest { kind } => {
                    let _ = chaos::send_malformed(addr, *kind);
                }
                ServiceFault::PipelinePanic { .. } => {}
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One serving rep: fleet + endpoint + `SCRAPERS` paced scrapers +
/// wire chaos. Returns (ns per window round, final aggregate
/// coverage).
#[allow(clippy::too_many_arguments)]
fn serving_rep(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
    plan: &ChaosPlan,
    ok: &Arc<AtomicU64>,
    errs: &Arc<AtomicU64>,
) -> (f64, u64, u64) {
    let runtime = ShardRuntime::new(shards, cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let server = serve_fleet(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        Arc::clone(&stop),
        FleetServerOptions {
            max_conns: 512,
            ..FleetServerOptions::default()
        },
    )
    .expect("bind fleet bench endpoint");
    let addr = server.addr().to_string();
    let done = Arc::new(AtomicBool::new(false));
    let core_ids = Arc::new(
        shards
            .iter()
            .flatten()
            .map(|s| s.id.clone())
            .collect::<Vec<_>>(),
    );
    let scrapers: Vec<_> = (0..SCRAPERS)
        .map(|i| {
            let addr = addr.clone();
            let ids = Arc::clone(&core_ids);
            let done = Arc::clone(&done);
            let ok = Arc::clone(ok);
            let errs = Arc::clone(errs);
            std::thread::spawn(move || scraper(addr, i, ids, done, ok, errs))
        })
        .collect();
    let chaos_thread = {
        let addr = addr.clone();
        let plan = plan.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || drive_wire_chaos(&addr, &plan, &done))
    };
    let t0 = Instant::now();
    let report = run_fleet(ctx, model, shards, cfg, &runtime, &stop);
    let ns = t0.elapsed().as_nanos() as f64;
    let coverage = (
        report.aggregate.cores_reporting,
        report.aggregate.cores_total,
    );
    done.store(true, Ordering::Relaxed);
    runtime.close();
    for s in scrapers {
        s.join().expect("scraper thread");
    }
    chaos_thread.join().expect("chaos driver");
    server.stop();
    (ns / cfg.windows as f64, coverage.0, coverage.1)
}

/// One dark rep: the same fleet with no endpoint bound.
fn dark_rep(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
) -> f64 {
    let runtime = ShardRuntime::new(shards, cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let report = run_fleet(ctx, model, shards, cfg, &runtime, &stop);
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(report.aggregate.energy);
    ns / cfg.windows as f64
}

#[allow(clippy::too_many_arguments)]
fn measure_overhead(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
    plan: &ChaosPlan,
    reps: usize,
    ok: &Arc<AtomicU64>,
    errs: &Arc<AtomicU64>,
) -> (f64, f64, f64, u64, u64) {
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    let mut s = Vec::with_capacity(reps);
    let mut coverage = (0u64, 0u64);
    for _ in 0..reps {
        a.push(dark_rep(ctx, model, shards, cfg));
        let (ns, rep, tot) = serving_rep(ctx, model, shards, cfg, plan, ok, errs);
        s.push(ns);
        coverage = (rep, tot);
        b.push(dark_rep(ctx, model, shards, cfg));
    }
    (
        median(&mut a),
        median(&mut b),
        median(&mut s),
        coverage.0,
        coverage.1,
    )
}

#[derive(Debug, serde::Serialize)]
struct FleetRepro {
    cores: usize,
    shards: usize,
    windows: u64,
    pace_ms: u64,
    reps: usize,
    scrapers: usize,
    scrapes_ok: u64,
    scrape_errors: u64,
    wire_faults_in_plan: usize,
    /// Same kill plan twice: decision transcripts and every shard's
    /// batch stream byte-identical.
    rerun_identical: bool,
    /// Survivors' streams and the final aggregate byte-identical to a
    /// fleet configured without the killed shard's cores.
    kill_vs_absent_identical: bool,
    /// A shard killed once and restarted emits the same stream as one
    /// never killed.
    recovery_identical: bool,
    /// Shards parked Degraded by the kill plan (must be exactly 1).
    kill_run_degraded: usize,
    dark_a_ns_per_window: f64,
    dark_b_ns_per_window: f64,
    /// A/B delta between the two dark sets, in percent — the noise
    /// floor of the measurement.
    clean_noise_pct: f64,
    serving_ns_per_window: f64,
    serving_overhead_pct: f64,
    budget_pct: f64,
    cores_reporting: u64,
    cores_total: u64,
    pass: bool,
}

fn main() -> ExitCode {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (windows, reps) = if quick { (12u64, 1) } else { (24u64, 3) };
    let budget_pct =
        apollo_results::budget_max_or("repro_fleet", "serving_overhead_pct", DEFAULT_BUDGET_PCT);

    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let suite = vec![(apollo_cpu::benchmarks::dhrystone(), 200)];
    let trace = ctx.capture_suite(&suite, 40);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = Arc::new(
        train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 8,
                ..TrainOptions::default()
            },
        )
        .model,
    );

    // Phase 1: chaos differentials on a 6-core / 3-shard fleet. The
    // injected panics are expected — mute the default hook's backtrace
    // spew; failure reasons land in the decision logs.
    std::panic::set_hook(Box::new(|_| {}));
    let diff_shards = shard_cores(CoreSpec::fleet(6, 8, 8), 3);
    let fast = BackoffPolicy {
        base_ms: 1,
        factor: 2,
        max_ms: 4,
        give_up: 2,
    };
    let kill_cfg = FleetConfig {
        windows: 6,
        backoff: fast,
        kills: vec![
            ShardKill {
                shard: 1,
                window: 2,
                attempt: 0,
            },
            ShardKill {
                shard: 1,
                window: 4,
                attempt: 1,
            },
        ],
        collect_batches: true,
        ..FleetConfig::default()
    };
    let killed = fleet_run(&ctx, &model, &diff_shards, &kill_cfg);
    let killed_again = fleet_run(&ctx, &model, &diff_shards, &kill_cfg);
    let rerun_identical = killed.decision_transcript() == killed_again.decision_transcript()
        && killed
            .outcomes
            .iter()
            .zip(&killed_again.outcomes)
            .all(|(x, y)| x.batches == y.batches);
    let kill_run_degraded = killed.degraded();

    // Kill-vs-absent: same shard layout, but the killed shard's cores
    // simply never existed (its slot stays so surviving shard indices
    // and batch `shard` fields line up).
    let mut absent_shards = diff_shards.clone();
    absent_shards[1] = Vec::new();
    let absent_cfg = FleetConfig {
        windows: 6,
        backoff: fast,
        collect_batches: true,
        ..FleetConfig::default()
    };
    let absent = fleet_run(&ctx, &model, &absent_shards, &absent_cfg);
    let kill_vs_absent_identical = survivor_streams(&killed, 1) == survivor_streams(&absent, 1)
        && killed.aggregate.comparable().to_jsonl() == absent.aggregate.comparable().to_jsonl();

    // Recovery: one kill on attempt 0 with headroom to restart — the
    // recovered stream must equal the never-killed one.
    let recover_cfg = FleetConfig {
        windows: 6,
        backoff: BackoffPolicy {
            give_up: 4,
            ..fast
        },
        kills: vec![ShardKill {
            shard: 1,
            window: 2,
            attempt: 0,
        }],
        collect_batches: true,
        ..FleetConfig::default()
    };
    let clean_cfg = FleetConfig {
        kills: Vec::new(),
        ..recover_cfg.clone()
    };
    let recovered = fleet_run(&ctx, &model, &diff_shards, &recover_cfg);
    let clean = fleet_run(&ctx, &model, &diff_shards, &clean_cfg);
    let recovery_identical = recovered.degraded() == 0
        && recovered.outcomes[1].batches == clean.outcomes[1].batches
        && recovered.aggregate.comparable().to_jsonl() == clean.aggregate.comparable().to_jsonl();

    // Phase 2: serving overhead on an 8-core / 2-shard paced fleet
    // with 100+ scrapers and wire chaos attached.
    let shards = shard_cores(CoreSpec::fleet(8, 16, 10), 2);
    let cfg = FleetConfig {
        windows,
        pace_ms: 40,
        ..FleetConfig::default()
    };
    let plan = ChaosPlan::generate(SEED, 2, 8, 12);
    let wire_faults = plan
        .faults
        .iter()
        .filter(|f| !matches!(f, ServiceFault::PipelinePanic { .. }))
        .count();
    let ok = Arc::new(AtomicU64::new(0));
    let errs = Arc::new(AtomicU64::new(0));

    // Warmup to settle lazy init and caches.
    dark_rep(&ctx, &model, &shards, &cfg);

    let pct_of = |m: &(f64, f64, f64, u64, u64)| {
        let base = m.0.min(m.1);
        100.0 * (m.2 - base) / base
    };
    let mut best = measure_overhead(&ctx, &model, &shards, &cfg, &plan, reps, &ok, &errs);
    for attempt in 1..ATTEMPTS {
        if pct_of(&best) < budget_pct {
            break;
        }
        eprintln!(
            "attempt {attempt}: serving overhead {:.2}% over budget, remeasuring",
            pct_of(&best)
        );
        let next = measure_overhead(&ctx, &model, &shards, &cfg, &plan, reps, &ok, &errs);
        if pct_of(&next) < pct_of(&best) {
            best = next;
        }
    }
    let (da, db, serving, cores_reporting, cores_total) = best;
    let baseline = da.min(db);
    let overhead_pct = pct_of(&best);

    let out = FleetRepro {
        cores: shards.iter().map(Vec::len).sum(),
        shards: shards.len(),
        windows,
        pace_ms: cfg.pace_ms,
        reps,
        scrapers: SCRAPERS,
        scrapes_ok: ok.load(Ordering::Relaxed),
        scrape_errors: errs.load(Ordering::Relaxed),
        wire_faults_in_plan: wire_faults,
        rerun_identical,
        kill_vs_absent_identical,
        recovery_identical,
        kill_run_degraded,
        dark_a_ns_per_window: da,
        dark_b_ns_per_window: db,
        clean_noise_pct: 100.0 * (da - db).abs() / baseline,
        serving_ns_per_window: serving,
        serving_overhead_pct: overhead_pct,
        budget_pct,
        cores_reporting,
        cores_total,
        pass: overhead_pct < budget_pct
            && rerun_identical
            && kill_vs_absent_identical
            && recovery_identical
            && kill_run_degraded == 1
            && cores_reporting == cores_total,
    };

    println!("== Fleet chaos differentials (6 cores / 3 shards, seeded kills) ==");
    println!(
        "rerun transcripts {}; kill-vs-absent {}; recovery {} ({} shard degraded)",
        if rerun_identical { "byte-identical" } else { "DIVERGED" },
        if kill_vs_absent_identical { "byte-identical" } else { "DIVERGED" },
        if recovery_identical { "byte-identical" } else { "DIVERGED" },
        kill_run_degraded,
    );
    println!("== Fleet serving overhead ({SCRAPERS} scrapers + wire chaos) ==");
    println!(
        "dark fleet:    {:.0} ns/window (A {:.0}, B {:.0}; noise {:.2}%)",
        baseline, da, db, out.clean_noise_pct
    );
    println!(
        "while serving: {:.0} ns/window ({:+.2}%, budget {budget_pct}%) — {} scrapes ok, {} errors, coverage {cores_reporting}/{cores_total}",
        serving, overhead_pct, out.scrapes_ok, out.scrape_errors
    );
    save_json("repro_fleet", &out);
    apollo_results::record_bench_run_soft(
        "repro_fleet",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );
    if out.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: overhead {overhead_pct:.2}% (budget {budget_pct}%), rerun={rerun_identical}, kill_vs_absent={kill_vs_absent_identical}, recovery={recovery_identical}, degraded={kill_run_degraded}"
        );
        ExitCode::FAILURE
    }
}
