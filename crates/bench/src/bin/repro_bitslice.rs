//! Bitslice-vs-scalar engine speed on single-core batched collection.
//!
//! Four rows, each timed with one worker thread so the comparison is
//! pure kernel-vs-kernel (no trace- or netlist-level parallelism):
//!
//! 1. `capture_proxy64` — a 64-workload *proxy-trace* capture feeding
//!    the quantized-OPM windowed eval path, the bitslice engine's
//!    design point: toggles-only stepping, no power pass, and the
//!    proxy columns read straight off the toggle planes (a plane word
//!    already is the 64-lane vector, so recording needs no transpose
//!    and no bit-scatter). This is the paper's deployment artifact —
//!    at runtime the OPM, not the simulator, produces the power
//!    estimate;
//! 2. `capture64` — a 64-workload full toggle/power-label capture (the
//!    training-data collection path). Here both engines pay the same
//!    per-lane costs for the serial-float-order power labels and the
//!    bit-major matrix scatter, so the ratio is bounded well below the
//!    proxy row's — see EXPERIMENTS.md for the breakdown;
//! 3. `capture_table4` — the stock 12-benchmark Table-4 suite (a ragged
//!    batch: most lanes empty);
//! 4. `fitness64` — a 64-program GA mean-power batch (no trace
//!    recording, the fitness inner loop).
//!
//! Every row first checks the two engines produce bit-identical results
//! (toggle matrices, power label bits, quantized OPM window outputs),
//! then reports the honest wall-clock ratio. Each engine's pass is run
//! twice and the *minimum* wall time is kept — the usual floor
//! estimator for additive scheduler/throttle noise on shared machines;
//! both engines get the identical treatment, so the ratio stays fair.
//!
//! Results land in `results/repro_bitslice.json` plus a run record in
//! the results store.
//!
//! Environment:
//! - `APOLLO_QUICK=1` — shorter windows for a smoke run;
//! - `APOLLO_MIN_SPEEDUP=<x>` — exit non-zero unless the
//!   `capture_proxy64` speedup is at least `x`; when unset, the floor
//!   comes from `budgets.toml` (`rows.capture_proxy64.speedup`), and
//!   quick mode skips the gate (smoke windows are too short to time).

use apollo_bench::pipeline::{progress, save_json};
use apollo_core::benchgen::training_data_pattern;
use apollo_core::{ApolloModel, DesignContext, Proxy, SelectionPenalty, SimPool};
use apollo_cpu::benchmarks::{self, Benchmark};
use apollo_cpu::{CpuConfig, Inst};
use apollo_opm::QuantizedOpm;
use apollo_sim::EngineKind;
use std::time::Instant;

struct Row {
    name: &'static str,
    lanes: usize,
    cycles_total: usize,
    scalar_s: f64,
    bitslice_s: f64,
    identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.bitslice_s
    }
}

fn power_bits_equal(a: &apollo_sim::TraceData, b: &apollo_sim::TraceData) -> bool {
    a.power.len() == b.power.len()
        && a.power
            .iter()
            .zip(&b.power)
            .all(|(x, y)| x.total.to_bits() == y.total.to_bits())
}

/// Runs `f` twice, returning the first run's output and the minimum of
/// the two wall times.
fn min_time_of2<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    let first = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = f();
    (out, first.min(t0.elapsed().as_secs_f64()))
}

fn dump_phases(label: &str) {
    if std::env::var("APOLLO_PROFILE").is_err() {
        return;
    }
    let report: Vec<_> = apollo_telemetry::phase_report()
        .into_iter()
        .filter(|s| {
            s.path.starts_with("sim.")
                || s.path.starts_with("core.capture_chunk")
                || s.path.starts_with("core.capture_proxy_chunk")
        })
        .collect();
    let total: u64 = report.iter().map(|s| s.total_ns).sum();
    println!("--- {label} ---");
    println!("{}", apollo_telemetry::render_phase_table(&report, total));
    apollo_telemetry::reset_phases();
}

/// A hand-weighted Q-proxy model over evenly spread signal bits: the
/// bench measures extraction and windowed-eval speed, which is
/// independent of the trained weights, so a synthetic model keeps the
/// row self-contained (no training pipeline in the loop).
fn spread_model(ctx: &DesignContext, q: usize) -> ApolloModel {
    let m = ctx.m_bits();
    let netlist = ctx.netlist();
    let proxies = (0..q)
        .map(|k| {
            let bit = (k * m / q + 5) % m;
            let (node, sub) = netlist.bit_owner(bit);
            Proxy {
                bit,
                weight: 1.0 + k as f64 / q as f64,
                name: format!("{}[{sub}]", netlist.display_name(node)),
                unit: netlist.unit(node),
                is_clock_gate: false,
            }
        })
        .collect();
    ApolloModel {
        design_name: netlist.design_name().to_string(),
        proxies,
        intercept: 0.0,
        selection_lambda: 0.0,
        penalty: SelectionPenalty::Mcp { gamma: 10.0 },
        candidates: m,
        m_bits: m,
    }
}

/// Times the proxy-trace capture (toggles-only stepping, proxy columns
/// only) on both engines and pushes both traces through the quantized
/// OPM's windowed eval to check the deployment path end to end.
fn proxy_row(
    name: &'static str,
    scalar: &DesignContext,
    bitslice: &DesignContext,
    suite: &[(Benchmark, usize)],
    opm: &QuantizedOpm,
    bits: &[usize],
    warmup: usize,
) -> Row {
    let pool = SimPool::new(1);
    let (a, scalar_s) = min_time_of2(|| pool.capture_proxy_suite(scalar, suite, bits, warmup));
    dump_phases(&format!("{name}/scalar"));
    let (b, bitslice_s) = min_time_of2(|| pool.capture_proxy_suite(bitslice, suite, bits, warmup));
    dump_phases(&format!("{name}/bitslice"));
    let identical = a == b
        && a.iter()
            .zip(&b)
            .all(|(x, y)| opm.window_outputs_proxy(x) == opm.window_outputs_proxy(y));
    Row {
        name,
        lanes: suite.len(),
        cycles_total: suite.iter().map(|(_, c)| c).sum(),
        scalar_s,
        bitslice_s,
        identical,
    }
}

fn capture_row(
    name: &'static str,
    scalar: &DesignContext,
    bitslice: &DesignContext,
    suite: &[(Benchmark, usize)],
    warmup: usize,
) -> Row {
    let pool = SimPool::new(1);
    let (a, scalar_s) = min_time_of2(|| pool.capture_suite(scalar, suite, warmup));
    dump_phases(&format!("{name}/scalar"));
    let (b, bitslice_s) = min_time_of2(|| pool.capture_suite(bitslice, suite, warmup));
    dump_phases(&format!("{name}/bitslice"));
    Row {
        name,
        lanes: suite.len(),
        cycles_total: a.n_cycles(),
        scalar_s,
        bitslice_s,
        identical: a.toggles == b.toggles && power_bits_equal(&a, &b),
    }
}

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let profile = std::env::var("APOLLO_PROFILE").is_ok();
    if profile {
        apollo_telemetry::set_timing(true);
    }
    let cfg = CpuConfig::tiny();
    let window = if quick { 80 } else { 300 };
    let fitness_cycles = if quick { 100 } else { 400 };

    let scalar = DesignContext::new(&cfg);
    let bitslice = DesignContext::with_engine(&cfg, 1, EngineKind::Bitslice);
    let base = benchmarks::table4_suite(&cfg);
    progress(&format!(
        "design `{}`: {} nodes, {} signal bits",
        cfg.name,
        scalar.handles.netlist.len(),
        scalar.m_bits()
    ));

    progress("repro_bitslice: capture_proxy64 (64-lane proxy-trace capture)...");
    let suite64: Vec<(Benchmark, usize)> = (0..64)
        .map(|i| (base[i % base.len()].clone(), window))
        .collect();
    let model = spread_model(&scalar, 32);
    let opm = QuantizedOpm::from_model(&model, 8, 16).expect("quantize spread model");
    let proxy_bits = model.bits();
    let capture_proxy64 = proxy_row(
        "capture_proxy64",
        &scalar,
        &bitslice,
        &suite64,
        &opm,
        &proxy_bits,
        100,
    );

    progress("repro_bitslice: capture64 (64 full lanes)...");
    let capture64 = capture_row("capture64", &scalar, &bitslice, &suite64, 100);

    progress("repro_bitslice: capture_table4 (ragged 12-lane batch)...");
    let table4: Vec<(Benchmark, usize)> = base.iter().map(|b| (b.clone(), window)).collect();
    let capture_table4 = capture_row("capture_table4", &scalar, &bitslice, &table4, 100);

    progress("repro_bitslice: fitness64 (GA mean-power batch)...");
    let programs: Vec<Vec<Inst>> = (0..64)
        .map(|i| base[i % base.len()].program.clone())
        .collect();
    let data = training_data_pattern(cfg.dram_words as usize);
    let pool = SimPool::new(1);
    let (fa, fitness_scalar_s) =
        min_time_of2(|| pool.mean_powers(&scalar, &programs, &data, 50, fitness_cycles));
    let (fb, fitness_bitslice_s) =
        min_time_of2(|| pool.mean_powers(&bitslice, &programs, &data, 50, fitness_cycles));
    let fitness64 = Row {
        name: "fitness64",
        lanes: programs.len(),
        cycles_total: programs.len() * fitness_cycles as usize,
        scalar_s: fitness_scalar_s,
        bitslice_s: fitness_bitslice_s,
        identical: fa.len() == fb.len()
            && fa.iter().zip(&fb).all(|(x, y)| x.to_bits() == y.to_bits()),
    };

    let rows = [capture_proxy64, capture64, capture_table4, fitness64];
    println!(
        "bitslice vs scalar, single worker thread, design `{}`:",
        cfg.name
    );
    println!(
        "  {:<16} {:>5} {:>10} {:>10} {:>10} {:>8}  identical",
        "row", "lanes", "cycles", "scalar_s", "bitslice_s", "speedup"
    );
    for r in &rows {
        println!(
            "  {:<16} {:>5} {:>10} {:>10.3} {:>10.3} {:>7.2}x  {}",
            r.name,
            r.lanes,
            r.cycles_total,
            r.scalar_s,
            r.bitslice_s,
            r.speedup(),
            r.identical
        );
    }

    let out = serde_json::json!({
        "design": cfg.name,
        "quick": quick,
        "threads": 1,
        "rows": rows.iter().map(|r| serde_json::json!({
            "name": r.name,
            "lanes": r.lanes,
            "cycles_total": r.cycles_total,
            "scalar_s": r.scalar_s,
            "bitslice_s": r.bitslice_s,
            "speedup": r.speedup(),
            "identical": r.identical,
        })).collect::<Vec<_>>(),
    });
    let path = save_json("repro_bitslice", &out);
    println!("saved {}", path.display());
    apollo_results::record_bench_run_soft(
        "repro_bitslice",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );

    if rows.iter().any(|r| !r.identical) {
        eprintln!("FAIL: engines disagree — the bitslice kernel is wrong");
        std::process::exit(1);
    }
    // Speedup gate: an explicit APOLLO_MIN_SPEEDUP always applies; the
    // budgets.toml floor applies to full runs only (quick smoke windows
    // are too short for a stable ratio).
    let floor = match std::env::var("APOLLO_MIN_SPEEDUP") {
        Ok(min) => Some(min.parse::<f64>().expect("APOLLO_MIN_SPEEDUP must be a number")),
        Err(_) if !quick => Some(apollo_results::budget_min_or(
            "repro_bitslice",
            "rows.capture_proxy64.speedup",
            4.0,
        )),
        Err(_) => None,
    };
    if let Some(min) = floor {
        let got = rows[0].speedup();
        if got < min {
            eprintln!("FAIL: capture_proxy64 speedup {got:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("capture_proxy64 speedup {got:.2}x >= required {min:.2}x");
    }
}
