//! Regenerates Tables 1, 3, 4 and 5.

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let p = Pipeline::new(cfg);
    ex::table4(&p);
    ex::table5();
    ex::table1(&p);
    ex::table3(&p);
}
