//! Regenerates Figure 10 (accuracy vs Q on the Neoverse-like design).

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cfg, targets): (PipelineConfig, Vec<usize>) = if quick {
        (PipelineConfig::quick(), vec![8, 16, 32])
    } else {
        (PipelineConfig::neoverse(), vec![25, 50, 100, 159, 250, 400])
    };
    let p = Pipeline::new(cfg);
    ex::fig10(&p, &targets, "10");
}
