//! Chaos-resilience benchmark: overhead and determinism under fault
//! injection.
//!
//! Two claims are machine-checked, mirroring `repro_introspect`'s
//! methodology (interleaved A/B reps, medians, remeasure-on-fail):
//!
//! 1. **Overhead under chaos.** With a live endpoint and one clean
//!    draining `/events` subscriber, adding a wire-chaos driver
//!    (connection churn, malformed requests, stalled subscribers —
//!    one paced replay of a seeded plan per rep) must cost under 3%
//!    on top of clean serving, the same budget `repro_introspect`
//!    enforces for serving over offline — hostile peers must not tax
//!    the hot loop. The clean-serving baseline is measured twice (A
//!    before, B after each chaos rep) and the smaller median is used,
//!    so slow machine drift cannot manufacture a pass.
//! 2. **Decision determinism.** A supervised fleet replaying a seeded
//!    fault plan twice (fresh checkpoint state each time) produces
//!    byte-identical supervision decision transcripts and completes
//!    with zero degraded pipelines.
//!
//! Budgets come from `budgets.toml` (default 3%). Writes
//! `results/repro_chaos.json` and appends a run record to the results
//! store. Set `APOLLO_QUICK=1` for a smoke run.

use apollo_bench::pipeline::save_json;
use apollo_core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{
    chaos, fleet_specs, http_get_lines, run_monitor, run_supervised, serve, ChaosPlan,
    CheckpointPolicy, MonitorConfig, MonitorHub, PipelineState, ServiceFault, SupervisorConfig,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_BUDGET_PCT: f64 = 3.0;
const ATTEMPTS: usize = 3;
const SEED: u64 = 0xA11_0C8A05; // "all-o-chaos"

fn monitor_ns_per_cycle(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    hub: Option<&MonitorHub>,
) -> f64 {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let report = run_monitor(ctx, model, bench, cfg, hub, &stop).expect("monitor run");
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(report.energy);
    ns / cfg.cycles as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Replays the plan's wire faults against `addr` once, paced a few
/// milliseconds apart — a bounded hostile peer, not a saturation
/// attack (on a single core an unbounded loop would measure the
/// attacker's CPU draw, not the monitor's resilience). Pipeline
/// panics are skipped here; the supervised-fleet phase drives those
/// in-process.
fn drive_wire_chaos(addr: &str, plan: &ChaosPlan, done: &AtomicBool) {
    for f in &plan.faults {
        if done.load(Ordering::Relaxed) {
            return;
        }
        match f {
            ServiceFault::SubscriberStall { hold_ms } => {
                let _ = chaos::stall_subscriber(addr, (*hold_ms).min(20));
            }
            ServiceFault::ConnChurn { count } => chaos::churn_connections(addr, (*count).min(3)),
            ServiceFault::MalformedRequest { kind } => {
                let _ = chaos::send_malformed(addr, *kind);
            }
            ServiceFault::PipelinePanic { .. } => {}
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[derive(Debug, serde::Serialize)]
struct ChaosRepro {
    cycles_per_rep: u64,
    reps: usize,
    wire_faults_in_plan: usize,
    clean_serving_a_ns_per_cycle: f64,
    clean_serving_b_ns_per_cycle: f64,
    /// A/B delta between the two clean-serving sets, in percent —
    /// the measurement noise floor.
    clean_noise_pct: f64,
    chaos_serving_ns_per_cycle: f64,
    chaos_overhead_pct: f64,
    budget_pct: f64,
    /// Supervised-fleet replay: restarts forced by the seeded plan.
    fleet_restarts: usize,
    /// Degraded pipelines after the fleet replay (must be 0).
    fleet_degraded: usize,
    /// Both fleet replays produced byte-identical decision logs.
    decisions_deterministic: bool,
    pass: bool,
}

/// One serving rep: endpoint bound, one clean `/events` subscriber
/// draining, and — when `plan` is given — a wire-chaos driver firing
/// throughout. Returns ns/cycle of the monitor thread.
fn serving_rep(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    plan: Option<&ChaosPlan>,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let hub = MonitorHub::new(1024);
    let server =
        serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).expect("bind bench endpoint");
    let addr = server.addr().to_string();
    let drain = {
        let addr = addr.clone();
        std::thread::spawn(move || http_get_lines(&addr, "/events", None))
    };
    let done = Arc::new(AtomicBool::new(false));
    let chaos_thread = plan.map(|plan| {
        let addr = addr.clone();
        let plan = plan.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || drive_wire_chaos(&addr, &plan, &done))
    });
    let ns = monitor_ns_per_cycle(ctx, model, bench, cfg, Some(&hub));
    done.store(true, Ordering::Relaxed);
    hub.close();
    if let Some(t) = chaos_thread {
        t.join().expect("chaos driver");
    }
    server.stop();
    let _ = drain.join().expect("drain thread");
    ns
}

fn measure_overhead(
    ctx: &DesignContext,
    model: &apollo_core::ApolloModel,
    bench: &benchmarks::Benchmark,
    cfg: &MonitorConfig,
    plan: &ChaosPlan,
    reps: usize,
) -> (f64, f64, f64) {
    // Interleave clean-serving and chaos-serving reps so slow machine
    // drift hits both configurations equally.
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    let mut s = Vec::with_capacity(reps);
    for _ in 0..reps {
        a.push(serving_rep(ctx, model, bench, cfg, None));
        s.push(serving_rep(ctx, model, bench, cfg, Some(plan)));
        b.push(serving_rep(ctx, model, bench, cfg, None));
    }
    (median(&mut a), median(&mut b), median(&mut s))
}

fn main() -> ExitCode {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cycles, reps) = if quick { (16_000u64, 5) } else { (32_000u64, 7) };
    let budget_pct = apollo_results::budget_max_or(
        "repro_chaos",
        "chaos_overhead_pct",
        DEFAULT_BUDGET_PCT,
    );

    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = vec![
        (benchmarks::dhrystone(), 300),
        (benchmarks::maxpwr_cpu(), 300),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model;
    let bench = benchmarks::maxpwr_cpu();
    let cfg = MonitorConfig {
        cycles,
        window_t: 256,
        ..MonitorConfig::default()
    };
    let plan = ChaosPlan::generate(SEED, 4, 8, 12);
    let wire_faults = plan
        .faults
        .iter()
        .filter(|f| !matches!(f, ServiceFault::PipelinePanic { .. }))
        .count();

    // One unmeasured warmup run to settle lazy init and caches.
    monitor_ns_per_cycle(&ctx, &model, &bench, &cfg, None);

    // Phase 1: overhead under wire chaos, keeping the best of up to
    // ATTEMPTS measurements (single-core schedulers produce bursty
    // outliers; the floor is what the chaos actually costs).
    let pct_of = |m: &(f64, f64, f64)| {
        let base = m.0.min(m.1);
        100.0 * (m.2 - base) / base
    };
    let mut best = measure_overhead(&ctx, &model, &bench, &cfg, &plan, reps);
    for attempt in 1..ATTEMPTS {
        if pct_of(&best) < budget_pct {
            break;
        }
        eprintln!(
            "attempt {attempt}: chaos overhead {:.2}% over budget, remeasuring",
            pct_of(&best)
        );
        let next = measure_overhead(&ctx, &model, &bench, &cfg, &plan, reps);
        if pct_of(&next) < pct_of(&best) {
            best = next;
        }
    }
    let (oa, ob, serving) = best;
    let baseline = oa.min(ob);
    let overhead_pct = pct_of(&best);

    // Phase 2: supervised-fleet determinism under the same seed. The
    // injected panics are expected — mute the default hook's
    // backtrace spew; failure reasons land in the decision log.
    std::panic::set_hook(Box::new(|_| {}));
    let fleet_cfg = MonitorConfig {
        cycles: 256,
        window_t: 16,
        ..MonitorConfig::default()
    };
    let actx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let amodel = Arc::new(model.clone());
    let mut transcripts = Vec::new();
    let mut restarts = 0usize;
    let mut degraded = 0usize;
    for rerun in 0..2 {
        let dir = std::env::temp_dir().join(format!(
            "apollo_repro_chaos_{rerun}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut specs = fleet_specs(4, &fleet_cfg);
        for (i, spec) in specs.iter_mut().enumerate() {
            spec.faults = plan.panics_for(i);
        }
        let sup = SupervisorConfig {
            checkpoint: Some(CheckpointPolicy::new(&dir, 4)),
            ..SupervisorConfig::default()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let report = run_supervised(&actx, &amodel, &specs, &sup, None, &stop);
        restarts = report
            .pipelines
            .iter()
            .map(|p| p.attempts as usize - 1)
            .sum();
        degraded = report
            .pipelines
            .iter()
            .filter(|p| p.state == PipelineState::Degraded)
            .count();
        transcripts.push(report.decision_transcript());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let deterministic = transcripts[0] == transcripts[1];

    let out = ChaosRepro {
        cycles_per_rep: cycles,
        reps,
        wire_faults_in_plan: wire_faults,
        clean_serving_a_ns_per_cycle: oa,
        clean_serving_b_ns_per_cycle: ob,
        clean_noise_pct: 100.0 * (oa - ob).abs() / baseline,
        chaos_serving_ns_per_cycle: serving,
        chaos_overhead_pct: overhead_pct,
        budget_pct,
        fleet_restarts: restarts,
        fleet_degraded: degraded,
        decisions_deterministic: deterministic,
        pass: overhead_pct < budget_pct && deterministic && degraded == 0,
    };

    println!("== Monitor serving overhead under wire chaos ==");
    println!(
        "clean serving: {:.1} ns/cycle (A {:.1}, B {:.1}; noise {:.2}%)",
        baseline, oa, ob, out.clean_noise_pct
    );
    println!(
        "under chaos:   {:.1} ns/cycle ({:+.2}%, budget {budget_pct}%) with {wire_faults} wire faults/rep",
        serving, overhead_pct
    );
    println!(
        "fleet replay: {restarts} forced restarts, {degraded} degraded, decisions {}",
        if deterministic {
            "byte-identical across reruns"
        } else {
            "DIVERGED"
        }
    );
    save_json("repro_chaos", &out);
    apollo_results::record_bench_run_soft(
        "repro_chaos",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );
    if out.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: overhead {overhead_pct:.2}% (budget {budget_pct}%), deterministic={deterministic}, degraded={degraded}"
        );
        ExitCode::FAILURE
    }
}
