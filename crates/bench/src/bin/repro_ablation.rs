//! Ablation study of APOLLO's design choices (relaxation, MCP γ,
//! non-negativity, nonlinear heads).

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let q = if quick { 16 } else { 159 };
    let p = Pipeline::new(cfg);
    ex::ablation(&p, q);
}
