//! Regenerates Figure 15(b) (OPM area/accuracy trade-off).

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let (qs, bs): (Vec<usize>, Vec<u8>) = if quick {
        (vec![8, 16], vec![6, 10])
    } else {
        (vec![40, 80, 159, 300], vec![6, 8, 10, 12])
    };
    let p = Pipeline::new(cfg);
    ex::fig15b(&p, &qs, &bs);
}
