//! Telemetry overhead microbenchmark.
//!
//! Measures the simulator `step()` hot loop in three configurations:
//! telemetry fully disabled (two interleaved repetition sets — the
//! observability layer cannot be compiled out, so the disabled-path
//! cost is bounded by the A/B pass-to-pass delta), with span timing
//! enabled, and with timing plus a JSONL sink attached. Writes
//! `results/repro_telemetry.json`, appends a run record to the
//! results store, and exits non-zero if the disabled A/B delta
//! exceeds the budget (from `budgets.toml`, default 2%) on every
//! attempt.
//!
//! Set `APOLLO_QUICK=1` for a smoke run.

use apollo_bench::pipeline::save_json;
use apollo_core::DesignContext;
use apollo_cpu::{benchmarks, CpuConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const WARMUP: u64 = 200;
const DEFAULT_BUDGET_PCT: f64 = 2.0;
const ATTEMPTS: usize = 3;

fn ns_per_step(ctx: &DesignContext, bench: &benchmarks::Benchmark, cycles: u64) -> f64 {
    let mut sim = ctx.simulate(&bench.program, &bench.data);
    for _ in 0..WARMUP {
        sim.step();
    }
    let mut acc = 0.0;
    let t0 = Instant::now();
    for _ in 0..cycles {
        sim.step();
        acc += sim.sim().power().total;
    }
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    ns / cycles as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[derive(Debug, serde::Serialize)]
struct TelemetryOverhead {
    cycles_per_rep: u64,
    reps: usize,
    disabled_a_ns_per_step: f64,
    disabled_b_ns_per_step: f64,
    /// A/B delta between the two disabled repetition sets, in percent —
    /// the measurable bound on the disabled-telemetry cost.
    disabled_overhead_pct: f64,
    timing_ns_per_step: f64,
    timing_overhead_pct: f64,
    sink_ns_per_step: f64,
    sink_overhead_pct: f64,
    budget_pct: f64,
    pass: bool,
}

fn measure(
    ctx: &DesignContext,
    bench: &benchmarks::Benchmark,
    cycles: u64,
    reps: usize,
    budget_pct: f64,
) -> TelemetryOverhead {
    // Interleave the two disabled sets so slow drift (frequency
    // scaling, cache warmth) hits both equally.
    let mut a = Vec::with_capacity(reps);
    let mut b = Vec::with_capacity(reps);
    for _ in 0..reps {
        a.push(ns_per_step(ctx, bench, cycles));
        b.push(ns_per_step(ctx, bench, cycles));
    }
    let disabled_a = median(&mut a);
    let disabled_b = median(&mut b);
    let disabled = disabled_a.min(disabled_b);

    apollo_telemetry::set_timing(true);
    let mut t = Vec::with_capacity(reps);
    for _ in 0..reps {
        t.push(ns_per_step(ctx, bench, cycles));
    }
    let timing = median(&mut t);

    let sink_path = std::env::temp_dir().join("apollo_telemetry_bench.jsonl");
    let sink = apollo_telemetry::JsonlSink::create(&sink_path).expect("create bench trace");
    apollo_telemetry::install_sink(Arc::new(sink));
    let mut s = Vec::with_capacity(reps);
    for _ in 0..reps {
        s.push(ns_per_step(ctx, bench, cycles));
    }
    let sink_ns = median(&mut s);
    apollo_telemetry::clear_sink();
    apollo_telemetry::set_timing(false);
    let _ = std::fs::remove_file(&sink_path);

    let pct = |x: f64| 100.0 * (x - disabled) / disabled;
    TelemetryOverhead {
        cycles_per_rep: cycles,
        reps,
        disabled_a_ns_per_step: disabled_a,
        disabled_b_ns_per_step: disabled_b,
        disabled_overhead_pct: 100.0 * (disabled_a - disabled_b).abs() / disabled,
        timing_ns_per_step: timing,
        timing_overhead_pct: pct(timing),
        sink_ns_per_step: sink_ns,
        sink_overhead_pct: pct(sink_ns),
        budget_pct,
        pass: false,
    }
}

fn main() -> ExitCode {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cycles, reps) = if quick { (2_000, 5) } else { (10_000, 7) };
    let budget_pct = apollo_results::budget_max_or(
        "repro_telemetry",
        "disabled_overhead_pct",
        DEFAULT_BUDGET_PCT,
    );
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let bench = benchmarks::maxpwr_cpu();

    let mut out = measure(&ctx, &bench, cycles, reps, budget_pct);
    for attempt in 1..ATTEMPTS {
        if out.disabled_overhead_pct < budget_pct {
            break;
        }
        eprintln!(
            "attempt {attempt}: disabled A/B delta {:.2}% over budget, remeasuring",
            out.disabled_overhead_pct
        );
        out = measure(&ctx, &bench, cycles, reps, budget_pct);
    }
    out.pass = out.disabled_overhead_pct < budget_pct;

    println!("== Telemetry overhead on the step() hot loop ==");
    println!(
        "disabled:      {:.1} ns/step (A {:.1}, B {:.1}; A/B delta {:.2}%, budget {budget_pct}%)",
        out.disabled_a_ns_per_step.min(out.disabled_b_ns_per_step),
        out.disabled_a_ns_per_step,
        out.disabled_b_ns_per_step,
        out.disabled_overhead_pct
    );
    println!(
        "timing on:     {:.1} ns/step ({:+.2}%)",
        out.timing_ns_per_step, out.timing_overhead_pct
    );
    println!(
        "timing + sink: {:.1} ns/step ({:+.2}%)",
        out.sink_ns_per_step, out.sink_overhead_pct
    );
    save_json("repro_telemetry", &out);
    apollo_results::record_bench_run_soft(
        "repro_telemetry",
        &out,
        &[("quick", if quick { "1" } else { "0" })],
    );
    if out.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: disabled-telemetry overhead bound exceeds {budget_pct}%");
        ExitCode::FAILURE
    }
}
