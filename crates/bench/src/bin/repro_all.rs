//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p apollo-bench --bin repro_all`
//! Set `APOLLO_QUICK=1` for a fast smoke run on the tiny design.

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let p = Pipeline::new(cfg);

    ex::table4(&p);
    ex::table5();
    ex::fig3(&p);
    ex::fig9(&p);
    let q_sweep: Vec<usize> = if quick {
        vec![8, 16, 32]
    } else {
        vec![25, 50, 100, 159, 250, 400]
    };
    ex::fig10(&p, &q_sweep, "10");
    if quick {
        ex::fig11(&p, 12, 24);
        ex::fig13_14(&p, 16);
    } else {
        ex::fig11(&p, 100, 200);
        ex::fig13_14(&p, 159);
    }
    ex::fig15a(&p);
    let (qs, bs): (Vec<usize>, Vec<u8>) = if quick {
        (vec![8, 16], vec![6, 10])
    } else {
        (vec![40, 80, 159, 300], vec![6, 8, 10, 12])
    };
    ex::fig15b(&p, &qs, &bs);
    ex::fig16(&p, if quick { 5_000 } else { 1_000_000 });
    ex::fig17(&p);
    ex::table1(&p);
    ex::table3(&p);
    ex::speed(&p);
    ex::ablation(&p, if quick { 16 } else { 159 });

    // Figure 12: the Cortex-like design.
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::cortex()
    };
    let p2 = Pipeline::new(cfg);
    let q_sweep2: Vec<usize> = if quick {
        vec![8, 16]
    } else {
        vec![50, 100, 200, 300, 500]
    };
    ex::fig10(&p2, &q_sweep2, "12");

    println!("\nAll experiments complete; JSON results under results/.");
}
