//! Regenerates Figure 16 (emulator-assisted long-trace flow).

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let cycles = if quick { 5_000 } else { 1_000_000 };
    let p = Pipeline::new(cfg);
    ex::fig16(&p, cycles);
}
