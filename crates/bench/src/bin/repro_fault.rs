//! Fault-rate sweeps: estimation fidelity and governor safety under
//! deterministic fault injection (the robustness companion to the
//! paper's accuracy results).
//!
//! Three sweeps, all seeded and bit-reproducible:
//!
//! 1. **Silicon faults** — netlist-level transient upsets at increasing
//!    rates; the (healthy) OPM is scored against the faulted design's
//!    true per-epoch power (R², per-epoch MAPE).
//! 2. **Meter faults** — counter upsets / ROM corruption / dropped
//!    epochs inside the meter itself, `Single` vs `MedianOfThree`
//!    redundancy, scored against the healthy design's true power.
//! 3. **Governed meter faults** — the fail-safe governor driving a
//!    power cap from a faulty meter: cap violations, flagged epochs and
//!    time spent in fail-safe mode.
//!
//! Results land in `results/repro_fault.json`. `APOLLO_QUICK=1` runs
//! the tiny configuration.

use apollo_bench::pipeline::{progress, save_json, sustained_virus, Pipeline, PipelineConfig};
use apollo_cpu::benchmarks::Benchmark;
use apollo_mlkit::metrics;
use apollo_opm::{
    run_governed_resilient, Envelope, GovernorConfig, HardenedOpm, MeterFaultPlan, QuantizedOpm,
    Redundancy, ResilientGovernorConfig,
};
use apollo_sim::{FaultPlan, TraceData};

/// Window size of every OPM in this binary (matches the governed epoch).
const T: usize = 32;

/// One row of the silicon-fault sweep.
#[derive(serde::Serialize)]
struct SiliconFaultRow {
    flip_rate: f64,
    reg_flips: u64,
    mem_flips: u64,
    r2: f64,
    mape: f64,
}

/// One row of the meter-fault sweep.
#[derive(serde::Serialize)]
struct MeterFaultRow {
    counter_flip_rate: f64,
    rom_flip_rate: f64,
    drop_rate: f64,
    redundancy: String,
    injected_events: usize,
    flagged_readings: usize,
    r2: f64,
    mape: f64,
}

/// One row of the governed sweep.
#[derive(serde::Serialize)]
struct GovernedFaultRow {
    drop_rate: f64,
    counter_flip_rate: f64,
    cap: f64,
    epochs_over_cap: f64,
    epochs_over_cap_free: f64,
    flagged_epochs: usize,
    failsafe_epochs: u64,
    stuck_detections: u64,
    relative_ipc: f64,
    mean_power_governed: f64,
}

#[derive(serde::Serialize)]
struct FaultReproReport {
    config: String,
    opm_q: usize,
    opm_b: u8,
    opm_t: usize,
    silicon: Vec<SiliconFaultRow>,
    meter: Vec<MeterFaultRow>,
    governed: Vec<GovernedFaultRow>,
}

/// True mean power of each full T-cycle epoch in a trace.
fn epoch_truth(trace: &TraceData) -> Vec<f64> {
    let y = trace.labels();
    y.chunks_exact(T)
        .map(|w| w.iter().sum::<f64>() / T as f64)
        .collect()
}

/// Mean absolute percentage error, guarding near-zero truth.
fn mape(truth: &[f64], est: &[f64]) -> f64 {
    let n = truth.len().min(est.len());
    assert!(n > 0, "empty epoch series");
    let mut acc = 0.0;
    for i in 0..n {
        let denom = truth[i].abs().max(1e-9);
        acc += (est[i] - truth[i]).abs() / denom;
    }
    acc / n as f64
}

/// Scores hardened readings against per-epoch ground truth.
fn score(hard: &HardenedOpm, trace: &TraceData, plan: &MeterFaultPlan) -> (f64, f64, usize, usize) {
    let run = hard.run(&trace.toggles, plan).expect("hardened run");
    let truth = epoch_truth(trace);
    let est: Vec<f64> = run.readings.iter().map(|r| hard.descale(r.value)).collect();
    let n = truth.len().min(est.len());
    let flagged = run.readings.iter().filter(|r| r.flagged).count();
    (
        metrics::r2(&truth[..n], &est[..n]),
        mape(&truth[..n], &est[..n]),
        run.report.events.len(),
        flagged,
    )
}

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let name = cfg.design.name.clone();
    let p = Pipeline::new(cfg);
    let model = p.main_model();
    let opm = QuantizedOpm::from_model(&model, 10, T).expect("quantization");
    let spec = opm.spec;

    let (program, data) = sustained_virus();
    let bench = Benchmark {
        name: "sustained_virus".into(),
        program: program.clone(),
        data: data.clone(),
        cycles: 2048,
    };
    let cycles = 2048;
    let warmup = 64;

    // A healthy capture anchors the plausibility envelope and the
    // meter-fault sweep's ground truth.
    let (clean, _) = p
        .ctx
        .capture_faulted(&bench, cycles, warmup, &FaultPlan::empty())
        .expect("clean capture");
    let envelope = Envelope::calibrate(&opm, &clean.toggles, 1.0);
    progress(&format!(
        "calibrated envelope [{}, {}] (structural max {})",
        envelope.min,
        envelope.max,
        Envelope::structural(&opm).max
    ));

    // Sweep 1: transient upsets in the monitored silicon; the meter
    // itself is healthy, so this measures how well the model tracks a
    // faulty design's true power.
    println!("\n== silicon transient-upset sweep (healthy meter) ==");
    println!("  flip rate   reg flips   mem flips      R2     MAPE");
    let mut silicon = Vec::new();
    for (i, &rate) in [0.0, 1e-4, 1e-3, 1e-2, 5e-2].iter().enumerate() {
        let plan = FaultPlan {
            seed: 0xFA01_7000 + i as u64,
            stuck_at: vec![],
            reg_flip_rate: rate,
            mem_flip_rate: rate,
        };
        let (trace, report) = p
            .ctx
            .capture_faulted(&bench, cycles, warmup, &plan)
            .expect("faulted capture");
        let hard = HardenedOpm::new(opm.clone()).with_envelope(envelope);
        let (r2, err, _, _) = score(&hard, &trace, &MeterFaultPlan::empty());
        println!(
            "  {:>9.0e}   {:>9}   {:>9}   {:>5.3}   {:>5.1}%",
            rate,
            report.reg_flips,
            report.mem_flips,
            r2,
            100.0 * err
        );
        silicon.push(SiliconFaultRow {
            flip_rate: rate,
            reg_flips: report.reg_flips,
            mem_flips: report.mem_flips,
            r2,
            mape: err,
        });
    }

    // Sweep 2: faults inside the meter, against the healthy design.
    println!("\n== meter-local fault sweep (healthy silicon) ==");
    println!("  cnt/rom/drop rate   redundancy      events  flagged      R2     MAPE");
    let mut meter = Vec::new();
    for (i, &rate) in [0.0, 0.01, 0.05, 0.2].iter().enumerate() {
        let plan = MeterFaultPlan {
            seed: 0x4D45_5400 + i as u64,
            counter_flip_rate: rate,
            rom_flip_rate: rate / 4.0,
            drop_rate: rate / 2.0,
        };
        for redundancy in [Redundancy::Single, Redundancy::MedianOfThree] {
            let hard = HardenedOpm::new(opm.clone())
                .with_envelope(envelope)
                .with_redundancy(redundancy);
            let (r2, err, events, flagged) = score(&hard, &clean, &plan);
            let rname = format!("{redundancy:?}");
            println!(
                "  {:>17.3}   {:<13} {:>7}  {:>7}   {:>5.3}   {:>5.1}%",
                rate,
                rname,
                events,
                flagged,
                r2,
                100.0 * err
            );
            meter.push(MeterFaultRow {
                counter_flip_rate: plan.counter_flip_rate,
                rom_flip_rate: plan.rom_flip_rate,
                drop_rate: plan.drop_rate,
                redundancy: rname,
                injected_events: events,
                flagged_readings: flagged,
                r2,
                mape: err,
            });
        }
    }

    // Sweep 3: the fail-safe governor holding a cap from a faulty meter.
    let free_power = p
        .ctx
        .mean_power(&program, &data, warmup as u64, cycles as u64);
    let cap = free_power * 0.8;
    progress(&format!(
        "free-running virus power {free_power:.0}, cap {cap:.0}"
    ));
    println!("\n== fail-safe governor under meter faults (cap = 80% of free) ==");
    println!("  drop rate   over-cap (free)   flagged  failsafe  rel IPC");
    let mut governed = Vec::new();
    for (i, &drop) in [0.0, 0.05, 0.25, 1.0].iter().enumerate() {
        let plan = MeterFaultPlan {
            seed: 0x474F_5600 + i as u64,
            counter_flip_rate: drop / 10.0,
            rom_flip_rate: 0.0,
            drop_rate: drop,
        };
        let hard = HardenedOpm::new(opm.clone()).with_envelope(envelope);
        let config = ResilientGovernorConfig {
            base: GovernorConfig {
                epoch: T,
                cap,
                ..GovernorConfig::default()
            },
            ..ResilientGovernorConfig::default()
        };
        let report = run_governed_resilient(
            &p.ctx.handles,
            &p.ctx.cap,
            &hard,
            &program,
            &data,
            cycles,
            &config,
            None,
            &plan,
        )
        .expect("governed run");
        println!(
            "  {:>9.2}   {:>5.1}% ({:>5.1}%)   {:>7}  {:>8}   {:>6.2}",
            drop,
            100.0 * report.base.epochs_over_cap,
            100.0 * report.base.epochs_over_cap_free,
            report.flagged_epochs.len(),
            report.failsafe_epochs,
            report.base.retired_governed as f64 / report.base.retired_free.max(1) as f64
        );
        governed.push(GovernedFaultRow {
            drop_rate: plan.drop_rate,
            counter_flip_rate: plan.counter_flip_rate,
            cap,
            epochs_over_cap: report.base.epochs_over_cap,
            epochs_over_cap_free: report.base.epochs_over_cap_free,
            flagged_epochs: report.flagged_epochs.len(),
            failsafe_epochs: report.failsafe_epochs,
            stuck_detections: report.stuck_detections,
            relative_ipc: report.base.retired_governed as f64
                / report.base.retired_free.max(1) as f64,
            mean_power_governed: report.base.mean_power_governed,
        });
    }

    let out = FaultReproReport {
        config: name,
        opm_q: spec.q,
        opm_b: spec.b,
        opm_t: spec.t,
        silicon,
        meter,
        governed,
    };
    let path = save_json("repro_fault", &out);
    progress(&format!("wrote {}", path.display()));
}
