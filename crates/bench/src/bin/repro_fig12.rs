//! Regenerates Figure 12 (accuracy vs Q on the Cortex-like design).

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let (cfg, targets): (PipelineConfig, Vec<usize>) = if quick {
        (PipelineConfig::quick(), vec![8, 16])
    } else {
        (PipelineConfig::cortex(), vec![50, 100, 200, 300, 500])
    };
    let p = Pipeline::new(cfg);
    ex::fig10(&p, &targets, "12");
}
