//! Regenerates the paper's fig9 experiment (see repro_all for the
//! full suite). Set `APOLLO_QUICK=1` for a smoke run.

use apollo_bench::{experiments as ex, Pipeline, PipelineConfig};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let p = Pipeline::new(cfg);
    ex::fig9(&p);
}
