//! Runtime power management demo: an OPM-driven power-cap governor
//! (paper §1's DVFS motivation, closed in simulation).

use apollo_bench::pipeline::{progress, save_json, Pipeline, PipelineConfig};
use apollo_cpu::{Asm, VecOp, Vr, Xr};
use apollo_opm::{run_governed, GovernorConfig, QuantizedOpm};

/// A sustained power virus: the maxpwr_cpu inner mix looped far past
/// the governed window (the stock Table-4 benchmark halts after a few
/// hundred cycles, which would let the governor off the hook).
fn sustained_virus() -> (Vec<apollo_cpu::Inst>, Vec<u64>) {
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0);
    a.vld(Vr(0), Xr(2), 0);
    a.vld(Vr(1), Xr(2), 2);
    a.vld(Vr(2), Xr(2), 4);
    a.load_const(Xr(3), 0xA5A5_5A5A_DEAD_BEEF);
    a.load_const(Xr(4), 0x0123_4567_89AB_CDEF);
    a.addi(Xr(1), Xr(0), 8000);
    a.addi(Xr(15), Xr(0), 1);
    let top = a.label();
    a.vec(VecOp::VMac, Vr(2), Vr(0), Vr(1));
    a.mul(Xr(5), Xr(3), Xr(4));
    a.xor(Xr(6), Xr(3), Xr(4));
    a.add(Xr(7), Xr(5), Xr(6));
    a.vec(VecOp::VMul, Vr(3), Vr(1), Vr(2));
    a.sub(Xr(8), Xr(7), Xr(3));
    a.lw(Xr(9), Xr(0), 1);
    a.shri(Xr(10), Xr(8), 7);
    a.vec(VecOp::VAdd, Vr(4), Vr(2), Vr(3));
    a.or(Xr(3), Xr(10), Xr(9));
    a.sub(Xr(1), Xr(1), Xr(15));
    a.bne(Xr(1), Xr(0), top);
    a.halt();
    let data: Vec<u64> = (0..64).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1).collect();
    (a.assemble(), data)
}

fn main() {
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick { PipelineConfig::quick() } else { PipelineConfig::neoverse() };
    let p = Pipeline::new(cfg);
    let model = p.main_model();
    let opm = QuantizedOpm::from_model(&model, 10, 32);

    let (program, data) = sustained_virus();
    let free_power = p.ctx.mean_power(&program, &data, 400, 1000);
    progress(&format!("free-running virus power: {free_power:.0}"));

    println!("\n== OPM-driven power-cap governor ==");
    println!("  cap      mean power   over-cap epochs   relative IPC");
    for cap_frac in [0.95, 0.85, 0.75, 0.6] {
        let cap = free_power * cap_frac;
        let report = run_governed(
            &p.ctx.handles,
            &p.ctx.cap,
            &opm,
            &program,
            &data,
            4096,
            &GovernorConfig { epoch: 32, cap, ..GovernorConfig::default() },
        );
        println!(
            "  {:>5.0}  {:>9.0}    {:>5.1}% (free {:>4.1}%)   {:.2}",
            cap,
            report.mean_power_governed,
            100.0 * report.epochs_over_cap,
            100.0 * report.epochs_over_cap_free,
            report.retired_governed as f64 / report.retired_free.max(1) as f64
        );
        save_json(&format!("governor_cap{}", (cap_frac * 100.0) as u32), &report);
    }
}
