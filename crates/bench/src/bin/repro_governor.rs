//! Runtime power management demo: an OPM-driven power-cap governor
//! (paper §1's DVFS motivation, closed in simulation).

use apollo_bench::pipeline::{progress, save_json, sustained_virus, Pipeline, PipelineConfig};
use apollo_opm::{run_governed, GovernorConfig, QuantizedOpm};

fn main() {
    apollo_bench::init_cli_verbosity();
    let quick = std::env::var("APOLLO_QUICK").is_ok();
    let cfg = if quick {
        PipelineConfig::quick()
    } else {
        PipelineConfig::neoverse()
    };
    let p = Pipeline::new(cfg);
    let model = p.main_model();
    let opm = QuantizedOpm::from_model(&model, 10, 32).expect("quantization");

    let (program, data) = sustained_virus();
    let free_power = p.ctx.mean_power(&program, &data, 400, 1000);
    progress(&format!("free-running virus power: {free_power:.0}"));

    println!("\n== OPM-driven power-cap governor ==");
    println!("  cap      mean power   over-cap epochs   relative IPC");
    for cap_frac in [0.95, 0.85, 0.75, 0.6] {
        let cap = free_power * cap_frac;
        let report = run_governed(
            &p.ctx.handles,
            &p.ctx.cap,
            &opm,
            &program,
            &data,
            4096,
            &GovernorConfig {
                epoch: 32,
                cap,
                ..GovernorConfig::default()
            },
        );
        println!(
            "  {:>5.0}  {:>9.0}    {:>5.1}% (free {:>4.1}%)   {:.2}",
            cap,
            report.mean_power_governed,
            100.0 * report.epochs_over_cap,
            100.0 * report.epochs_over_cap_free,
            report.retired_governed as f64 / report.retired_free.max(1) as f64
        );
        save_json(
            &format!("governor_cap{}", (cap_frac * 100.0) as u32),
            &report,
        );
    }
}
