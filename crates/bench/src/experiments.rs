//! One function per paper table/figure, each returning a serializable
//! result and printing the corresponding rows/series.

use crate::pipeline::{progress, save_json, Pipeline};
use apollo_core::baselines::{
    train_pca, train_primal, train_simmani, train_simmani_window, PrimalOptions, SimmaniOptions,
};
use apollo_core::{
    run_emulator_flow, train_per_cycle_multi, train_tau, window_average, window_nrmse,
    SelectionPenalty, TraceDesign, TrainOptions,
};
use apollo_mlkit::metrics::{self, mean_vif};
use apollo_mlkit::MlpOptions;
use apollo_opm::droop::{mitigate, DroopAnalysis, PdnModel};
use apollo_opm::structure::{table3 as opm_table3, verify_apollo_structure, MonitorStructure};
use apollo_opm::{build_opm, AreaReport, QuantizedOpm};
use std::collections::BTreeMap;

/// `outln!` gated on verbosity: result rows stay visible by default
/// but `--quiet` silences them (e.g. when a caller only wants the
/// saved JSON).
macro_rules! outln {
    ($($t:tt)*) => {
        if apollo_telemetry::verbosity() > apollo_telemetry::Verbosity::Quiet {
            println!($($t)*);
        }
    };
}

/// Accuracy triple used throughout.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Accuracy {
    /// Coefficient of determination.
    pub r2: f64,
    /// Normalized RMSE.
    pub nrmse: f64,
    /// Normalized MAE.
    pub nmae: f64,
}

impl Accuracy {
    /// Computes all three metrics.
    pub fn of(y: &[f64], pred: &[f64]) -> Accuracy {
        Accuracy {
            r2: metrics::r2(y, pred),
            nrmse: metrics::nrmse(y, pred),
            nmae: metrics::nmae(y, pred),
        }
    }
}

// ---------------------------------------------------------------------
// Figure 3(b): GA training-data generation
// ---------------------------------------------------------------------

/// Figure 3(b) data: per-generation power samples.
#[derive(Debug, serde::Serialize)]
pub struct Fig3 {
    /// (generation, average power) for every individual.
    pub samples: Vec<(usize, f64)>,
    /// Best power per generation (the envelope).
    pub best_per_gen: Vec<f64>,
    /// max/min power ratio over all individuals.
    pub spread: f64,
}

/// Runs the Figure 3(b) experiment.
pub fn fig3(p: &Pipeline) -> Fig3 {
    let ga = p.ga();
    let out = Fig3 {
        samples: ga
            .individuals
            .iter()
            .map(|i| (i.generation, i.avg_power))
            .collect(),
        best_per_gen: ga.best_per_gen.clone(),
        spread: ga.power_spread(),
    };
    outln!("\n== Figure 3(b): GA-generated training benchmarks ==");
    outln!(
        "individuals: {}   power spread (max/min): {:.2}x   (paper: > 5x)",
        out.samples.len(),
        out.spread
    );
    let gens = ga.best_per_gen.len();
    for g in [0, gens / 2, gens - 1] {
        outln!(
            "  generation {:>3}: best power {:.1}",
            g,
            ga.best_per_gen[g]
        );
    }
    save_json("fig3_ga", &out);
    out
}

// ---------------------------------------------------------------------
// Figure 9: detailed evaluation of the headline model
// ---------------------------------------------------------------------

/// Figure 9 data.
#[derive(Debug, serde::Serialize)]
pub struct Fig9 {
    /// Proxy count of the evaluated model.
    pub q: usize,
    /// Overall test-set accuracy.
    pub overall: Accuracy,
    /// Mean ground-truth and predicted power (the paper's unbiasedness
    /// check: 16.9 vs 16.8, 0.6% apart).
    pub mean_truth: f64,
    /// Mean predicted power.
    pub mean_pred: f64,
    /// Per-benchmark (name, cycles, accuracy).
    pub per_benchmark: Vec<(String, usize, Accuracy)>,
    /// A short excerpt of (truth, prediction) pairs for plotting.
    pub excerpt: Vec<(f64, f64)>,
}

/// Runs the Figure 9 experiment with the headline model.
pub fn fig9(p: &Pipeline) -> Fig9 {
    let model = p.main_model();
    let test = p.test_trace();
    let y = test.labels();
    let pred = model.predict_full(&test.toggles);
    let overall = Accuracy::of(&y, &pred);
    let mut per_benchmark = Vec::new();
    for (name, range) in &test.segments {
        let acc = Accuracy::of(&y[range.clone()], &pred[range.clone()]);
        per_benchmark.push((name.clone(), range.len(), acc));
    }
    let excerpt: Vec<(f64, f64)> = y
        .iter()
        .zip(&pred)
        .take(2000)
        .map(|(a, b)| (*a, *b))
        .collect();
    let out = Fig9 {
        q: model.q(),
        overall,
        mean_truth: y.iter().sum::<f64>() / y.len() as f64,
        mean_pred: pred.iter().sum::<f64>() / pred.len() as f64,
        per_benchmark,
        excerpt,
    };
    outln!("\n== Figure 9: per-cycle evaluation (Q = {}) ==", out.q);
    outln!(
        "overall: R2 = {:.3}  NRMSE = {:.1}%  NMAE = {:.1}%   (paper: R2 0.95, NRMSE 9.4%)",
        out.overall.r2,
        100.0 * out.overall.nrmse,
        100.0 * out.overall.nmae
    );
    outln!(
        "mean power: truth {:.1} vs predicted {:.1} ({:+.2}%)",
        out.mean_truth,
        out.mean_pred,
        100.0 * (out.mean_pred - out.mean_truth) / out.mean_truth
    );
    for (name, cycles, acc) in &out.per_benchmark {
        outln!(
            "  {:<14} {:>5} cycles   NRMSE {:>5.1}%  NMAE {:>5.1}%",
            name,
            cycles,
            100.0 * acc.nrmse,
            100.0 * acc.nmae
        );
    }
    save_json("fig9_eval", &out);
    out
}

// ---------------------------------------------------------------------
// Figures 10 / 12: accuracy vs Q across methods
// ---------------------------------------------------------------------

/// One accuracy-vs-Q series.
#[derive(Debug, serde::Serialize)]
pub struct QSeries {
    /// Method name.
    pub method: String,
    /// (Q, accuracy) points.
    pub points: Vec<(usize, Accuracy)>,
}

/// Figure 10/12 data.
#[derive(Debug, serde::Serialize)]
pub struct Fig10 {
    /// Design name.
    pub design: String,
    /// Total signal bits M.
    pub m_bits: usize,
    /// Sweeping methods (APOLLO, Lasso, Simmani).
    pub series: Vec<QSeries>,
    /// PRIMAL-NN horizontal line (uses all signals).
    pub primal: Accuracy,
    /// PCA horizontal line (uses all signals).
    pub pca: Accuracy,
}

/// Runs the accuracy-vs-Q sweep on a pipeline.
pub fn fig10(p: &Pipeline, q_targets: &[usize], label: &str) -> Fig10 {
    let test = p.test_trace();
    let y = test.labels();
    let fs = p.feature_space();

    let mut series = Vec::new();
    for (name, penalty) in [
        ("APOLLO (MCP)", SelectionPenalty::Mcp { gamma: 10.0 }),
        ("Lasso [53]", SelectionPenalty::Lasso),
    ] {
        progress(&format!("fig10[{label}]: sweeping {name}"));
        let models = train_per_cycle_multi(
            p.train_trace(),
            p.ctx.netlist(),
            fs,
            q_targets,
            &TrainOptions {
                penalty,
                ..TrainOptions::default()
            },
        );
        let points = models
            .iter()
            .map(|m| {
                let pred = m.model.predict_full(&test.toggles);
                (m.model.q(), Accuracy::of(&y, &pred))
            })
            .collect();
        series.push(QSeries {
            method: name.into(),
            points,
        });
    }

    // Simmani sweep.
    progress(&format!("fig10[{label}]: sweeping Simmani"));
    let mut simmani_points = Vec::new();
    for &q in q_targets {
        let model = train_simmani(
            p.train_trace(),
            fs,
            &SimmaniOptions {
                q,
                pair_terms: (3 * q).min(1200),
                ..SimmaniOptions::default()
            },
        );
        let pred = model.predict(&test.toggles);
        simmani_points.push((model.q(), Accuracy::of(&y, &pred)));
    }
    series.push(QSeries {
        method: "Simmani [40]".into(),
        points: simmani_points,
    });

    progress(&format!("fig10[{label}]: PRIMAL-NN"));
    let primal_model = train_primal(
        p.train_trace(),
        fs,
        &PrimalOptions {
            hash_dim: 256,
            mlp: MlpOptions {
                hidden: vec![64, 32],
                epochs: 10,
                ..MlpOptions::default()
            },
            ..PrimalOptions::default()
        },
    );
    let primal_pred = primal_model.predict(&test.toggles, &fs.reps);
    let primal = Accuracy::of(&y, &primal_pred);

    progress(&format!("fig10[{label}]: PCA"));
    let pca_model = train_pca(p.train_trace(), fs, 256, 64, 0xCAFE);
    let test_design = TraceDesign::new(&test.toggles, &fs.reps);
    let pca_pred = pca_model.predict(&test_design);
    let pca = Accuracy::of(&y, &pca_pred);

    let out = Fig10 {
        design: p.ctx.netlist().design_name().to_owned(),
        m_bits: p.ctx.m_bits(),
        series,
        primal,
        pca,
    };
    outln!(
        "\n== Figure {label}: accuracy vs Q on `{}` (M = {}) ==",
        out.design,
        out.m_bits
    );
    for s in &out.series {
        outln!("  {}:", s.method);
        for (q, acc) in &s.points {
            outln!(
                "    Q = {:>4}  NRMSE = {:>5.1}%   R2 = {:.3}",
                q,
                100.0 * acc.nrmse,
                acc.r2
            );
        }
    }
    outln!(
        "  PRIMAL-NN (all {} signals): NRMSE = {:.1}%  R2 = {:.3}",
        out.m_bits,
        100.0 * out.primal.nrmse,
        out.primal.r2
    );
    outln!(
        "  PCA       (all {} signals): NRMSE = {:.1}%  R2 = {:.3}",
        out.m_bits,
        100.0 * out.pca.nrmse,
        out.pca.r2
    );
    save_json(&format!("fig{label}_accuracy_vs_q"), &out);
    out
}

// ---------------------------------------------------------------------
// Figure 11: multi-cycle models
// ---------------------------------------------------------------------

/// Figure 11 data: NRMSE vs window size T for each approach.
#[derive(Debug, serde::Serialize)]
pub struct Fig11 {
    /// Window sizes.
    pub ts: Vec<usize>,
    /// Per-cycle APOLLO predictions averaged over T.
    pub apollo_avg: Vec<f64>,
    /// APOLLOτ with fixed τ = 8 (Eq. 9 inference).
    pub apollo_tau8: Vec<f64>,
    /// APOLLOτ trained with τ = T (input averaging).
    pub tau_eq_t: Vec<f64>,
    /// Simmani multi-cycle baseline.
    pub simmani: Vec<f64>,
    /// Q used by the APOLLO variants.
    pub q_apollo: usize,
    /// Q used by Simmani.
    pub q_simmani: usize,
}

/// Runs the Figure 11 experiment.
pub fn fig11(p: &Pipeline, q_apollo: usize, q_simmani: usize) -> Fig11 {
    let ts = vec![4usize, 8, 16, 32, 64];
    let fs = p.feature_space();
    let test = p.test_trace();
    let labels = test.labels();
    let opts = TrainOptions {
        q_target: q_apollo,
        ..TrainOptions::default()
    };

    progress("fig11: per-cycle model for averaging");
    let per_cycle = p
        .model(q_apollo, SelectionPenalty::Mcp { gamma: 10.0 })
        .model;
    let per_cycle_pred = per_cycle.predict_full(&test.toggles);

    progress("fig11: APOLLO-tau (tau = 8)");
    let tau8 = train_tau(p.train_trace(), p.ctx.netlist(), fs, 8, &opts);

    progress("fig11: Simmani base model");
    let simmani_base = train_simmani(
        p.train_trace(),
        fs,
        &SimmaniOptions {
            q: q_simmani,
            pair_terms: (3 * q_simmani).min(1200),
            ..SimmaniOptions::default()
        },
    );

    let mut apollo_avg = Vec::new();
    let mut apollo_tau8 = Vec::new();
    let mut tau_eq_t = Vec::new();
    let mut simmani = Vec::new();
    for &t in &ts {
        let avg = window_average(&per_cycle_pred, t);
        apollo_avg.push(window_nrmse(&avg, &labels, t));

        let tau_pred = tau8.predict_windows(&test.toggles, t);
        apollo_tau8.push(window_nrmse(&tau_pred, &labels, t));

        progress(&format!("fig11: APOLLO-tau (tau = T = {t})"));
        let tau_t = train_tau(p.train_trace(), p.ctx.netlist(), fs, t, &opts);
        let tt_pred = tau_t.predict_windows(&test.toggles, t);
        tau_eq_t.push(window_nrmse(&tt_pred, &labels, t));

        let sw = train_simmani_window(p.train_trace(), &simmani_base, t, 1.0);
        let sw_pred = sw.predict_windows(&test.toggles);
        simmani.push(window_nrmse(&sw_pred, &labels, t));
    }

    let out = Fig11 {
        ts: ts.clone(),
        apollo_avg,
        apollo_tau8,
        tau_eq_t,
        simmani,
        q_apollo,
        q_simmani,
    };
    outln!(
        "\n== Figure 11: multi-cycle NRMSE vs T (APOLLO Q = {q_apollo}, Simmani Q = {q_simmani}) =="
    );
    outln!("  T     APOLLO-avg  APOLLOtau8  tau=T       Simmani");
    for (i, t) in ts.iter().enumerate() {
        outln!(
            "  {:<5} {:>8.1}%  {:>8.1}%  {:>8.1}%  {:>8.1}%",
            t,
            100.0 * out.apollo_avg[i],
            100.0 * out.apollo_tau8[i],
            100.0 * out.tau_eq_t[i],
            100.0 * out.simmani[i]
        );
    }
    save_json("fig11_multicycle", &out);
    out
}

// ---------------------------------------------------------------------
// Figures 13 / 14: weight mass and VIF
// ---------------------------------------------------------------------

/// Figures 13 and 14 data.
#[derive(Debug, serde::Serialize)]
pub struct Fig13_14 {
    /// Q at which the comparison was made.
    pub q: usize,
    /// Σ|w| of the final MCP model.
    pub weight_l1_mcp: f64,
    /// Σ|w| of the final Lasso model.
    pub weight_l1_lasso: f64,
    /// Σ|w̃| of the MCP selection stage (pre-relaxation).
    pub selection_l1_mcp: f64,
    /// Σ|w̃| of the Lasso selection stage.
    pub selection_l1_lasso: f64,
    /// Mean VIF of the MCP proxies.
    pub vif_mcp: f64,
    /// Mean VIF of the Lasso proxies.
    pub vif_lasso: f64,
    /// Mean VIF of the Simmani proxies.
    pub vif_simmani: f64,
}

/// Runs the weight-mass and VIF comparisons.
pub fn fig13_14(p: &Pipeline, q: usize) -> Fig13_14 {
    let mcp = p.model(q, SelectionPenalty::Mcp { gamma: 10.0 });
    let lasso = p.model(q, SelectionPenalty::Lasso);
    progress("fig14: Simmani proxies for VIF");
    let simmani = train_simmani(
        p.train_trace(),
        p.feature_space(),
        &SimmaniOptions {
            q,
            pair_terms: 1,
            ..SimmaniOptions::default()
        },
    );
    let matrix = &p.train_trace().toggles;
    let vif_of_bits = |bits: &[usize]| {
        let design = TraceDesign::new(matrix, bits);
        let cols: Vec<usize> = (0..bits.len()).collect();
        mean_vif(&design, &cols, 1e4)
    };
    progress("fig14: computing VIFs");
    let out = Fig13_14 {
        q,
        weight_l1_mcp: mcp.model.weight_l1(),
        weight_l1_lasso: lasso.model.weight_l1(),
        selection_l1_mcp: mcp.selection.weight_l1(),
        selection_l1_lasso: lasso.selection.weight_l1(),
        vif_mcp: vif_of_bits(&mcp.model.bits()),
        vif_lasso: vif_of_bits(&lasso.model.bits()),
        vif_simmani: vif_of_bits(&simmani.base_bits),
    };
    outln!("\n== Figure 13: sum of absolute weights (Q = {q}) ==");
    outln!(
        "  selection stage: MCP {:.1} vs Lasso {:.1}  (paper: MCP larger)",
        out.selection_l1_mcp,
        out.selection_l1_lasso
    );
    outln!(
        "  final models:    MCP {:.1} vs Lasso {:.1}",
        out.weight_l1_mcp,
        out.weight_l1_lasso
    );
    outln!("\n== Figure 14: mean variance inflation factors ==");
    outln!(
        "  APOLLO {:.2}   Lasso {:.2}   Simmani {:.2}   (paper: APOLLO and Simmani low, Lasso high)",
        out.vif_mcp, out.vif_lasso, out.vif_simmani
    );
    save_json("fig13_14_weights_vif", &out);
    out
}

// ---------------------------------------------------------------------
// Figure 15(a): proxy distribution
// ---------------------------------------------------------------------

/// Runs the proxy-distribution report.
pub fn fig15a(p: &Pipeline) -> BTreeMap<String, usize> {
    let model = p.main_model();
    let dist = apollo_core::report::proxy_distribution(&model);
    outln!(
        "\n== Figure 15(a): distribution of the {} proxies ==",
        model.q()
    );
    for (unit, count) in &dist {
        outln!("  {:<18} {:>4}", unit, count);
    }
    save_json("fig15a_distribution", &dist);
    dist
}

// ---------------------------------------------------------------------
// Figure 15(b) + Table 1 + §7.5: OPM cost/accuracy trade-off
// ---------------------------------------------------------------------

/// One point of the OPM trade-off grid.
#[derive(Debug, serde::Serialize)]
pub struct OpmPoint {
    /// Proxy count.
    pub q: usize,
    /// Weight bits.
    pub b: u8,
    /// Area overhead vs host CPU.
    pub area_overhead: f64,
    /// Test NRMSE of the quantized hardware model.
    pub nrmse: f64,
    /// NRMSE increase over the float model.
    pub nrmse_loss_vs_float: f64,
}

/// Figure 15(b) data.
#[derive(Debug, serde::Serialize)]
pub struct Fig15b {
    /// The grid.
    pub points: Vec<OpmPoint>,
    /// Measured power overhead of the headline OPM (Q = main, B = 10).
    pub headline_power_overhead: f64,
    /// Headline area overhead.
    pub headline_area_overhead: f64,
}

/// Runs the OPM trade-off sweep.
pub fn fig15b(p: &Pipeline, qs: &[usize], bs: &[u8]) -> Fig15b {
    let test = p.test_trace();
    let y = test.labels();
    let mut points = Vec::new();
    for &q in qs {
        let trained = p.model(q, SelectionPenalty::Mcp { gamma: 10.0 });
        let float_pred = trained.model.predict_full(&test.toggles);
        let float_nrmse = metrics::nrmse(&y, &float_pred);
        for &b in bs {
            let quant = QuantizedOpm::from_model(&trained.model, b, 1).expect("quantization");
            let pred = quant.predict_cycles(&test.toggles);
            let nrmse = metrics::nrmse(&y, &pred);
            let hw = build_opm(&quant).expect("build_opm");
            let report = AreaReport::from_areas(&hw, p.ctx.netlist());
            points.push(OpmPoint {
                q: trained.model.q(),
                b,
                area_overhead: report.area_overhead,
                nrmse,
                nrmse_loss_vs_float: nrmse - float_nrmse,
            });
        }
    }

    // Headline OPM power overhead: co-simulate the generated OPM over a
    // proxy trace of one benchmark and compare against CPU power.
    progress("fig15b: headline OPM power co-simulation");
    let model = p.main_model();
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    let hw = build_opm(&quant).expect("build_opm");
    let bench = apollo_cpu::benchmarks::maxpwr_cpu();
    let proxy_trace = p.ctx.capture_bits(&bench, &model.bits(), 512, p.cfg.warmup);
    let cosim = hw.cosim(&proxy_trace.toggles);
    let cpu_power = proxy_trace.mean_power();
    let report = AreaReport::from_areas(&hw, p.ctx.netlist()).with_power(
        cosim.mean_power.total,
        cpu_power,
        0.004,
    );

    let out = Fig15b {
        points,
        headline_power_overhead: report.power_overhead.unwrap(),
        headline_area_overhead: report.area_overhead,
    };
    outln!("\n== Figure 15(b): OPM area vs accuracy trade-off ==");
    outln!("  Q      B    area overhead   NRMSE    quantization loss");
    for pt in &out.points {
        outln!(
            "  {:>4}  {:>2}   {:>8.3}%      {:>5.1}%   {:+.2}%",
            pt.q,
            pt.b,
            100.0 * pt.area_overhead,
            100.0 * pt.nrmse,
            100.0 * pt.nrmse_loss_vs_float
        );
    }
    outln!(
        "headline OPM (B = 10): area {:.2}% of host, power {:.2}% of host (paper on N1-scale host: 0.2% / 0.9%)",
        100.0 * out.headline_area_overhead,
        100.0 * out.headline_power_overhead
    );
    save_json("fig15b_opm_tradeoff", &out);
    out
}

// ---------------------------------------------------------------------
// Figure 16 + §8.1: emulator-assisted long-trace flow
// ---------------------------------------------------------------------

/// Figure 16 data.
#[derive(Debug, serde::Serialize)]
pub struct Fig16 {
    /// Cycles replayed.
    pub cycles: usize,
    /// Proxy-trace bytes.
    pub proxy_bytes: usize,
    /// Full-dump bytes.
    pub full_bytes: usize,
    /// Reduction factor.
    pub reduction: f64,
    /// Inference throughput (cycles/second).
    pub inference_cps: f64,
    /// Extrapolated seconds per billion cycles.
    pub sec_per_billion: f64,
    /// Accuracy of the inferred trace against ground truth.
    pub accuracy: Accuracy,
    /// A window excerpt of (truth, prediction), decimated.
    pub excerpt: Vec<(f64, f64)>,
}

/// Runs the emulator-assisted flow on a long workload.
pub fn fig16(p: &Pipeline, cycles: usize) -> Fig16 {
    let model = p.main_model();
    let phases = (cycles / 2500).clamp(2, 600) as u16;
    let bench = apollo_cpu::benchmarks::hmmer_like(&p.ctx.handles.config, phases);
    progress(&format!("fig16: emulator flow over {cycles} cycles"));
    let report = run_emulator_flow(&p.ctx, &model, &bench, cycles, p.cfg.warmup);
    let acc = Accuracy::of(&report.ground_truth, &report.power_trace);
    let step = (cycles / 4000).max(1);
    let excerpt = report
        .ground_truth
        .iter()
        .zip(&report.power_trace)
        .step_by(step)
        .map(|(a, b)| (*a, *b))
        .collect();
    let out = Fig16 {
        cycles: report.cycles,
        proxy_bytes: report.proxy_trace_bytes,
        full_bytes: report.full_trace_bytes,
        reduction: report.reduction_factor(),
        inference_cps: report.inference_cycles_per_second(),
        sec_per_billion: report.seconds_per_billion_cycles(),
        accuracy: acc,
        excerpt,
    };
    outln!("\n== Figure 16 / §8.1: emulator-assisted power introspection ==");
    outln!(
        "  {} cycles: proxy trace {:.2} MiB vs full dump {:.2} MiB ({:.0}x reduction)",
        out.cycles,
        out.proxy_bytes as f64 / (1 << 20) as f64,
        out.full_bytes as f64 / (1 << 20) as f64,
        out.reduction
    );
    outln!(
        "  inference: {:.1} Mcycles/s -> {:.0} s per billion cycles (paper: ~1 minute)",
        out.inference_cps / 1e6,
        out.sec_per_billion
    );
    outln!(
        "  trace accuracy: R2 = {:.3}, NRMSE = {:.1}%",
        out.accuracy.r2,
        100.0 * out.accuracy.nrmse
    );
    save_json("fig16_emulator_flow", &out);
    out
}

// ---------------------------------------------------------------------
// Figure 17 + §8.2: ΔI / droop
// ---------------------------------------------------------------------

/// Figure 17 data.
#[derive(Debug, serde::Serialize)]
pub struct Fig17 {
    /// ΔI agreement between the quantized OPM and ground truth.
    pub analysis: DroopAnalysis,
    /// Mitigation experiment report.
    pub mitigation: apollo_opm::droop::MitigationReport,
}

/// Runs the droop experiments with the hardware-quantized OPM.
pub fn fig17(p: &Pipeline) -> Fig17 {
    let model = p.main_model();
    let quant = QuantizedOpm::from_model(&model, 10, 1).expect("quantization");
    let test = p.test_trace();
    let est = quant.predict_cycles(&test.toggles);
    let truth = test.labels();
    let analysis = DroopAnalysis::analyze(&est, &truth, 0.95);
    let pdn = PdnModel::default();
    let mitigation = mitigate(&pdn, &est, &truth, 0.12, 0.03, 10, 0.93);
    let out = Fig17 {
        analysis,
        mitigation,
    };
    outln!("\n== Figure 17 / §8.2: per-cycle ΔI for droop prediction ==");
    outln!(
        "  Pearson(ΔI_opm, ΔI_truth) = {:.3}   (paper: 0.946)",
        out.analysis.pearson
    );
    outln!(
        "  deep-droop precursor recall {:.0}%, overshoot recall {:.0}% (at the {:.0}% tails)",
        100.0 * out.analysis.droop_recall,
        100.0 * out.analysis.overshoot_recall,
        100.0 * (1.0 - out.analysis.tail_quantile)
    );
    outln!(
        "  mitigation: Vmin {:.3} -> {:.3}, violations {} -> {} ({} throttled cycles)",
        out.mitigation.vmin_baseline,
        out.mitigation.vmin_mitigated,
        out.mitigation.violations_baseline,
        out.mitigation.violations_mitigated,
        out.mitigation.throttled_cycles
    );
    outln!(
        "  guardband: {:.3} V -> {:.3} V ({:.0}% margin reduction; the paper's future-work metric)",
        out.mitigation.margin_baseline(1.0),
        out.mitigation.margin_mitigated(1.0),
        100.0 * out.mitigation.margin_reduction(1.0)
    );
    save_json("fig17_droop", &out);
    out
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Prints Table 1's quantitative APOLLO row (the rest of Table 1 is a
/// literature survey reproduced in EXPERIMENTS.md).
pub fn table1(p: &Pipeline) -> AreaReport {
    let model = p.main_model();
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    let hw = build_opm(&quant).expect("build_opm");
    let report = AreaReport::from_areas(&hw, p.ctx.netlist());
    outln!("\n== Table 1 (APOLLO row): design-time model + runtime monitor ==");
    outln!(
        "  proxies: Q = {} ({:.4}% of M = {})",
        model.q(),
        100.0 * model.monitored_fraction(),
        model.m_bits
    );
    outln!(
        "  per-cycle resolution, automatic selection, area overhead {:.2}% of host",
        100.0 * report.area_overhead
    );
    save_json("table1_apollo_row", &report);
    report
}

/// Prints Table 3 plus the generated-hardware verification row.
pub fn table3(p: &Pipeline) -> Vec<MonitorStructure> {
    let model = p.main_model();
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    let hw = build_opm(&quant).expect("build_opm");
    let mut rows = opm_table3(p.ctx.m_bits(), model.q());
    rows.push(verify_apollo_structure(&hw));
    outln!("\n== Table 3: hardware structures (Q = {}) ==", model.q());
    for r in &rows {
        outln!("  {r}");
    }
    save_json("table3_structures", &rows);
    rows
}

/// Prints Table 4 (the testing suite actually used, with windows).
pub fn table4(p: &Pipeline) -> Vec<(String, usize)> {
    let suite = p.ctx.test_suite(p.cfg.test_scale);
    let rows: Vec<(String, usize)> = suite.iter().map(|(b, c)| (b.name.clone(), *c)).collect();
    outln!("\n== Table 4: designer-handcrafted testing benchmarks ==");
    for row in rows.chunks(4) {
        let names: Vec<String> = row.iter().map(|(n, c)| format!("{n} ({c})")).collect();
        outln!("  {}", names.join("   "));
    }
    save_json("table4_benchmarks", &rows);
    rows
}

/// Prints Table 5 (method matrix — static by construction).
pub fn table5() {
    outln!("\n== Table 5: baseline methods ==");
    outln!("  method        selection      pre-processing   model");
    outln!("  Simmani [40]  K-means        polynomial       elastic net");
    outln!("  PRIMAL [79]   (none: all M)  (none)           neural network");
    outln!("  PCA [79]      (none: all M)  PCA projection   linear");
    outln!("  Lasso [53]    Lasso          (none)           linear");
    outln!("  APOLLO        MCP            (none)           ridge-relaxed linear");
}

/// §8.1 inference-cost table with measured APOLLO throughput.
pub fn speed(p: &Pipeline) -> Vec<apollo_core::report::InferenceCost> {
    let model = p.main_model();
    let costs = apollo_core::report::inference_costs(p.ctx.m_bits(), model.q(), 256, &[64, 32], 64);
    outln!("\n== §8.1: inference cost per cycle ==");
    for c in &costs {
        outln!(
            "  {:<14} observes {:>7} signals, {:>12.0} ops/cycle",
            c.method,
            c.signals_observed,
            c.ops_per_cycle
        );
    }
    save_json("speed_costs", &costs);
    costs
}

// ---------------------------------------------------------------------
// Ablations of APOLLO's design choices (DESIGN.md per-experiment index)
// ---------------------------------------------------------------------

/// One ablation row.
#[derive(Debug, serde::Serialize)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Selected Q.
    pub q: usize,
    /// Test accuracy.
    pub accuracy: Accuracy,
}

/// Ablation study: how much each ingredient of the recipe contributes.
#[derive(Debug, serde::Serialize)]
pub struct Ablation {
    /// Rows, first is the reference configuration.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation sweep at proxy budget `q`.
pub fn ablation(p: &Pipeline, q: usize) -> Ablation {
    use apollo_core::train_per_cycle;
    let test = p.test_trace();
    let y = test.labels();
    let fs = p.feature_space();
    let mut rows = Vec::new();

    let eval_model =
        |m: &apollo_core::ApolloModel| Accuracy::of(&y, &m.predict_full(&test.toggles));

    // Reference: MCP gamma=10 + nonneg + ridge relaxation.
    let reference = p.model(q, SelectionPenalty::Mcp { gamma: 10.0 });
    rows.push(AblationRow {
        variant: "APOLLO (MCP γ=10, nonneg, relaxed)".into(),
        q: reference.model.q(),
        accuracy: eval_model(&reference.model),
    });

    // No relaxation: use the selection-stage weights directly.
    {
        let design = TraceDesign::new(&p.train_trace().toggles, &fs.reps);
        let sel = &reference.selection;
        let mut model = reference.model.clone();
        // Map selection weights (already in raw feature space) onto
        // proxies.
        for (proxy, &(col, w)) in model.proxies.iter_mut().zip(sel.active.iter()) {
            let bit = design.bit_of(col);
            assert_eq!(proxy.bit, bit, "selection/proxy order must agree");
            proxy.weight = w;
        }
        model.intercept = sel.intercept;
        rows.push(AblationRow {
            variant: "no relaxation (selection-stage weights)".into(),
            q: model.q(),
            accuracy: eval_model(&model),
        });
    }

    // Gamma sweep.
    for gamma in [2.0, 5.0, 50.0] {
        progress(&format!("ablation: gamma {gamma}"));
        let trained = train_per_cycle(
            p.train_trace(),
            p.ctx.netlist(),
            fs,
            &TrainOptions {
                q_target: q,
                penalty: SelectionPenalty::Mcp { gamma },
                ..TrainOptions::default()
            },
        );
        rows.push(AblationRow {
            variant: format!("MCP γ = {gamma}"),
            q: trained.model.q(),
            accuracy: eval_model(&trained.model),
        });
    }

    // Unconstrained weights (allow negative).
    {
        progress("ablation: signed weights");
        let trained = train_per_cycle(
            p.train_trace(),
            p.ctx.netlist(),
            fs,
            &TrainOptions {
                q_target: q,
                nonnegative: false,
                ..TrainOptions::default()
            },
        );
        rows.push(AblationRow {
            variant: "signed weights (no nonnegativity)".into(),
            q: trained.model.q(),
            accuracy: eval_model(&trained.model),
        });
    }

    // Nonlinear head: gradient-boosted trees over the selected proxies
    // (does nonlinearity on top of good proxies buy anything?).
    {
        progress("ablation: GBT head over APOLLO proxies");
        let bits = reference.model.bits();
        let n = p.train_trace().n_cycles();
        let d = bits.len();
        let to_rows = |trace: &apollo_sim::TraceData| {
            let mut rowsx = vec![0.0f64; trace.n_cycles() * d];
            for (k, &bit) in bits.iter().enumerate() {
                for c in 0..trace.n_cycles() {
                    if trace.toggles.get(bit, c) {
                        rowsx[c * d + k] = 1.0;
                    }
                }
            }
            rowsx
        };
        let xtrain = to_rows(p.train_trace());
        let ytrain = p.train_trace().labels();
        let gbt = apollo_mlkit::Gbt::fit(
            &xtrain,
            n,
            d,
            &ytrain,
            &apollo_mlkit::GbtOptions {
                rounds: 60,
                ..apollo_mlkit::GbtOptions::default()
            },
        );
        let xtest = to_rows(test);
        let pred = gbt.predict(&xtest, test.n_cycles());
        rows.push(AblationRow {
            variant: "GBT head over APOLLO proxies [44]".into(),
            q: d,
            accuracy: Accuracy::of(&y, &pred),
        });
    }

    let out = Ablation { rows };
    outln!("\n== Ablation of APOLLO's design choices (Q target = {q}) ==");
    for r in &out.rows {
        outln!(
            "  {:<44} Q = {:>4}  NRMSE = {:>5.1}%  R2 = {:.3}",
            r.variant,
            r.q,
            100.0 * r.accuracy.nrmse,
            r.accuracy.r2
        );
    }
    save_json("ablation", &out);
    out
}
