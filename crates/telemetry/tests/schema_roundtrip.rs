//! JSONL schema round-trip and exposition-format tests.
//!
//! These tests share process-global telemetry state (registry, sink),
//! so every test that touches it serializes on `GLOBAL`.

use apollo_telemetry::{
    counter, gauge, histogram, prometheus_text, reset_metrics, snapshot, validate_line, Event,
    FieldValue, Record, RecordBody, SCHEMA_VERSION,
};
use std::sync::{Arc, Mutex};

static GLOBAL: Mutex<()> = Mutex::new(());

fn sample_records() -> Vec<Record> {
    vec![
        Record {
            v: SCHEMA_VERSION,
            seq: 0,
            ts_ns: 12,
            trace_id: 0x1234_5678_9abc,
            span_id: 0,
            parent_id: 0xfeed_beef_0001,
            body: RecordBody::Event(Event {
                name: "ga.generation".into(),
                fields: vec![
                    ("gen".into(), FieldValue::U64(3)),
                    ("best".into(), FieldValue::F64(0.6180339887498949)),
                    ("delta".into(), FieldValue::I64(-7)),
                    ("bench".into(), FieldValue::Str("maxpwr".into())),
                    ("elite".into(), FieldValue::Bool(true)),
                ],
            }),
        },
        Record {
            v: SCHEMA_VERSION,
            seq: 1,
            ts_ns: 99,
            trace_id: 0x1234_5678_9abc,
            span_id: 0xfeed_beef_0002,
            parent_id: 0xfeed_beef_0001,
            body: RecordBody::Span {
                path: "core.capture_suite/bench:dhry".into(),
                dur_ns: 1234,
            },
        },
        Record {
            v: SCHEMA_VERSION,
            seq: 2,
            ts_ns: 100,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            body: RecordBody::Message {
                level: "info".into(),
                text: "design ready".into(),
            },
        },
    ]
}

#[test]
fn every_body_variant_round_trips_exactly() {
    for rec in sample_records() {
        let line = rec.to_jsonl();
        assert!(
            !line.contains('\n'),
            "JSONL lines must be single-line: {line}"
        );
        let back = validate_line(&line).expect("valid line");
        assert_eq!(back, rec);
    }
}

#[test]
fn float_payloads_survive_shortest_repr() {
    // Irrational-ish doubles must survive serialize → parse bit-exactly
    // (the writer uses Rust's shortest round-trippable rendering).
    for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
        let rec = Record {
            v: SCHEMA_VERSION,
            seq: 0,
            ts_ns: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            body: RecordBody::Event(Event {
                name: "t".into(),
                fields: vec![("x".into(), FieldValue::F64(f))],
            }),
        };
        let back = validate_line(&rec.to_jsonl()).unwrap();
        match back.body {
            RecordBody::Event(ev) => match ev.fields[0].1 {
                FieldValue::F64(g) => assert_eq!(g.to_bits(), f.to_bits()),
                ref other => panic!("wrong field type: {other:?}"),
            },
            other => panic!("wrong body: {other:?}"),
        }
    }
}

#[test]
fn validate_rejects_bad_lines() {
    assert!(validate_line("not json").is_err());
    assert!(validate_line("{}").is_err());
    // Wrong schema version.
    let mut rec = sample_records().remove(0);
    rec.v = SCHEMA_VERSION + 1;
    assert!(validate_line(&rec.to_jsonl())
        .unwrap_err()
        .contains("schema version"));
    // Non-finite floats cannot round-trip through JSON.
    let nan = Record {
        v: SCHEMA_VERSION,
        seq: 0,
        ts_ns: 0,
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
        body: RecordBody::Event(Event {
            name: "t".into(),
            fields: vec![("x".into(), FieldValue::F64(f64::NAN))],
        }),
    };
    assert!(validate_line(&nan.to_jsonl()).is_err());
    // Ids above the 48-bit space are rejected (f64-safety contract).
    let mut wide = sample_records().remove(0);
    wide.trace_id = 1 << 48;
    assert!(validate_line(&wide.to_jsonl())
        .unwrap_err()
        .contains("48-bit"));
    // Span/parent ids without a trace are rejected.
    let mut orphan = sample_records().remove(2);
    orphan.parent_id = 7;
    assert!(validate_line(&orphan.to_jsonl())
        .unwrap_err()
        .contains("without a trace_id"));
}

#[test]
fn strip_timing_zeroes_only_clock_fields() {
    for rec in sample_records() {
        let stripped = rec.strip_timing();
        assert_eq!(stripped.ts_ns, 0);
        assert_eq!(stripped.seq, rec.seq);
        // The causal id triple is deterministic data, not timing.
        assert_eq!(
            (stripped.trace_id, stripped.span_id, stripped.parent_id),
            (rec.trace_id, rec.span_id, rec.parent_id)
        );
        match (&stripped.body, &rec.body) {
            (RecordBody::Span { dur_ns, path }, RecordBody::Span { path: p0, .. }) => {
                assert_eq!(*dur_ns, 0);
                assert_eq!(path, p0);
            }
            (a, b) => assert_eq!(a, b),
        }
    }
}

#[test]
fn jsonl_sink_writes_validatable_lines() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("apollo-telemetry-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let sink = apollo_telemetry::JsonlSink::create(&path).unwrap();
    apollo_telemetry::install_sink(Arc::new(sink));
    apollo_telemetry::emit_event("unit.test", &[("k", FieldValue::U64(7))]);
    apollo_telemetry::emit_span("unit.phase", 42);
    {
        let _span = apollo_telemetry::span("outer");
        let _inner = apollo_telemetry::span("inner");
    }
    apollo_telemetry::clear_sink();
    let text = std::fs::read_to_string(&path).unwrap();
    let recs: Vec<Record> = text
        .lines()
        .map(|l| validate_line(l).expect("schema-valid line"))
        .collect();
    // seq is dense and in file order.
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }
    assert_eq!(recs.len(), 4);
    // Nested guard closes before its parent, with the full path.
    match (&recs[2].body, &recs[3].body) {
        (RecordBody::Span { path: inner, .. }, RecordBody::Span { path: outer, .. }) => {
            assert_eq!(inner, "outer/inner");
            assert_eq!(outer, "outer");
        }
        other => panic!("expected span records, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_context_stamps_records_deterministically() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        let sink = Arc::new(apollo_telemetry::VecSink::new());
        apollo_telemetry::install_sink(sink.clone());
        let root = apollo_telemetry::TraceCtx::root(apollo_telemetry::intern("pipe"), 0);
        {
            let _ctx = apollo_telemetry::enter(root);
            let _outer = apollo_telemetry::span("outer");
            apollo_telemetry::emit_event("unit.test", &[("k", FieldValue::U64(1))]);
            let _inner = apollo_telemetry::span("inner");
        }
        apollo_telemetry::clear_sink();
        sink.take()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 3, "event + two span closes");
    // Every record belongs to the root trace.
    assert!(a.iter().all(|r| r.trace_id == a[0].trace_id));
    // The event's parent is the outer span, which in turn closes with
    // the root context's span as parent.
    let (event, inner, outer) = (&a[0], &a[1], &a[2]);
    assert!(matches!(event.body, RecordBody::Event(_)));
    assert_eq!(event.span_id, 0, "events are points, not spans");
    assert_eq!(event.parent_id, outer.span_id);
    assert_eq!(inner.parent_id, outer.span_id);
    assert_ne!(inner.span_id, outer.span_id);
    // Byte-identical across sink reinstalls: pure derivation.
    let strip = |v: &[Record]| v.iter().map(Record::strip_timing).collect::<Vec<_>>();
    assert_eq!(strip(&a), strip(&b));
    // And every line passes full schema validation (48-bit ids etc.).
    for r in &a {
        validate_line(&r.to_jsonl()).unwrap();
    }
}

#[test]
fn metrics_snapshot_and_exposition() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    reset_metrics();
    counter("unit.cycles").add(41);
    counter("unit.cycles").inc();
    counter("unit.busy_ns").add(999); // timing: must be filtered
    gauge("unit.spread").set(2.5);
    let h = histogram("unit.shards");
    h.observe(0);
    h.observe(1);
    h.observe(5);
    let snap = snapshot();
    let cycles = snap
        .counters
        .iter()
        .find(|c| c.name == "unit.cycles")
        .unwrap();
    assert_eq!(cycles.value, 42);
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "unit.shards")
        .unwrap();
    assert_eq!((hs.count, hs.sum), (3, 6));
    // 0 → bucket 0, 1 → bucket 1, 5 (3 bits) → bucket 3.
    assert_eq!(hs.buckets, vec![1, 1, 0, 1]);

    let filtered = snap.without_timing();
    assert!(filtered.counters.iter().all(|c| !c.name.ends_with("_ns")));
    assert!(filtered.counters.iter().any(|c| c.name == "unit.cycles"));

    let text = prometheus_text(&snap);
    assert!(text.contains("# TYPE unit_cycles counter"));
    assert!(text.contains("unit_cycles 42"));
    assert!(text.contains("unit_spread 2.5"));
    assert!(text.contains("unit_shards_count 3"));
    assert!(text.contains("unit_shards_bucket{le=\"+Inf\"} 3"));
    reset_metrics();
}
