//! Named counters, gauges, and histograms.
//!
//! Handles are `&'static` references interned in a global registry, so
//! instrumented code looks a metric up once (e.g. in a constructor or
//! a `LazyLock`) and afterwards touches only its atomic.
//!
//! **Naming convention:** metrics holding wall-clock data end in
//! `_ns`. [`MetricsSnapshot::without_timing`] drops them, leaving only
//! values required to be bit-identical across thread counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// Monotonically increasing counter (relaxed `AtomicU64`).
///
/// `fetch_add` is commutative, so totals are deterministic even when
/// bumped from parallel workers in arbitrary order.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
///
/// Deterministic only when set from serial code; parallel writers
/// would race on the final value, so instrumented crates set gauges
/// exclusively from coordinator threads.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// with bit length `i` (0, 1, 2–3, 4–7, …), so 65 covers all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Power-of-two-bucketed histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: LazyLock<Mutex<BTreeMap<String, Metric>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

fn intern<T, F: FnOnce() -> (&'static T, Metric)>(
    name: &str,
    make: F,
    pick: fn(&Metric) -> Option<&'static T>,
) -> &'static T {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(m) = reg.get(name) {
        return pick(m)
            .unwrap_or_else(|| panic!("metric `{name}` already registered with a different type"));
    }
    let (handle, metric) = make();
    reg.insert(name.to_owned(), metric);
    handle
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> &'static Counter {
    intern(
        name,
        || {
            let c: &'static Counter = Box::leak(Box::new(Counter::default()));
            (c, Metric::Counter(c))
        },
        |m| match m {
            Metric::Counter(c) => Some(c),
            _ => None,
        },
    )
}

/// Returns (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(
        name,
        || {
            let g: &'static Gauge = Box::leak(Box::new(Gauge::default()));
            (g, Metric::Gauge(g))
        },
        |m| match m {
            Metric::Gauge(g) => Some(g),
            _ => None,
        },
    )
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(
        name,
        || {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::default()));
            (h, Metric::Histogram(h))
        },
        |m| match m {
            Metric::Histogram(h) => Some(h),
            _ => None,
        },
    )
}

/// Zeroes every registered metric (tests; `reset` between profile
/// runs). Handles stay valid.
pub fn reset_metrics() {
    for m in REGISTRY.lock().unwrap().values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// A counter sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// A gauge sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// A histogram sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Per-bucket counts, trailing zero buckets trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Approximate quantile from the pow2 buckets: the upper bound of
    /// the bucket containing the `q`-th observation (`q` in `0..=1`).
    /// Returns `None` for an empty histogram. The answer is exact to
    /// within the bucket's power-of-two resolution — good enough for
    /// p50/p95/p99 dashboards without storing raw observations.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                // Bucket i counts values of bit length i: upper bound 2^i - 1.
                return Some(if i == 0 {
                    0
                } else {
                    ((1u128 << i) - 1).min(u64::MAX as u128) as u64
                });
            }
        }
        // Trailing buckets were trimmed: the rank falls in the last
        // non-empty bucket.
        Some(match self.buckets.len() {
            0 => 0,
            n => ((1u128 << n) - 1).min(u64::MAX as u128) as u64,
        })
    }
}

/// Point-in-time copy of every registered metric, name-sorted.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Copy with every `_ns`-suffixed (wall-clock) metric removed:
    /// what remains must be bit-identical across thread counts.
    pub fn without_timing(&self) -> MetricsSnapshot {
        let keep = |name: &String| !name.ends_with("_ns");
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|s| keep(&s.name))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|s| keep(&s.name))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|s| keep(&s.name))
                .cloned()
                .collect(),
        }
    }
}

/// Snapshots every registered metric (sorted by name — the registry is
/// a `BTreeMap`).
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap();
    let mut snap = MetricsSnapshot::default();
    for (name, m) in reg.iter() {
        match m {
            Metric::Counter(c) => snap.counters.push(CounterSample {
                name: name.clone(),
                value: c.get(),
            }),
            Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                name: name.clone(),
                value: g.get(),
            }),
            Metric::Histogram(h) => {
                let mut buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                snap.histograms.push(HistogramSample {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                })
            }
        }
    }
    snap
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders a snapshot in the Prometheus text exposition format
/// (counters as `counter`, gauges as `gauge`, histograms as
/// cumulative `_bucket{le=…}`/`_sum`/`_count` series).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let n = sanitize(&c.name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.value));
    }
    for g in &snap.gauges {
        let n = sanitize(&g.name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {:?}\n", g.value));
    }
    for h in &snap.histograms {
        let n = sanitize(&h.name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            cumulative += b;
            // Bucket i counts values of bit length i: upper bound 2^i - 1.
            let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
            h.count, h.sum, h.count
        ));
        // Approximate quantiles, computed at scrape time from the
        // pow2 buckets (exact to within a bucket's resolution) — the
        // hot observe() path is untouched.
        for (suffix, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
            if let Some(v) = h.quantile(q) {
                out.push_str(&format!("# TYPE {n}_{suffix} gauge\n{n}_{suffix} {v}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(buckets: &[u64]) -> HistogramSample {
        HistogramSample {
            name: "t".into(),
            count: buckets.iter().sum(),
            sum: 0,
            buckets: buckets.to_vec(),
        }
    }

    #[test]
    fn quantile_bucket_math_is_pinned() {
        // Bucket i counts values of bit length i; its reported value
        // is the bucket's upper bound 2^i - 1. 10 observations spread
        // one per bucket 0..9: the k-th observation (1-indexed) sits
        // in bucket k-1.
        let h = sample(&[1; 10]);
        assert_eq!(h.quantile(0.0), Some(0)); // rank clamps to 1 -> bucket 0
        assert_eq!(h.quantile(0.1), Some(0)); // rank 1 -> bucket 0, bound 0
        assert_eq!(h.quantile(0.5), Some(15)); // rank 5 -> bucket 4, bound 2^4-1
        assert_eq!(h.quantile(0.99), Some(511)); // rank 10 -> bucket 9
        assert_eq!(h.quantile(1.0), Some(511));

        // Heavy tail: 99 observations in bucket 3, one in bucket 7.
        let h = sample(&[0, 0, 0, 99, 0, 0, 0, 1]);
        assert_eq!(h.quantile(0.5), Some(7)); // 2^3 - 1
        assert_eq!(h.quantile(0.99), Some(7)); // rank 99 still bucket 3
        assert_eq!(h.quantile(0.999), Some(127)); // rank 100 -> bucket 7
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(sample(&[]).quantile(0.5), None); // empty histogram
        let h = sample(&[0, 5]); // five observations of value 1
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.999), Some(1));
        // Rank past the trimmed tail falls into the last stored bucket.
        let h = HistogramSample {
            name: "t".into(),
            count: 8,
            sum: 0,
            buckets: vec![0, 4], // 4 more observations live in trimmed buckets
        };
        assert_eq!(h.quantile(0.999), Some(3)); // 2^2 - 1, len = 2
    }

    #[test]
    fn exposition_carries_quantile_lines() {
        let h = histogram("test.expo.latency");
        h.reset();
        for v in [1u64, 2, 3, 200, 300] {
            h.observe(v);
        }
        let text = prometheus_text(&snapshot());
        // p50: rank 3 of 5 -> value 3 has bit length 2 -> bucket 2,
        // upper bound 3. p99/p999: rank 5 -> 200/300 have bit length
        // 9 -> bucket 9, upper bound 511.
        assert!(text.contains("test_expo_latency_p50 3\n"), "{text}");
        assert!(text.contains("test_expo_latency_p99 511\n"), "{text}");
        assert!(text.contains("test_expo_latency_p999 511\n"), "{text}");
        h.reset();
    }
}
