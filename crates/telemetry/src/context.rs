//! Deterministic causal trace context.
//!
//! Every emitted [`Record`](crate::event::Record) carries three ids —
//! `trace_id`, `span_id`, `parent_id` — that link it into a causal
//! tree: a monitor pipeline's root, the per-window span under it, the
//! window event under that, and (on the serving side) each subscriber
//! delivery. The ids are **pure functions of the computation's
//! structure**, never of the clock:
//!
//! * a root context is `mix3(seed, site, SALT)` where `seed` is an
//!   [`intern`]ed pipeline id and `site` a restart-attempt index,
//! * a child span id is `mix3(trace_id ^ parent_span_id,
//!   intern(path), k)` where `k` is the parent's running child count.
//!
//! Two runs of the same pipeline therefore produce byte-identical ids
//! regardless of worker-thread count, rerun, or host — the same
//! replayability contract `sim::fault::mix3` gives fault injection.
//! Ids are masked to 48 bits so they survive JSON readers that route
//! numbers through an `f64` (Chrome's trace viewer among them);
//! `0` is reserved for "no context".
//!
//! # Propagation
//!
//! The context lives in a thread-local; it crosses thread boundaries
//! explicitly:
//!
//! * [`enter`] installs a context on the current thread (guard-scoped)
//!   — used by monitor runs, supervisor pipeline threads, and endpoint
//!   connection handlers;
//! * [`TraceCtx::worker`] derives the deterministic per-worker child
//!   context a level-parallel sim shard enters at spawn;
//! * the hub snapshots [`current`] at publish time so every delivered
//!   body keeps its producing window's identity.
//!
//! Spans opened while a context is active derive their ids through
//! this module (see [`crate::span::span`]); with no context entered,
//! all ids stay `0` and nothing changes on the wire but three zero
//! fields.

use std::cell::Cell;

/// Ids fit in 48 bits: exactly representable in an `f64`, so JSON
/// tooling that lacks 64-bit integers cannot corrupt them.
pub const ID_MASK: u64 = (1 << 48) - 1;

const SALT_TRACE: u64 = 0x5452_4143_4500; // "TRACE"
const SALT_ROOT: u64 = 0x0052_4f4f_5400; // "ROOT"
const SALT_WORKER: u64 = 0x0057_4f52_4b00; // "WORK"

/// A splitmix64-style avalanche of three words — the same pure-hash
/// idiom `apollo-sim` uses for replayable fault sites. Stable: these
/// constants are part of the trace-id derivation contract.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.rotate_left(23))
        .wrapping_add(c.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// FNV-1a hash of a path or pipeline id — the "path intern id" used as
/// a derivation input, so ids depend on *names*, not on allocation
/// order.
pub fn intern(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn id_of(x: u64) -> u64 {
    let m = x & ID_MASK;
    if m == 0 {
        1
    } else {
        m
    }
}

/// A trace identity: which trace, and which span within it is the
/// current causal parent. `trace_id == 0` means "no active trace".
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace the current work belongs to (0 = none).
    pub trace_id: u64,
    /// Span id of the innermost open span (0 = none).
    pub span_id: u64,
}

/// The inert "no trace" context.
pub const NO_CTX: TraceCtx = TraceCtx {
    trace_id: 0,
    span_id: 0,
};

impl TraceCtx {
    /// Deterministic root context for a pipeline incarnation:
    /// `seed` names the pipeline (use [`intern`]), `site`
    /// distinguishes restart attempts.
    pub fn root(seed: u64, site: u64) -> TraceCtx {
        let trace_id = id_of(mix3(seed, site, SALT_TRACE));
        let span_id = id_of(mix3(trace_id, site, SALT_ROOT));
        TraceCtx { trace_id, span_id }
    }

    /// Deterministic child context for parallel worker `index` — what
    /// a level-parallel sim shard enters at spawn so any record it
    /// might ever emit stays attributable to its owner. Inert contexts
    /// propagate inert.
    pub fn worker(&self, index: u64) -> TraceCtx {
        if !self.is_active() {
            return NO_CTX;
        }
        TraceCtx {
            trace_id: self.trace_id,
            span_id: id_of(mix3(self.trace_id ^ self.span_id, SALT_WORKER, index)),
        }
    }

    /// True when this context carries a live trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// Thread-local derivation state: the current context plus the running
/// child counter of the innermost open span (the `seq` input of child
/// derivation).
#[derive(Copy, Clone)]
struct State {
    ctx: TraceCtx,
    next_child: u64,
}

const IDLE: State = State {
    ctx: NO_CTX,
    next_child: 0,
};

thread_local! {
    static CURRENT: Cell<State> = const { Cell::new(IDLE) };
}

/// The calling thread's current trace context (the innermost open span
/// is the causal parent for anything emitted now).
pub fn current() -> TraceCtx {
    CURRENT.with(|c| c.get().ctx)
}

/// Guard restoring the previous thread context on drop; see [`enter`].
pub struct CtxGuard {
    saved: State,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.saved));
    }
}

/// Installs `ctx` as the calling thread's trace context until the
/// returned guard drops. Entering [`NO_CTX`] is allowed and inert —
/// thread entry points can propagate unconditionally.
pub fn enter(ctx: TraceCtx) -> CtxGuard {
    let saved = CURRENT.with(|c| {
        let saved = c.get();
        c.set(State { ctx, next_child: 0 });
        saved
    });
    CtxGuard { saved }
}

/// Ids of one opened span: its own identity plus its parent's.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct SpanIds {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
}

pub(crate) const NO_SPAN_IDS: SpanIds = SpanIds {
    trace_id: 0,
    span_id: 0,
    parent_id: 0,
};

/// Derives the next child-span id under the current context and makes
/// it current. Called by the span guard with the full slash-joined
/// path; paired with [`close_span`]. With no active trace the state is
/// untouched and all ids are 0.
pub(crate) fn open_span(path: &str) -> SpanIds {
    CURRENT.with(|c| {
        let st = c.get();
        if !st.ctx.is_active() {
            return NO_SPAN_IDS;
        }
        let span_id = id_of(mix3(
            st.ctx.trace_id ^ st.ctx.span_id,
            intern(path),
            st.next_child,
        ));
        c.set(State {
            ctx: TraceCtx {
                trace_id: st.ctx.trace_id,
                span_id,
            },
            next_child: 0,
        });
        SpanIds {
            trace_id: st.ctx.trace_id,
            span_id,
            parent_id: st.ctx.span_id,
        }
    })
}

/// Closes the span opened as `ids`: restores the parent as current and
/// advances its child counter so sibling spans get distinct ids.
pub(crate) fn close_span(ids: SpanIds) {
    if ids.trace_id == 0 {
        return;
    }
    CURRENT.with(|c| {
        let st = c.get();
        c.set(State {
            ctx: TraceCtx {
                trace_id: ids.trace_id,
                span_id: ids.parent_id,
            },
            next_child: st.next_child.wrapping_add(1),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_pure_and_distinct() {
        let a = TraceCtx::root(intern("p0"), 0);
        assert_eq!(a, TraceCtx::root(intern("p0"), 0), "pure function");
        assert_ne!(a, TraceCtx::root(intern("p1"), 0), "pipeline id matters");
        assert_ne!(a, TraceCtx::root(intern("p0"), 1), "attempt matters");
        assert!(a.is_active());
        assert!(a.trace_id <= ID_MASK && a.span_id <= ID_MASK);
    }

    #[test]
    fn worker_children_are_deterministic() {
        let root = TraceCtx::root(intern("m"), 0);
        assert_eq!(root.worker(3), root.worker(3));
        assert_ne!(root.worker(1), root.worker(2));
        assert_eq!(root.worker(1).trace_id, root.trace_id);
        assert_eq!(NO_CTX.worker(5), NO_CTX, "inert propagates inert");
    }

    #[test]
    fn span_stack_derives_unique_sibling_ids() {
        let root = TraceCtx::root(intern("m"), 0);
        let _g = enter(root);
        let a = open_span("outer");
        assert_eq!(a.parent_id, root.span_id);
        let a1 = open_span("outer/inner");
        assert_eq!(a1.parent_id, a.span_id);
        close_span(a1);
        let a2 = open_span("outer/inner");
        close_span(a2);
        assert_ne!(a1.span_id, a2.span_id, "siblings differ by child seq");
        assert_eq!(a1.parent_id, a2.parent_id);
        close_span(a);
        assert_eq!(current(), root);
    }

    #[test]
    fn reentry_restores_previous_context() {
        assert_eq!(current(), NO_CTX);
        {
            let _g = enter(TraceCtx::root(intern("x"), 0));
            assert!(current().is_active());
            {
                let inner = TraceCtx::root(intern("y"), 0);
                let _g2 = enter(inner);
                assert_eq!(current(), inner);
            }
            assert_eq!(current().trace_id, TraceCtx::root(intern("x"), 0).trace_id);
        }
        assert_eq!(current(), NO_CTX);
    }

    #[test]
    fn no_context_is_free_of_ids() {
        assert_eq!(current(), NO_CTX);
        let ids = open_span("anything");
        assert_eq!(ids, NO_SPAN_IDS);
        close_span(ids);
        assert_eq!(current(), NO_CTX);
    }
}
