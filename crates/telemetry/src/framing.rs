//! Shared v1 JSONL framing, factored out of [`crate::event`] so other
//! record families (telemetry events, the `apollo-results` run store)
//! validate their wire format through one code path.
//!
//! A *framed* line is a JSON object carrying at least:
//!
//! * `v` — schema version; readers must reject versions they do not
//!   know,
//! * `seq` — dense per-segment sequence number (0, 1, 2, …) assigned
//!   in emission order,
//! * `ts_ns` — wall-clock data, the only field allowed to differ
//!   between otherwise identical runs (stripped before differential
//!   comparisons).
//!
//! [`validate_framed`] performs the three checks every framed reader
//! agrees on: the line parses, the version matches, and the record
//! re-serializes to an equal value (round-trip closure). Family-
//! specific payload rules plug in through [`Framed::check_payload`].
//! [`SeqCheck`] enforces the dense-sequence contract across a stream
//! of lines the way `apollo trace-lint` always has.

use serde::{Deserialize, Serialize};

/// A schema-versioned JSONL record family.
pub trait Framed: Serialize + Deserialize + PartialEq + Clone {
    /// The schema version this reader understands.
    const VERSION: u32;

    /// The record's `v` field.
    fn version(&self) -> u32;

    /// The record's dense per-segment sequence number.
    fn seq(&self) -> u64;

    /// Family-specific payload validation (field keys, finite floats,
    /// …). The framing checks of [`validate_framed`] run regardless.
    fn check_payload(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Serializes a framed record to a single JSON line (no trailing
/// newline).
pub fn to_jsonl<T: Framed>(rec: &T) -> String {
    serde_json::to_string(rec).expect("framed record serialization is infallible")
}

/// Parses and validates one JSONL line of a framed record family.
///
/// Checks that the line is valid JSON for `T`, that `v` matches
/// [`Framed::VERSION`], that the family's payload rules hold, and that
/// the record re-serializes to an equivalent value (round-trip
/// closure).
pub fn validate_framed<T: Framed>(line: &str) -> Result<T, String> {
    let rec: T = serde_json::from_str(line).map_err(|e| format!("malformed record: {e}"))?;
    if rec.version() != T::VERSION {
        return Err(format!(
            "schema version {} (this reader understands {})",
            rec.version(),
            T::VERSION
        ));
    }
    rec.check_payload()?;
    let reparsed: T = serde_json::from_str(&to_jsonl(&rec))
        .map_err(|e| format!("record does not round-trip: {e}"))?;
    if reparsed != rec {
        return Err("record does not round-trip to an equal value".into());
    }
    Ok(rec)
}

/// Dense-sequence validator: the first record may start anywhere, every
/// subsequent one must increment by exactly 1.
#[derive(Debug, Default)]
pub struct SeqCheck {
    last: Option<u64>,
}

impl SeqCheck {
    /// Fresh checker (no records seen).
    pub fn new() -> Self {
        SeqCheck::default()
    }

    /// Feeds the next record's `seq`; errors unless it is dense.
    pub fn check(&mut self, seq: u64) -> Result<(), String> {
        let expected = self.last.map(|s| s + 1).unwrap_or(seq);
        if seq != expected {
            return Err(format!("seq {seq} out of order (expected {expected})"));
        }
        self.last = Some(seq);
        Ok(())
    }

    /// The last accepted sequence number, if any.
    pub fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct Toy {
        v: u32,
        seq: u64,
        ts_ns: u64,
        val: f64,
    }

    impl Framed for Toy {
        const VERSION: u32 = 7;
        fn version(&self) -> u32 {
            self.v
        }
        fn seq(&self) -> u64 {
            self.seq
        }
        fn check_payload(&self) -> Result<(), String> {
            if !self.val.is_finite() {
                return Err("non-finite val".into());
            }
            Ok(())
        }
    }

    #[test]
    fn roundtrip_and_version_gate() {
        let t = Toy {
            v: 7,
            seq: 3,
            ts_ns: 99,
            val: 1.5,
        };
        let line = to_jsonl(&t);
        assert_eq!(validate_framed::<Toy>(&line).unwrap(), t);

        let wrong = line.replace("\"v\":7", "\"v\":8");
        let err = validate_framed::<Toy>(&wrong).unwrap_err();
        assert!(err.contains("schema version 8"), "{err}");
    }

    #[test]
    fn payload_rules_apply() {
        let bad = "{\"v\":7,\"seq\":0,\"ts_ns\":0,\"val\":null}";
        // Compat serde maps JSON null to f64::NAN; the payload check
        // must reject it.
        let err = validate_framed::<Toy>(bad).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn dense_seq() {
        let mut c = SeqCheck::new();
        c.check(5).unwrap();
        c.check(6).unwrap();
        assert!(c.check(8).is_err());
        assert_eq!(c.last(), Some(6));
    }
}
