//! The JSONL wire schema.
//!
//! Every line a sink writes is one [`Record`], serialized with the
//! workspace `serde_json` (externally-tagged enums, shortest
//! round-trippable floats). The schema is frozen per `v`:
//!
//! ```json
//! {"v":2,"seq":12,"ts_ns":88211,
//!  "trace_id":201968741997188,"span_id":33981992516312,"parent_id":77812373356456,
//!  "body":{"Event":{"name":"ga.generation",
//!                   "fields":[["gen",{"U64":3}],["best",{"F64":0.5}]]}}}
//! ```
//!
//! * `v` — schema version ([`SCHEMA_VERSION`]); readers must reject
//!   versions they do not know.
//! * `seq` — dense per-sink sequence number (0, 1, 2, …) assigned in
//!   emission order; deterministic across runs and thread counts.
//! * `ts_ns` — nanoseconds since the sink was installed. The only
//!   top-level field allowed to differ between identical runs.
//! * `trace_id` / `span_id` / `parent_id` — causal identity (v2, see
//!   [`crate::context`]): the trace this record belongs to, the
//!   record's own span id (`Span` bodies only — 0 for events and
//!   messages), and the id of the enclosing (parent) span. All three
//!   are pure functions of the computation's structure — never of the
//!   clock — so they take part in determinism comparisons; `0` means
//!   "no context".
//! * `body` — one of three externally-tagged variants:
//!   `Event` (a named point event with ordered typed fields),
//!   `Span` (a closed phase: slash-joined `path` + `dur_ns`), or
//!   `Message` (a verbosity-gated diagnostic line).

use crate::framing::{self, Framed};
use serde::{Deserialize, Serialize};

/// Version stamped into every record's `v` field. v2 added the causal
/// `trace_id`/`span_id`/`parent_id` triple.
pub const SCHEMA_VERSION: u32 = 2;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer (cycle numbers, counts, bit indices).
    U64(u64),
    /// Signed integer (deltas, throttle-level changes).
    I64(i64),
    /// Float (fitness, power, readings). Non-finite values are
    /// forbidden: JSON cannot round-trip them.
    F64(f64),
    /// String (signal names, benchmark names, enum tags).
    Str(String),
    /// Boolean flags.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A named point event with ordered `(key, value)` fields.
///
/// Field order is part of the payload: two runs are equivalent only if
/// their events carry the same fields in the same order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Dotted event name, e.g. `sim.fault.reg_flip`.
    pub name: String,
    /// Ordered typed fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// The payload of a [`Record`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RecordBody {
    /// A point event.
    Event(Event),
    /// A closed span.
    Span {
        /// Slash-joined hierarchical phase path, e.g.
        /// `core.capture_suite/bench:dhry_like`.
        path: String,
        /// Wall-clock duration; zeroed by [`Record::strip_timing`].
        dur_ns: u64,
    },
    /// A diagnostic line (mirrored `diag::diag` output).
    Message {
        /// Verbosity level name (`info` or `debug`).
        level: String,
        /// The message text.
        text: String,
    },
}

/// One JSONL line: schema version, sequence number, timestamp, body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u32,
    /// Dense per-sink emission index.
    pub seq: u64,
    /// Nanoseconds since sink install. Timing-only: excluded from
    /// determinism comparisons.
    pub ts_ns: u64,
    /// Trace this record belongs to (0 = no active trace). Derived
    /// deterministically by [`crate::context`].
    pub trace_id: u64,
    /// For `Span` bodies, the closed span's own id; 0 for events and
    /// messages (they are points, not spans).
    pub span_id: u64,
    /// Id of the enclosing span when this record was produced (0 =
    /// top level).
    pub parent_id: u64,
    /// Payload.
    pub body: RecordBody,
}

impl Framed for Record {
    const VERSION: u32 = SCHEMA_VERSION;

    fn version(&self) -> u32 {
        self.v
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn check_payload(&self) -> Result<(), String> {
        for (name, id) in [
            ("trace_id", self.trace_id),
            ("span_id", self.span_id),
            ("parent_id", self.parent_id),
        ] {
            if id > crate::context::ID_MASK {
                return Err(format!("{name} {id} exceeds the 48-bit id space"));
            }
        }
        if self.trace_id == 0 && (self.span_id != 0 || self.parent_id != 0) {
            return Err("span/parent ids without a trace_id".into());
        }
        if let RecordBody::Event(ev) = &self.body {
            if ev.name.is_empty() {
                return Err("empty event name".into());
            }
            for (k, v) in &ev.fields {
                if k.is_empty() {
                    return Err(format!("empty field key in event `{}`", ev.name));
                }
                if let FieldValue::F64(f) = v {
                    if !f.is_finite() {
                        return Err(format!("non-finite field `{k}` in event `{}`", ev.name));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Record {
    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        framing::to_jsonl(self)
    }

    /// Copy with all wall-clock data zeroed, for differential
    /// comparisons across thread counts or runs. The causal id triple
    /// is *kept*: trace/span/parent ids are derived deterministically
    /// and must themselves be bit-identical across thread counts.
    pub fn strip_timing(&self) -> Record {
        let mut r = self.clone();
        r.ts_ns = 0;
        if let RecordBody::Span { dur_ns, .. } = &mut r.body {
            *dur_ns = 0;
        }
        r
    }
}

/// Parses and validates one JSONL line against the schema.
///
/// Checks that the line is valid JSON for [`Record`], that `v` matches
/// [`SCHEMA_VERSION`], that float fields are finite, and that the
/// record re-serializes to an equivalent value (round-trip closure) —
/// the shared framing contract of [`crate::framing`].
pub fn validate_line(line: &str) -> Result<Record, String> {
    framing::validate_framed(line)
}
