//! Profile exporters over recorded JSONL traces.
//!
//! Converts a slice of [`Record`]s (as read back from a `--trace`
//! JSONL file) into two standard artifacts:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (`{"traceEvents":
//!   [...]}` with `ph:"X"` complete events), loadable in
//!   `about://tracing` and Perfetto. One *process* per `trace_id`
//!   (i.e. per pipeline incarnation), one *thread* lane per top-level
//!   span family; span/parent ids ride in `args` so the causal tree
//!   survives the format.
//! * [`flamegraph_folded`] — collapsed-stack ("folded") text, one
//!   `a;b;c weight` line per span path with *self* nanoseconds as the
//!   weight, directly consumable by standard flamegraph tooling.
//!
//! [`validate_chrome`] re-parses an exported Chrome JSON and checks
//! the structural contract CI relies on: well-formed events, and every
//! `introspect.window` span reachable from its pipeline root span
//! through `parent_id` links.

use crate::event::{FieldValue, Record, RecordBody};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn field_text(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => format!("{x:?}"),
        FieldValue::Str(s) => s.clone(),
        FieldValue::Bool(b) => b.to_string(),
    }
}

fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn top(path: &str) -> &str {
    path.split('/').next().unwrap_or(path)
}

/// Lane registry: processes keyed by `trace_id` (0 = untraced work),
/// thread lanes keyed by the top span-path segment within a process.
#[derive(Default)]
struct Lanes {
    pids: BTreeMap<u64, u64>,
    tids: BTreeMap<(u64, String), u64>,
}

impl Lanes {
    fn pid(&mut self, trace_id: u64) -> u64 {
        let next = self.pids.len() as u64 + 1;
        *self.pids.entry(trace_id).or_insert(next)
    }

    fn tid(&mut self, pid: u64, family: &str) -> u64 {
        let next = self.tids.len() as u64 + 1;
        *self.tids.entry((pid, family.to_owned())).or_insert(next)
    }
}

/// Renders `records` as Chrome trace-event JSON (see module docs).
/// Spans become `ph:"X"` complete events (timestamps in microseconds,
/// start reconstructed as `ts_ns − dur_ns`), point events become
/// `ph:"i"` instants, messages are skipped. Deterministic for a given
/// record slice.
pub fn chrome_trace(records: &[Record]) -> String {
    let mut lanes = Lanes::default();
    // (sort key ns, rendered event)
    let mut events: Vec<(u64, String)> = Vec::new();
    for rec in records {
        match &rec.body {
            RecordBody::Span { path, dur_ns } => {
                let pid = lanes.pid(rec.trace_id);
                let tid = lanes.tid(pid, top(path));
                let start_ns = rec.ts_ns.saturating_sub(*dur_ns);
                let e = format!(
                    "{{\"name\":\"{}\",\"cat\":\"apollo\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"path\":\"{}\",\"seq\":{},\"trace_id\":{},\"span_id\":{},\"parent_id\":{}}}}}",
                    json_escape(leaf(path)),
                    start_ns as f64 / 1e3,
                    *dur_ns as f64 / 1e3,
                    json_escape(path),
                    rec.seq,
                    rec.trace_id,
                    rec.span_id,
                    rec.parent_id,
                );
                events.push((start_ns, e));
            }
            RecordBody::Event(ev) => {
                let pid = lanes.pid(rec.trace_id);
                let tid = lanes.tid(pid, top(&ev.name));
                let mut args = format!(
                    "\"trace_id\":{},\"parent_id\":{}",
                    rec.trace_id, rec.parent_id
                );
                for (k, v) in &ev.fields {
                    let _ = write!(
                        args,
                        ",\"{}\":\"{}\"",
                        json_escape(k),
                        json_escape(&field_text(v))
                    );
                }
                let e = format!(
                    "{{\"name\":\"{}\",\"cat\":\"apollo\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                    json_escape(&ev.name),
                    rec.ts_ns as f64 / 1e3,
                );
                events.push((rec.ts_ns, e));
            }
            RecordBody::Message { .. } => {}
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut parts: Vec<String> = Vec::with_capacity(events.len() + lanes.pids.len() * 2);
    for (trace_id, pid) in &lanes.pids {
        let pname = if *trace_id == 0 {
            "untraced".to_owned()
        } else {
            format!("trace {trace_id:012x}")
        };
        parts.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{pname}\"}}}}"
        ));
    }
    for ((pid, family), tid) in &lanes.tids {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(family)
        ));
    }
    parts.extend(events.into_iter().map(|(_, e)| e));
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        parts.join(",\n")
    )
}

/// Renders `records` as collapsed-stack ("folded") flamegraph text:
/// one `a;b;c weight` line per span path, weighted by *self* time in
/// nanoseconds (total minus direct children, clamped at zero).
/// Path-sorted, so output is deterministic.
pub fn flamegraph_folded(records: &[Record]) -> String {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for rec in records {
        if let RecordBody::Span { path, dur_ns } = &rec.body {
            *totals.entry(path.clone()).or_insert(0) += dur_ns;
        }
    }
    let mut out = String::new();
    for (path, total) in &totals {
        let prefix = format!("{path}/");
        let child_sum: u64 = totals
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .filter(|(p, _)| !p[prefix.len()..].contains('/'))
            .map(|(_, ns)| *ns)
            .sum();
        let self_ns = total.saturating_sub(child_sum);
        if self_ns > 0 {
            let _ = writeln!(out, "{} {self_ns}", path.replace('/', ";"));
        }
    }
    out
}

/// Structural summary of a validated Chrome export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeStats {
    /// `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `ph:"i"` instant (point) events.
    pub instants: usize,
    /// Distinct processes (= traces, including the untraced lane).
    pub processes: usize,
    /// Spans named `introspect.window`.
    pub window_spans: usize,
}

fn u64_of(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::Int(i)) if *i >= 0 => Some(*i as u64),
        Some(Value::UInt(u)) => Some(*u),
        Some(Value::Float(f)) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn str_of(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// Parses an exported Chrome trace JSON and verifies the structural
/// contract: `traceEvents` is a non-empty array, every event carries
/// `name`/`ph`/`pid`, every span event carries `ts`/`dur` and an id
/// triple in `args`, and **every `introspect.window` span is reachable
/// from an `introspect.pipeline` root span** through `parent_id`
/// links.
///
/// # Errors
/// Returns a description of the first violation.
pub fn validate_chrome(json: &str) -> Result<ChromeStats, String> {
    let root: Value =
        serde_json::from_str(json).map_err(|e| format!("chrome export is not valid JSON: {e}"))?;
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut stats = ChromeStats {
        spans: 0,
        instants: 0,
        processes: 0,
        window_spans: 0,
    };
    let mut pids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    // span_id -> (name, parent_id), per trace_id.
    let mut span_tree: BTreeMap<(u64, u64), (String, u64)> = BTreeMap::new();
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name =
            str_of(ev.get("name")).ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = str_of(ev.get("ph")).ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = u64_of(ev.get("pid")).ok_or_else(|| format!("event {i}: missing pid"))?;
        match ph {
            "M" => continue,
            "i" => {
                pids.insert(pid);
                stats.instants += 1;
            }
            "X" => {
                pids.insert(pid);
                stats.spans += 1;
                if ev.get("ts").is_none() || ev.get("dur").is_none() {
                    return Err(format!("span event {i} ({name}): missing ts/dur"));
                }
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("span event {i} ({name}): missing args"))?;
                let trace_id = u64_of(args.get("trace_id"))
                    .ok_or_else(|| format!("span event {i} ({name}): missing args.trace_id"))?;
                let span_id = u64_of(args.get("span_id"))
                    .ok_or_else(|| format!("span event {i} ({name}): missing args.span_id"))?;
                let parent_id = u64_of(args.get("parent_id"))
                    .ok_or_else(|| format!("span event {i} ({name}): missing args.parent_id"))?;
                if trace_id != 0 {
                    span_tree.insert((trace_id, span_id), (name.to_owned(), parent_id));
                }
                if name == "introspect.window" {
                    stats.window_spans += 1;
                    windows.push((trace_id, span_id));
                }
            }
            other => return Err(format!("event {i} ({name}): unknown ph `{other}`")),
        }
    }
    stats.processes = pids.len();
    for (trace_id, span_id) in windows {
        if trace_id == 0 {
            return Err("introspect.window span without a trace_id".into());
        }
        let mut cur = span_id;
        let mut hops = 0usize;
        let reachable = loop {
            let Some((name, parent)) = span_tree.get(&(trace_id, cur)) else {
                break false;
            };
            if name == "introspect.pipeline" {
                break true;
            }
            cur = *parent;
            hops += 1;
            if hops > 1024 {
                break false; // cycle guard
            }
        };
        if !reachable {
            return Err(format!(
                "introspect.window span {span_id} (trace {trace_id}) is not reachable from its pipeline root span"
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Record, RecordBody, SCHEMA_VERSION};

    fn span_rec(seq: u64, ts: u64, dur: u64, path: &str, ids: (u64, u64, u64)) -> Record {
        Record {
            v: SCHEMA_VERSION,
            seq,
            ts_ns: ts,
            trace_id: ids.0,
            span_id: ids.1,
            parent_id: ids.2,
            body: RecordBody::Span {
                path: path.to_owned(),
                dur_ns: dur,
            },
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            span_rec(2, 900, 200, "introspect.pipeline/introspect.window", (7, 21, 20)),
            Record {
                v: SCHEMA_VERSION,
                seq: 3,
                ts_ns: 850,
                trace_id: 7,
                span_id: 0,
                parent_id: 21,
                body: RecordBody::Event(Event {
                    name: "introspect.window".into(),
                    fields: vec![("window".into(), FieldValue::U64(0))],
                }),
            },
            span_rec(4, 1000, 900, "introspect.pipeline", (7, 20, 19)),
        ]
    }

    #[test]
    fn chrome_export_roundtrips_and_links_windows_to_roots() {
        let json = chrome_trace(&sample());
        let stats = validate_chrome(&json).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.window_spans, 1);
        assert_eq!(stats.processes, 1);
    }

    #[test]
    fn orphan_window_span_is_rejected() {
        // Window span whose parent chain never reaches a pipeline root.
        let recs = vec![span_rec(
            0,
            900,
            200,
            "introspect.pipeline/introspect.window",
            (7, 21, 999),
        )];
        let json = chrome_trace(&recs);
        let err = validate_chrome(&json).unwrap_err();
        assert!(err.contains("not reachable"), "{err}");
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace(&sample());
        let b = chrome_trace(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn flamegraph_weights_are_self_time() {
        let folded = flamegraph_folded(&sample());
        // pipeline total 900, window child 200 -> self 700.
        assert!(
            folded.contains("introspect.pipeline 700"),
            "parent self-time subtracts children: {folded}"
        );
        assert!(
            folded.contains("introspect.pipeline;introspect.window 200"),
            "{folded}"
        );
    }

    #[test]
    fn empty_export_is_an_error() {
        let json = chrome_trace(&[]);
        assert!(validate_chrome(&json).is_err());
    }
}
