//! Event sinks and the process-global emission gate.
//!
//! The fast path is a single relaxed [`AtomicBool`]: with no sink
//! installed, [`emit_event`] is one load and a branch. Installing a
//! sink flips the gate; emission then serializes through one mutex so
//! `seq` assignment and sink writes cannot interleave (record order in
//! the output always matches `seq` order).

use crate::context;
use crate::event::{Event, FieldValue, Record, RecordBody, SCHEMA_VERSION};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receiver for emitted records.
pub trait EventSink: Send + Sync {
    /// Consumes one record. Called under the global emission lock, in
    /// `seq` order.
    fn emit(&self, record: &Record);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

struct SinkState {
    sink: Arc<dyn EventSink>,
    epoch: Instant,
    next_seq: u64,
}

static EVENTS_ON: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

/// True when a sink is installed (one relaxed load).
#[inline]
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event sink, resetting the
/// sequence counter and timestamp epoch. Replaces (and flushes) any
/// previous sink.
pub fn install_sink(sink: Arc<dyn EventSink>) {
    let mut guard = SINK.lock().unwrap();
    if let Some(old) = guard.take() {
        old.sink.flush();
    }
    *guard = Some(SinkState {
        sink,
        epoch: Instant::now(),
        next_seq: 0,
    });
    EVENTS_ON.store(true, Ordering::Relaxed);
}

/// Removes and flushes the global sink, returning it if one was
/// installed.
pub fn clear_sink() -> Option<Arc<dyn EventSink>> {
    let mut guard = SINK.lock().unwrap();
    EVENTS_ON.store(false, Ordering::Relaxed);
    guard.take().map(|state| {
        state.sink.flush();
        state.sink
    })
}

fn emit_body(body: RecordBody, trace_id: u64, span_id: u64, parent_id: u64) {
    let mut guard = SINK.lock().unwrap();
    if let Some(state) = guard.as_mut() {
        let rec = Record {
            v: SCHEMA_VERSION,
            seq: state.next_seq,
            ts_ns: state.epoch.elapsed().as_nanos() as u64,
            trace_id,
            span_id,
            parent_id,
            body,
        };
        state.next_seq += 1;
        state.sink.emit(&rec);
    }
}

/// Emits a named point event, stamped with the calling thread's trace
/// context (parented under the innermost open span). No-op (one
/// relaxed load) without a sink.
pub fn emit_event(name: &str, fields: &[(&str, FieldValue)]) {
    if !events_enabled() {
        return;
    }
    let ctx = context::current();
    emit_body(
        RecordBody::Event(Event {
            name: name.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        }),
        ctx.trace_id,
        0,
        ctx.span_id,
    );
}

/// Emits a closed-span record for an externally-timed phase (used when
/// durations are measured off-thread and reported from a serial point,
/// e.g. per-benchmark capture times after the deterministic merge).
/// Stamped with the calling thread's trace context; the span gets no
/// id of its own — use [`emit_span_ids`] when the caller derived one.
pub fn emit_span(path: &str, dur_ns: u64) {
    if !events_enabled() {
        return;
    }
    let ctx = context::current();
    emit_span_ids(path, dur_ns, ctx.trace_id, 0, ctx.span_id);
}

/// Emits a closed-span record with an explicitly derived id triple.
/// Used where span identity crosses a thread boundary by value instead
/// of through the thread-local stack (e.g. per-subscriber delivery
/// spans, whose parent is the published window's span).
pub fn emit_span_ids(path: &str, dur_ns: u64, trace_id: u64, span_id: u64, parent_id: u64) {
    if !events_enabled() {
        return;
    }
    emit_body(
        RecordBody::Span {
            path: path.to_owned(),
            dur_ns,
        },
        trace_id,
        span_id,
        parent_id,
    );
}

/// Emits a diagnostic message record (used by [`crate::diag`]),
/// stamped with the calling thread's trace context.
pub fn emit_message(level: &str, text: &str) {
    if !events_enabled() {
        return;
    }
    let ctx = context::current();
    emit_body(
        RecordBody::Message {
            level: level.to_owned(),
            text: text.to_owned(),
        },
        ctx.trace_id,
        0,
        ctx.span_id,
    );
}

/// Sink writing one JSON line per record through a buffered file.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, record: &Record) {
        let mut out = self.out.lock().unwrap();
        // Trace I/O is best-effort: a full disk must not abort the
        // instrumented computation.
        let _ = writeln!(out, "{}", record.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// In-memory sink for tests and differential comparisons.
#[derive(Default)]
pub struct VecSink {
    records: Mutex<Vec<Record>>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns all records captured so far.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut self.records.lock().unwrap())
    }
}

impl EventSink for VecSink {
    fn emit(&self, record: &Record) {
        self.records.lock().unwrap().push(record.clone());
    }
}
