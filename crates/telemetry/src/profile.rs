//! The phase table behind `apollo profile`: accumulated wall-clock
//! per slash-joined span path, rendered as a call-count / total-time /
//! percentage table.

use std::collections::BTreeMap;
use std::sync::{LazyLock, Mutex};

static PHASES: LazyLock<Mutex<BTreeMap<String, (u64, u64)>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// Accumulated statistics for one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Slash-joined span path.
    pub path: String,
    /// Number of closed spans (or externally-counted units).
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
}

/// Adds `count` closures totalling `ns` to phase `path`. Called by
/// [`crate::span::SpanGuard`] on drop, and directly by code that
/// batches its timing (e.g. once per simulator instead of once per
/// step).
pub fn record_phase(path: &str, count: u64, ns: u64) {
    let mut phases = PHASES.lock().unwrap();
    let entry = phases.entry(path.to_owned()).or_insert((0, 0));
    entry.0 += count;
    entry.1 += ns;
}

/// Clears the phase table.
pub fn reset_phases() {
    PHASES.lock().unwrap().clear();
}

/// Snapshot of the phase table, path-sorted (so children follow their
/// parents).
pub fn phase_report() -> Vec<PhaseStat> {
    PHASES
        .lock()
        .unwrap()
        .iter()
        .map(|(path, &(count, total_ns))| PhaseStat {
            path: path.clone(),
            count,
            total_ns,
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the phase table. `total_ns` is the wall clock of the whole
/// profiled run and the denominator of the `%` column; a nested path
/// is indented under its parent only when the parent has its own row
/// (otherwise the full path is shown, so `sim.step/eval` never looks
/// like a child of an unrelated preceding row).
pub fn render_phase_table(stats: &[PhaseStat], total_ns: u64) -> String {
    let paths: std::collections::BTreeSet<&str> = stats.iter().map(|s| s.path.as_str()).collect();
    let label_of = |path: &str| -> String {
        match path.rsplit_once('/') {
            Some((parent, leaf)) if paths.contains(parent) => {
                let depth = path.matches('/').count();
                format!("{}{leaf}", "  ".repeat(depth))
            }
            _ => path.to_owned(),
        }
    };
    let width = stats
        .iter()
        .map(|s| label_of(&s.path).len())
        .max()
        .unwrap_or(5)
        .max(10);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>9}  {:>11}  {:>6}\n",
        "phase", "calls", "total", "%"
    ));
    for s in stats {
        let label = label_of(&s.path);
        let pct = if total_ns > 0 {
            100.0 * s.total_ns as f64 / total_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{label:<width$}  {:>9}  {:>11}  {pct:>5.1}%\n",
            s.count,
            fmt_ns(s.total_ns),
        ));
    }
    out.push_str(&format!(
        "{:<width$}  {:>9}  {:>11}  {:>5.1}%\n",
        "wall clock",
        "",
        fmt_ns(total_ns),
        100.0
    ));
    out
}
