//! Registry of known typed event bodies.
//!
//! The JSONL schema ([`crate::event`]) is intentionally open: any
//! crate may emit any event name. For event families that downstream
//! tooling consumes programmatically — today the `opm.drift.*` and
//! `introspect.*` kinds published by the runtime introspection
//! pipeline, plus the `governor.*` fail-safe transitions — this module
//! pins the required fields and their types so `trace-lint` (and any
//! other reader) can reject malformed bodies instead of silently
//! mis-parsing them.
//!
//! A known-event spec lists *required* fields: each must be present
//! with the given [`FieldKind`]. Extra fields are allowed as long as
//! they obey the registered dynamic prefixes (per-unit attribution
//! fields like `unit.alu`, whose names depend on the trained model).
//! Events whose names match no spec validate trivially.

use crate::event::{Event, FieldValue};

/// The type a known field must carry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// [`FieldValue::U64`].
    U64,
    /// [`FieldValue::I64`].
    I64,
    /// [`FieldValue::F64`].
    F64,
    /// [`FieldValue::Str`].
    Str,
    /// [`FieldValue::Bool`].
    Bool,
}

impl FieldKind {
    fn matches(self, v: &FieldValue) -> bool {
        matches!(
            (self, v),
            (FieldKind::U64, FieldValue::U64(_))
                | (FieldKind::I64, FieldValue::I64(_))
                | (FieldKind::F64, FieldValue::F64(_))
                | (FieldKind::Str, FieldValue::Str(_))
                | (FieldKind::Bool, FieldValue::Bool(_))
        )
    }

    fn label(self) -> &'static str {
        match self {
            FieldKind::U64 => "U64",
            FieldKind::I64 => "I64",
            FieldKind::F64 => "F64",
            FieldKind::Str => "Str",
            FieldKind::Bool => "Bool",
        }
    }
}

/// Schema of one known event kind.
#[derive(Copy, Clone, Debug)]
pub struct KnownEvent {
    /// Exact event name.
    pub name: &'static str,
    /// Required `(field, kind)` pairs; order is not constrained.
    pub required: &'static [(&'static str, FieldKind)],
    /// Allowed dynamic field-name prefixes and the kind every field
    /// under them must carry (e.g. per-unit attribution columns).
    pub dynamic: &'static [(&'static str, FieldKind)],
}

/// Every event kind with a pinned body schema.
pub const KNOWN_EVENTS: &[KnownEvent] = &[
    KnownEvent {
        name: "opm.drift.alarm",
        required: &[
            ("monitor", FieldKind::Str),
            ("window", FieldKind::U64),
            ("residual", FieldKind::F64),
            ("ewma", FieldKind::F64),
            ("cusum_pos", FieldKind::F64),
            ("cusum_neg", FieldKind::F64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "opm.drift.clear",
        required: &[("monitor", FieldKind::Str), ("window", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "opm.drift.armed",
        required: &[
            ("monitor", FieldKind::Str),
            ("window", FieldKind::U64),
            ("level", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "opm.drift.disarmed",
        required: &[("monitor", FieldKind::Str), ("window", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.window",
        required: &[
            ("window", FieldKind::U64),
            ("cycle", FieldKind::U64),
            ("raw", FieldKind::U64),
            ("out", FieldKind::U64),
            ("est_power", FieldKind::F64),
            ("float_power", FieldKind::F64),
            ("true_power", FieldKind::F64),
            ("energy", FieldKind::F64),
            ("throttle", FieldKind::U64),
        ],
        dynamic: &[
            ("unit.", FieldKind::U64),
            ("group.", FieldKind::U64),
            // Supervised fleets tag each window with its pipeline id.
            ("pipeline", FieldKind::Str),
        ],
    },
    KnownEvent {
        name: "introspect.start",
        required: &[
            ("design", FieldKind::Str),
            ("bench", FieldKind::Str),
            ("q", FieldKind::U64),
            ("window_t", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.restart",
        required: &[("cycle", FieldKind::U64), ("runs", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.shutdown",
        required: &[("windows", FieldKind::U64), ("cycles", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.subscriber",
        required: &[("action", FieldKind::Str), ("active", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.supervisor.restart",
        required: &[
            ("pipeline", FieldKind::Str),
            ("attempt", FieldKind::U64),
            ("delay_ms", FieldKind::U64),
            ("reason", FieldKind::Str),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.supervisor.degraded",
        required: &[("pipeline", FieldKind::Str), ("failures", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.checkpoint.write",
        required: &[
            ("pipeline", FieldKind::Str),
            ("window", FieldKind::U64),
            ("bytes", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.checkpoint.resume",
        required: &[
            ("pipeline", FieldKind::Str),
            ("window", FieldKind::U64),
            ("cycle", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "hub.downsample",
        required: &[
            ("subscriber", FieldKind::U64),
            ("stride", FieldKind::U64),
            ("dropped", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.status",
        required: &[
            ("healthy", FieldKind::Bool),
            ("pipelines", FieldKind::U64),
            ("subscribers", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "introspect.healthz",
        required: &[("healthy", FieldKind::Bool)],
        dynamic: &[],
    },
    KnownEvent {
        name: "fleet.shard.restart",
        required: &[
            ("shard", FieldKind::U64),
            ("attempt", FieldKind::U64),
            ("delay_ms", FieldKind::U64),
            ("reason", FieldKind::Str),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "fleet.shard.degraded",
        required: &[("shard", FieldKind::U64), ("failures", FieldKind::U64)],
        dynamic: &[],
    },
    KnownEvent {
        name: "fleet.shed",
        required: &[
            ("reason", FieldKind::Str),
            ("retry_after_ms", FieldKind::U64),
        ],
        dynamic: &[],
    },
    KnownEvent {
        name: "fleet.coverage",
        required: &[
            ("window", FieldKind::U64),
            ("cores_reporting", FieldKind::U64),
            ("cores_total", FieldKind::U64),
        ],
        dynamic: &[],
    },
];

/// Looks up the pinned schema for an event name, if any.
pub fn known_event(name: &str) -> Option<&'static KnownEvent> {
    KNOWN_EVENTS.iter().find(|k| k.name == name)
}

/// Validates an event body against the known-event registry.
///
/// Events with unregistered names pass. For registered names, every
/// required field must be present exactly once with the right kind,
/// and any extra field must fall under a registered dynamic prefix
/// with the right kind.
///
/// # Errors
/// Returns a human-readable description of the first violation.
pub fn validate_known(event: &Event) -> Result<(), String> {
    let Some(spec) = known_event(&event.name) else {
        return Ok(());
    };
    for &(name, kind) in spec.required {
        let mut found = 0usize;
        for (k, v) in &event.fields {
            if k == name {
                found += 1;
                if !kind.matches(v) {
                    return Err(format!(
                        "event `{}`: field `{name}` must be {}",
                        event.name,
                        kind.label()
                    ));
                }
            }
        }
        match found {
            0 => {
                return Err(format!(
                    "event `{}`: missing required field `{name}`",
                    event.name
                ))
            }
            1 => {}
            n => {
                return Err(format!(
                    "event `{}`: field `{name}` appears {n} times",
                    event.name
                ))
            }
        }
    }
    for (k, v) in &event.fields {
        if spec.required.iter().any(|&(name, _)| name == k) {
            continue;
        }
        let Some(&(_, kind)) = spec.dynamic.iter().find(|(p, _)| k.starts_with(p)) else {
            return Err(format!(
                "event `{}`: unexpected field `{k}` (not required, no dynamic prefix)",
                event.name
            ));
        };
        if !kind.matches(v) {
            return Err(format!(
                "event `{}`: dynamic field `{k}` must be {}",
                event.name,
                kind.label()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, fields: Vec<(&str, FieldValue)>) -> Event {
        Event {
            name: name.to_owned(),
            fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }

    #[test]
    fn unknown_names_pass() {
        let e = ev("totally.custom", vec![("x", FieldValue::U64(1))]);
        assert!(validate_known(&e).is_ok());
    }

    #[test]
    fn drift_alarm_requires_all_fields() {
        let e = ev(
            "opm.drift.alarm",
            vec![
                ("monitor", FieldValue::Str("quant".into())),
                ("window", FieldValue::U64(7)),
                ("residual", FieldValue::F64(0.5)),
                ("ewma", FieldValue::F64(0.4)),
                ("cusum_pos", FieldValue::F64(3.0)),
                ("cusum_neg", FieldValue::F64(0.0)),
            ],
        );
        assert!(validate_known(&e).is_ok());
        let missing = ev("opm.drift.alarm", vec![("window", FieldValue::U64(7))]);
        let err = validate_known(&missing).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");
    }

    #[test]
    fn wrong_kind_rejected() {
        let e = ev(
            "opm.drift.clear",
            vec![
                ("monitor", FieldValue::Str("truth".into())),
                ("window", FieldValue::F64(1.0)),
            ],
        );
        let err = validate_known(&e).unwrap_err();
        assert!(err.contains("must be U64"), "{err}");
    }

    #[test]
    fn dynamic_unit_fields_allowed_with_right_kind() {
        let mut fields = vec![
            ("window", FieldValue::U64(0)),
            ("cycle", FieldValue::U64(64)),
            ("raw", FieldValue::U64(100)),
            ("out", FieldValue::U64(1)),
            ("est_power", FieldValue::F64(2.0)),
            ("float_power", FieldValue::F64(2.1)),
            ("true_power", FieldValue::F64(2.2)),
            ("energy", FieldValue::F64(128.0)),
            ("throttle", FieldValue::U64(0)),
        ];
        fields.push(("unit.alu", FieldValue::U64(40)));
        fields.push(("unit.fetch", FieldValue::U64(60)));
        assert!(validate_known(&ev("introspect.window", fields.clone())).is_ok());

        fields.push(("unit.vec", FieldValue::F64(1.0)));
        let err = validate_known(&ev("introspect.window", fields.clone())).unwrap_err();
        assert!(
            err.contains("dynamic field `unit.vec` must be U64"),
            "{err}"
        );

        fields.pop();
        fields.push(("surprise", FieldValue::U64(1)));
        let err = validate_known(&ev("introspect.window", fields)).unwrap_err();
        assert!(err.contains("unexpected field"), "{err}");
    }

    #[test]
    fn supervision_events_roundtrip_the_wire_format() {
        use crate::event::{Record, RecordBody};
        use crate::validate_line;
        let bodies = vec![
            ev(
                "introspect.supervisor.restart",
                vec![
                    ("pipeline", FieldValue::Str("p0-dhrystone".into())),
                    ("attempt", FieldValue::U64(2)),
                    ("delay_ms", FieldValue::U64(100)),
                    ("reason", FieldValue::Str("panic: chaos".into())),
                ],
            ),
            ev(
                "introspect.supervisor.degraded",
                vec![
                    ("pipeline", FieldValue::Str("p1-maxpwr_cpu".into())),
                    ("failures", FieldValue::U64(4)),
                ],
            ),
            ev(
                "introspect.checkpoint.write",
                vec![
                    ("pipeline", FieldValue::Str("p0-dhrystone".into())),
                    ("window", FieldValue::U64(64)),
                    ("bytes", FieldValue::U64(1234)),
                ],
            ),
            ev(
                "introspect.checkpoint.resume",
                vec![
                    ("pipeline", FieldValue::Str("p0-dhrystone".into())),
                    ("window", FieldValue::U64(64)),
                    ("cycle", FieldValue::U64(2048)),
                ],
            ),
            ev(
                "hub.downsample",
                vec![
                    ("subscriber", FieldValue::U64(3)),
                    ("stride", FieldValue::U64(4)),
                    ("dropped", FieldValue::U64(40)),
                ],
            ),
        ];
        for (seq, body) in bodies.into_iter().enumerate() {
            assert!(validate_known(&body).is_ok(), "{}", body.name);
            // Missing any one required field must fail.
            for drop_idx in 0..body.fields.len() {
                let mut broken = body.clone();
                broken.fields.remove(drop_idx);
                assert!(
                    validate_known(&broken).is_err(),
                    "{} without `{}` must fail",
                    body.name,
                    body.fields[drop_idx].0
                );
            }
            // And the full record survives the JSONL wire format.
            let rec = Record {
                v: crate::SCHEMA_VERSION,
                seq: seq as u64,
                ts_ns: 1,
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
                body: RecordBody::Event(body.clone()),
            };
            let parsed = validate_line(&rec.to_jsonl()).unwrap();
            match parsed.body {
                RecordBody::Event(e) => {
                    assert_eq!(e, body, "byte-lossless event roundtrip")
                }
                other => panic!("unexpected body {other:?}"),
            }
        }
    }

    #[test]
    fn pipeline_tag_is_a_valid_window_dynamic_field() {
        let fields = vec![
            ("window", FieldValue::U64(0)),
            ("cycle", FieldValue::U64(64)),
            ("raw", FieldValue::U64(100)),
            ("out", FieldValue::U64(1)),
            ("est_power", FieldValue::F64(2.0)),
            ("float_power", FieldValue::F64(2.1)),
            ("true_power", FieldValue::F64(2.2)),
            ("energy", FieldValue::F64(128.0)),
            ("throttle", FieldValue::U64(0)),
            ("pipeline", FieldValue::Str("p2-saxpy_simd".into())),
        ];
        assert!(validate_known(&ev("introspect.window", fields.clone())).is_ok());
        // Wrong kind under the prefix is still rejected.
        let mut bad = fields;
        bad.pop();
        bad.push(("pipeline", FieldValue::U64(2)));
        let err = validate_known(&ev("introspect.window", bad)).unwrap_err();
        assert!(err.contains("must be Str"), "{err}");
    }

    #[test]
    fn fleet_events_are_pinned() {
        let bodies = vec![
            ev(
                "fleet.shard.restart",
                vec![
                    ("shard", FieldValue::U64(2)),
                    ("attempt", FieldValue::U64(1)),
                    ("delay_ms", FieldValue::U64(100)),
                    ("reason", FieldValue::Str("panic: chaos".into())),
                ],
            ),
            ev(
                "fleet.shard.degraded",
                vec![
                    ("shard", FieldValue::U64(2)),
                    ("failures", FieldValue::U64(4)),
                ],
            ),
            ev(
                "fleet.shed",
                vec![
                    ("reason", FieldValue::Str("watermark".into())),
                    ("retry_after_ms", FieldValue::U64(1000)),
                ],
            ),
            ev(
                "fleet.coverage",
                vec![
                    ("window", FieldValue::U64(9)),
                    ("cores_reporting", FieldValue::U64(24)),
                    ("cores_total", FieldValue::U64(32)),
                ],
            ),
        ];
        for body in bodies {
            assert!(validate_known(&body).is_ok(), "{}", body.name);
            for drop_idx in 0..body.fields.len() {
                let mut broken = body.clone();
                broken.fields.remove(drop_idx);
                assert!(
                    validate_known(&broken).is_err(),
                    "{} without `{}` must fail",
                    body.name,
                    body.fields[drop_idx].0
                );
            }
        }
    }

    #[test]
    fn duplicate_required_field_rejected() {
        let e = ev(
            "opm.drift.clear",
            vec![
                ("monitor", FieldValue::Str("a".into())),
                ("window", FieldValue::U64(1)),
                ("window", FieldValue::U64(2)),
            ],
        );
        let err = validate_known(&e).unwrap_err();
        assert!(err.contains("appears 2 times"), "{err}");
    }
}
