//! Observability layer for the APOLLO reproduction.
//!
//! Four coordinated facilities, all process-global so instrumented
//! crates never have to thread a handle through their APIs:
//!
//! * **Metrics** ([`metrics`]): named counters, gauges, and
//!   power-of-two histograms backed by relaxed atomics. With no sink
//!   installed and timing off, an instrumented hot loop pays one
//!   relaxed load plus (for counters it bumps) one relaxed
//!   `fetch_add` — the "near-zero-cost when disabled" budget the
//!   `step` overhead bench enforces.
//! * **Spans** ([`span`]): hierarchical wall-clock phases. Guards are
//!   inert unless timing or an event sink is enabled; closed spans
//!   accumulate into the [`profile`] phase table and (optionally)
//!   emit `span` records to the sink.
//! * **Events** ([`event`], [`sink`]): typed, schema-versioned JSONL
//!   records. `Record` is the single wire type; `validate_line`
//!   re-parses and round-trips a line so CI can machine-check traces.
//! * **Diagnostics** ([`diag`]): verbosity-gated progress lines that
//!   replace ad-hoc `eprintln!` in library crates, mirrored to the
//!   event sink as `message` records when one is installed.
//! * **Trace context** ([`context`]): deterministic causal identity.
//!   Every record carries a `trace_id`/`span_id`/`parent_id` triple
//!   derived purely from the computation's structure (interned names +
//!   child sequence, never the clock), so one published window's trace
//!   walks sim-step → OPM eval → attribution → publish → delivery.
//!   [`export`] turns recorded traces into Chrome trace-event JSON and
//!   collapsed-stack flamegraphs.
//!
//! # Determinism contract
//!
//! Recorded *values* — counter totals, event payloads, event order,
//! and the causal id triple — must be identical across worker-thread
//! counts. Wall-clock data is confined to metrics whose names end in
//! `_ns` (excluded by [`metrics::MetricsSnapshot::without_timing`])
//! and to the `ts_ns` / `dur_ns` fields of records (cleared by
//! [`event::Record::strip_timing`]; the id triple is deliberately
//! *kept*). Instrumented crates uphold the contract by bumping
//! counters only with commutative `fetch_add` and emitting events only
//! from serial points of their pipelines;
//! `crates/sim/tests/telemetry_differential.rs` machine-checks it at
//! 1/2/4 threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod event;
pub mod export;
pub mod framing;
pub mod known;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;

pub use context::{current, enter, intern, mix3, CtxGuard, TraceCtx, ID_MASK, NO_CTX};
pub use diag::{diag, set_verbosity, verbosity, Verbosity};
pub use event::{validate_line, Event, FieldValue, Record, RecordBody, SCHEMA_VERSION};
pub use export::{chrome_trace, flamegraph_folded, validate_chrome, ChromeStats};
pub use framing::{validate_framed, Framed, SeqCheck};
pub use known::{known_event, validate_known, FieldKind, KnownEvent, KNOWN_EVENTS};
pub use metrics::{
    counter, gauge, histogram, prometheus_text, reset_metrics, snapshot, Counter, Gauge, Histogram,
    MetricsSnapshot,
};
pub use profile::{phase_report, render_phase_table, reset_phases, PhaseStat};
pub use sink::{
    clear_sink, emit_event, emit_span, emit_span_ids, events_enabled, install_sink, EventSink,
    JsonlSink, VecSink,
};
pub use span::{set_timing, span, timing_enabled, SpanGuard};
