//! Verbosity-gated diagnostics.
//!
//! Library crates call [`diag`] instead of printing; the line goes to
//! stderr at `Normal` verbosity and above, and is mirrored to the
//! event sink as a `Message` record whenever one is installed (so
//! `--quiet --trace t.jsonl` still captures every diagnostic).

use crate::sink::emit_message;
use std::sync::atomic::{AtomicU8, Ordering};

/// Output levels for bench/CLI binaries (`--quiet` / `-v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Suppress diagnostics and result prints (machine consumers read
    /// the JSON artifacts / trace instead).
    Quiet,
    /// Diagnostics and results (the default).
    Normal,
    /// Additionally dump metrics and phase tables at exit.
    Verbose,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(1);

/// Sets the process-global verbosity.
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// Current process-global verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Emits one diagnostic line: stderr unless `Quiet`, plus a `Message`
/// record when a sink is installed.
pub fn diag(text: &str) {
    if verbosity() > Verbosity::Quiet {
        eprintln!("{text}");
    }
    emit_message("info", text);
}
