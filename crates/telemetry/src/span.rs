//! Hierarchical timed spans.
//!
//! [`span`] returns a guard; while alive, nested spans extend its
//! slash-joined path through a thread-local stack. On drop, the span
//! accumulates into the [`crate::profile`] phase table (when timing is
//! on) and emits a `Span` record (when a sink is installed). With
//! neither enabled the guard is fully inert — no clock reads, no
//! allocation.

use crate::context::{self, SpanIds, NO_SPAN_IDS};
use crate::profile::record_phase;
use crate::sink::{emit_span_ids, events_enabled};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TIMING: AtomicBool = AtomicBool::new(false);

/// Enables or disables wall-clock collection (phase table + `_ns`
/// metrics in instrumented crates).
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// True when wall-clock collection is on (one relaxed load).
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

thread_local! {
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII guard for an open span; see [`span`].
pub struct SpanGuard {
    start: Option<Instant>,
    /// Byte length of the thread-local path before this span pushed
    /// its component (0 lengths never truncate: path is empty or this
    /// guard is inert).
    saved_len: usize,
    /// Deterministic causal identity derived at open (all zeros with
    /// no active trace context).
    ids: SpanIds,
    active: bool,
}

/// Opens a span named `name` under the current thread's span path.
///
/// Inert unless timing or an event sink is enabled at entry. When a
/// trace context is active ([`crate::context::enter`]), the span
/// derives a deterministic `span_id` under the innermost open span.
pub fn span(name: &str) -> SpanGuard {
    let active = timing_enabled() || events_enabled();
    if !active {
        return SpanGuard {
            start: None,
            saved_len: 0,
            ids: NO_SPAN_IDS,
            active: false,
        };
    }
    let (saved_len, ids) = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let saved = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        (saved, context::open_span(&p))
    });
    SpanGuard {
        start: Some(Instant::now()),
        saved_len,
        ids,
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = self
            .start
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        PATH.with(|p| {
            let mut p = p.borrow_mut();
            if timing_enabled() {
                record_phase(&p, 1, dur_ns);
            }
            if events_enabled() {
                emit_span_ids(
                    &p,
                    dur_ns,
                    self.ids.trace_id,
                    self.ids.span_id,
                    self.ids.parent_id,
                );
            }
            p.truncate(self.saved_len);
        });
        context::close_span(self.ids);
    }
}
