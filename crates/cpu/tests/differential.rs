//! Differential testing: the RTL CPU against the architectural golden
//! model, over the Table-4 suite and constrained random programs.

use apollo_cpu::benchmarks::{self, random};
use apollo_cpu::{build_cpu, CpuConfig, CpuSim, GoldenModel, GoldenOutcome, RunOutcome};
use apollo_rtl::CapModel;
use apollo_sim::PowerConfig;

fn run_both(
    handles: &apollo_cpu::CpuHandles,
    cap: &apollo_rtl::CapAnnotation,
    program: &[apollo_cpu::Inst],
    data: &[u64],
    name: &str,
) {
    let config = &handles.config;

    let mut golden = GoldenModel::new(config.dram_words as usize);
    golden.mem[..data.len()].copy_from_slice(data);
    let out = golden.run(program, 3_000_000);
    assert!(
        matches!(out, GoldenOutcome::Halted { .. }),
        "{name}: golden model did not halt"
    );

    let mut rtl = CpuSim::new(handles, cap, PowerConfig::default(), program, data);
    let out = rtl.run(2_000_000);
    assert!(
        matches!(out, RunOutcome::Quiesced { .. }),
        "{name}: RTL did not quiesce"
    );

    for i in 1..16 {
        assert_eq!(
            rtl.xreg(i),
            golden.xregs[i],
            "{name}: x{i} mismatch (rtl={:#x} golden={:#x})",
            rtl.xreg(i),
            golden.xregs[i]
        );
    }
    for v in 0..8 {
        let g = golden.vregs[v];
        let glo = (g[0] as u64) | ((g[1] as u64) << 32);
        let ghi = (g[2] as u64) | ((g[3] as u64) << 32);
        let r = rtl.vreg(v);
        assert_eq!(r[0], glo, "{name}: v{v} low half mismatch");
        assert_eq!(r[1], ghi, "{name}: v{v} high half mismatch");
    }
    for addr in 0..config.dram_words.min(512) {
        assert_eq!(
            rtl.mem_word(addr),
            golden.mem[addr as usize],
            "{name}: mem[{addr}] mismatch"
        );
    }
}

#[test]
fn table4_suite_matches_golden_model() {
    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);
    for bench in benchmarks::table4_suite(&config) {
        run_both(&handles, &cap, &bench.program, &bench.data, &bench.name);
    }
}

#[test]
fn hmmer_like_matches_golden_model() {
    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);
    let bench = benchmarks::hmmer_like(&config, 2);
    run_both(&handles, &cap, &bench.program, &bench.data, &bench.name);
}

#[test]
fn random_programs_match_golden_model() {
    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);
    let weights = random::GenWeights::default();
    for seed in 0..25u64 {
        let body = random::random_body(seed, 30, &weights);
        let program = random::wrap_body(&body, 3);
        let data: Vec<u64> = (0..config.dram_words as u64)
            .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) ^ seed)
            .collect();
        run_both(&handles, &cap, &program, &data, &format!("random{seed}"));
    }
}

#[test]
fn branch_heavy_program_matches() {
    use apollo_cpu::{Asm, Xr};
    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);

    // Collatz-ish iteration with data-dependent branches.
    let mut a = Asm::new();
    a.addi(Xr(1), Xr(0), 27);
    a.addi(Xr(2), Xr(0), 1);
    a.addi(Xr(3), Xr(0), 3);
    a.addi(Xr(7), Xr(0), 0); // step counter
    let top = a.label();
    let even = a.forward_label();
    let done = a.forward_label();
    a.addi(Xr(7), Xr(7), 1);
    a.and(Xr(4), Xr(1), Xr(2));
    a.beq(Xr(4), Xr(0), even);
    a.mul(Xr(1), Xr(1), Xr(3));
    a.addi(Xr(1), Xr(1), 1);
    let cont = a.forward_label();
    a.jump(cont);
    a.place(even);
    a.shri(Xr(1), Xr(1), 1);
    a.place(cont);
    a.bne(Xr(1), Xr(2), top);
    a.place(done);
    a.halt();
    let program = a.assemble();

    let mut golden = GoldenModel::new(config.dram_words as usize);
    assert!(matches!(
        golden.run(&program, 1_000_000),
        GoldenOutcome::Halted { .. }
    ));
    assert_eq!(golden.xregs[1], 1);
    assert_eq!(golden.xregs[7], 111, "collatz(27) takes 111 steps");

    run_both(&handles, &cap, &program, &[], "collatz");
}

#[test]
fn throttling_slows_execution() {
    use apollo_cpu::{Asm, Xr};
    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).unwrap();
    let cap = CapModel::default().annotate(&handles.netlist);

    let cycles_for = |level: u8| {
        let mut a = Asm::new();
        if level > 0 {
            a.throttle(level);
        }
        for _ in 0..60 {
            a.addi(Xr(2), Xr(2), 1);
        }
        a.halt();
        let mut sim = CpuSim::new(&handles, &cap, PowerConfig::default(), &a.assemble(), &[]);
        match sim.run(100_000) {
            RunOutcome::Quiesced { cycles } => cycles,
            RunOutcome::OutOfCycles => panic!("did not quiesce at level {level}"),
        }
    };
    let c0 = cycles_for(0);
    let c1 = cycles_for(1);
    let c2 = cycles_for(2);
    assert!(c1 > c0, "level1 ({c1}) should be slower than level0 ({c0})");
    assert!(c2 > c1, "level2 ({c2}) should be slower than level1 ({c1})");
}
