//! Property-based tests: ISA encode/decode and RTL-vs-golden execution
//! on randomized programs.

use apollo_cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
use apollo_cpu::{
    build_cpu, AluOp, BranchCond, CpuConfig, CpuSim, GoldenModel, GoldenOutcome, Inst, RunOutcome,
    VecOp, Vr, Xr,
};
use apollo_rtl::CapModel;
use apollo_sim::PowerConfig;
use proptest::prelude::*;

fn arb_inst() -> impl Strategy<Value = Inst> {
    let xr = || (0u8..16).prop_map(Xr);
    let vr = || (0u8..8).prop_map(Vr);
    let alu_op = prop::sample::select(AluOp::ALL.to_vec());
    let vec_op = prop::sample::select(VecOp::ALL.to_vec());
    let cond = prop::sample::select(vec![BranchCond::Eq, BranchCond::Ne, BranchCond::Lt]);
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (0u8..4).prop_map(|level| Inst::Throttle { level }),
        (alu_op.clone(), xr(), xr(), xr()).prop_map(|(op, rd, ra, rb)| Inst::Alu {
            op,
            rd,
            ra,
            rb
        }),
        (alu_op, xr(), xr(), 0u16..(1 << 14)).prop_map(|(op, rd, ra, imm)| Inst::AluImm {
            op,
            rd,
            ra,
            imm
        }),
        (xr(), 0u16..(1 << 14)).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (xr(), xr(), xr()).prop_map(|(rd, ra, rb)| Inst::Mul { rd, ra, rb }),
        (xr(), xr(), xr()).prop_map(|(rd, ra, rb)| Inst::Div { rd, ra, rb }),
        (xr(), xr(), 0u16..(1 << 14)).prop_map(|(rd, ra, imm)| Inst::Lw { rd, ra, imm }),
        (xr(), xr(), 0u16..(1 << 14)).prop_map(|(rb, ra, imm)| Inst::Sw { rb, ra, imm }),
        (cond, xr(), xr(), -(1i16 << 13)..(1 << 13)).prop_map(|(cond, ra, rb, offset)| {
            Inst::Branch {
                cond,
                ra,
                rb,
                offset,
            }
        }),
        (-(1i16 << 13)..(1i16 << 13)).prop_map(|offset| Inst::Jump { offset }),
        (vec_op, vr(), vr(), vr()).prop_map(|(op, vd, va, vb)| Inst::Vec { op, vd, va, vb }),
        (vr(), xr(), 0u16..(1 << 14)).prop_map(|(vd, ra, imm)| Inst::Vld { vd, ra, imm }),
        (vr(), xr(), 0u16..(1 << 14)).prop_map(|(vb, ra, imm)| Inst::Vst { vb, ra, imm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every instruction round-trips through its 32-bit encoding.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        prop_assert_eq!(Inst::decode(inst.encode()), inst);
    }

    /// Decoding arbitrary 32-bit words never panics, and re-encoding the
    /// decoded instruction is a fixed point.
    #[test]
    fn decode_is_total_and_stable(word in any::<u32>()) {
        let inst = Inst::decode(word);
        let recoded = inst.encode();
        prop_assert_eq!(Inst::decode(recoded), inst);
    }
}

proptest! {
    // RTL simulation is comparatively expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized constrained programs behave identically on the RTL CPU
    /// and the architectural golden model.
    #[test]
    fn rtl_matches_golden_on_random_programs(seed in any::<u64>(), len in 8usize..48) {
        let config = CpuConfig::tiny();
        // Build once per process (static) to keep the test fast.
        use std::sync::OnceLock;
        static HANDLES: OnceLock<(apollo_cpu::CpuHandles, apollo_rtl::CapAnnotation)> = OnceLock::new();
        let (handles, cap) = HANDLES.get_or_init(|| {
            let h = build_cpu(&CpuConfig::tiny()).unwrap();
            let c = CapModel::default().annotate(&h.netlist);
            (h, c)
        });

        let body = random_body(seed, len, &GenWeights::default());
        let program = wrap_body(&body, 3);
        let data: Vec<u64> = (0..config.dram_words as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ seed)
            .collect();

        let mut golden = GoldenModel::new(config.dram_words as usize);
        golden.mem.copy_from_slice(&data);
        let out = golden.run(&program, 3_000_000);
        prop_assert!(matches!(out, GoldenOutcome::Halted { executed: _ }), "golden did not halt");

        let mut rtl = CpuSim::new(handles, cap, PowerConfig::default(), &program, &data);
        let out = rtl.run(1_500_000);
        prop_assert!(matches!(out, RunOutcome::Quiesced { cycles: _ }), "rtl did not quiesce");

        for i in 1..16 {
            prop_assert_eq!(rtl.xreg(i), golden.xregs[i], "x{} mismatch", i);
        }
        for v in 0..8 {
            let g = golden.vregs[v];
            prop_assert_eq!(rtl.vreg(v)[0], (g[0] as u64) | ((g[1] as u64) << 32));
            prop_assert_eq!(rtl.vreg(v)[1], (g[2] as u64) | ((g[3] as u64) << 32));
        }
        for addr in (0..config.dram_words).step_by(7) {
            prop_assert_eq!(rtl.mem_word(addr), golden.mem[addr as usize]);
        }
    }
}
