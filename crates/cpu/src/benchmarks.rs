//! Workload library: the paper's Table 4 designer-handcrafted testing
//! micro-benchmarks, longer workloads for the emulator-assisted flow,
//! and constrained random-program generation for GA training data.

use crate::asm::Asm;
use crate::config::CpuConfig;
use crate::isa::{AluOp, Inst, VecOp, Vr, Xr};

/// A named workload with its recording window, mirroring Table 4 of the
/// paper (names and per-benchmark trace lengths).
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (Table 4 vocabulary).
    pub name: String,
    /// Assembled program.
    pub program: Vec<Inst>,
    /// Initial data-memory contents.
    pub data: Vec<u64>,
    /// Number of cycles to record for evaluation.
    pub cycles: usize,
}

impl Benchmark {
    fn new(name: &str, program: Vec<Inst>, data: Vec<u64>, cycles: usize) -> Self {
        Benchmark {
            name: name.to_owned(),
            program,
            data,
            cycles,
        }
    }
}

/// Deterministic data pattern for memory initialisation.
fn pattern(words: usize, seed: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(words);
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..words {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        v.push(s);
    }
    v
}

/// Emits `count` iterations as a counted loop: `body` is emitted once and
/// looped `count` times using `ctr` as the induction register.
fn counted_loop(a: &mut Asm, ctr: Xr, count: u16, body: impl FnOnce(&mut Asm)) {
    a.addi(ctr, Xr(0), count);
    let one = Xr(15);
    a.addi(one, Xr(0), 1);
    let top = a.label();
    body(a);
    a.sub(ctr, ctr, one);
    a.bne(ctr, Xr(0), top);
}

/// The classic integer benchmark: a mix of ALU, branches, loads/stores
/// in a moderate loop (stand-in for `dhrystone`).
pub fn dhrystone() -> Benchmark {
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 5);
    a.addi(Xr(3), Xr(0), 17);
    counted_loop(&mut a, Xr(1), 60, |a| {
        a.add(Xr(4), Xr(2), Xr(3));
        a.xor(Xr(5), Xr(4), Xr(2));
        a.shli(Xr(6), Xr(5), 3);
        a.sw(Xr(6), Xr(0), 8);
        a.lw(Xr(7), Xr(0), 8);
        a.sub(Xr(8), Xr(7), Xr(3));
        a.alu(AluOp::Slt, Xr(9), Xr(8), Xr(4));
        a.or(Xr(2), Xr(2), Xr(9));
        a.addi(Xr(3), Xr(3), 3);
        a.and(Xr(4), Xr(3), Xr(6));
    });
    a.halt();
    Benchmark::new("dhrystone", a.assemble(), pattern(64, 1), 1222)
}

/// Worst-case core power: all function units kept busy (vector MAC +
/// multiplier + ALUs + D-cache hits), the GA power-virus shape.
pub fn maxpwr_cpu() -> Benchmark {
    let mut a = Asm::new();
    // Preload vectors with dense data.
    a.addi(Xr(2), Xr(0), 0);
    a.vld(Vr(0), Xr(2), 0);
    a.vld(Vr(1), Xr(2), 2);
    a.vld(Vr(2), Xr(2), 4);
    a.load_const(Xr(3), 0xA5A5_5A5A_DEAD_BEEF);
    a.load_const(Xr(4), 0x0123_4567_89AB_CDEF);
    counted_loop(&mut a, Xr(1), 40, |a| {
        a.vec(VecOp::VMac, Vr(2), Vr(0), Vr(1));
        a.mul(Xr(5), Xr(3), Xr(4));
        a.xor(Xr(6), Xr(3), Xr(4));
        a.add(Xr(7), Xr(5), Xr(6));
        a.vec(VecOp::VMul, Vr(3), Vr(1), Vr(2));
        a.sub(Xr(8), Xr(7), Xr(3));
        a.lw(Xr(9), Xr(0), 1);
        a.shri(Xr(10), Xr(8), 7);
        a.vec(VecOp::VAdd, Vr(4), Vr(2), Vr(3));
        a.or(Xr(3), Xr(10), Xr(9));
    });
    a.halt();
    Benchmark::new("maxpwr_cpu", a.assemble(), pattern(64, 2), 600)
}

/// Loads that always miss L1 (conflict pattern) but hit L2.
pub fn dcache_miss(config: &CpuConfig) -> Benchmark {
    let stride = config.dcache_lines as u16; // same set, alternating tags
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0); // address A
    a.addi(Xr(3), Xr(0), stride); // address B (conflicts with A)
    counted_loop(&mut a, Xr(1), 40, |a| {
        a.lw(Xr(4), Xr(2), 0);
        a.lw(Xr(5), Xr(3), 0);
        a.add(Xr(6), Xr(4), Xr(5));
    });
    a.halt();
    Benchmark::new(
        "dcache_miss",
        a.assemble(),
        pattern(2 * config.dcache_lines as usize + 4, 3),
        654,
    )
}

/// SIMD SAXPY: `y[i] = a*x[i] + y[i]` over vectors.
pub fn saxpy_simd() -> Benchmark {
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0); // x base
    a.addi(Xr(3), Xr(0), 32); // y base
    a.vld(Vr(0), Xr(0), 62); // the "a" coefficient vector
    counted_loop(&mut a, Xr(1), 30, |a| {
        a.vld(Vr(1), Xr(2), 0);
        a.vld(Vr(2), Xr(3), 0);
        a.vec(VecOp::VMac, Vr(2), Vr(0), Vr(1));
        a.vst(Vr(2), Xr(3), 0);
        a.addi(Xr(2), Xr(2), 2);
        a.addi(Xr(3), Xr(3), 2);
        a.andi_wrap(Xr(2), 30);
        a.andi_wrap_base(Xr(3), 30, 32);
    });
    a.halt();
    Benchmark::new("saxpy_simd", a.assemble(), pattern(64, 4), 1986)
}

/// Worst-case L2 power: every access misses L1 and hits L2, plus vector
/// background activity.
pub fn maxpwr_l2(config: &CpuConfig) -> Benchmark {
    let stride = config.dcache_lines as u16;
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0);
    a.addi(Xr(3), Xr(0), stride);
    a.vld(Vr(0), Xr(0), 0);
    a.vld(Vr(1), Xr(0), 2);
    counted_loop(&mut a, Xr(1), 40, |a| {
        a.lw(Xr(4), Xr(2), 0);
        a.vec(VecOp::VMac, Vr(1), Vr(0), Vr(1));
        a.lw(Xr(5), Xr(3), 0);
        a.vec(VecOp::VMul, Vr(2), Vr(1), Vr(0));
        a.add(Xr(6), Xr(4), Xr(5));
    });
    a.halt();
    Benchmark::new(
        "maxpwr_l2",
        a.assemble(),
        pattern(2 * config.dcache_lines as usize + 4, 5),
        1568,
    )
}

/// Straight-line code footprint twice the I-cache, looped: every fetch
/// misses.
pub fn icache_miss(config: &CpuConfig) -> Benchmark {
    let body_len = (2 * config.icache_lines) as usize;
    let mut a = Asm::new();
    a.addi(Xr(1), Xr(0), 6);
    let one = Xr(15);
    a.addi(one, Xr(0), 1);
    let top = a.label();
    for i in 0..body_len {
        // cheap ALU filler with some variety
        match i % 4 {
            0 => {
                a.addi(Xr(2), Xr(2), 1);
            }
            1 => {
                a.xori(Xr(3), Xr(2), 0x55);
            }
            2 => {
                a.shli(Xr(4), Xr(3), 1);
            }
            _ => {
                a.or(Xr(5), Xr(4), Xr(2));
            }
        };
    }
    a.sub(Xr(1), Xr(1), one);
    a.bne(Xr(1), Xr(0), top);
    a.halt();
    Benchmark::new("icache_miss", a.assemble(), vec![], 800)
}

/// Loads that miss both L1 and L2 (DRAM-bound).
pub fn cache_miss(config: &CpuConfig) -> Benchmark {
    let stride = config.l2_lines as u16; // same L2 set, alternating tags
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0);
    a.addi(Xr(3), Xr(0), stride);
    counted_loop(&mut a, Xr(1), 14, |a| {
        a.lw(Xr(4), Xr(2), 0);
        a.lw(Xr(5), Xr(3), 0);
        a.xor(Xr(6), Xr(4), Xr(5));
    });
    a.halt();
    Benchmark::new(
        "cache_miss",
        a.assemble(),
        pattern((config.l2_lines as usize + 4).min(4096), 6),
        600,
    )
}

/// Scalar DAXPY: `y[i] = a*x[i] + y[i]` with the iterative multiplier.
pub fn daxpy() -> Benchmark {
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0); // x base
    a.addi(Xr(3), Xr(0), 32); // y base
    a.load_const(Xr(4), 0x9E37_79B9);
    counted_loop(&mut a, Xr(1), 45, |a| {
        a.lw(Xr(5), Xr(2), 0);
        a.mul(Xr(6), Xr(5), Xr(4));
        a.lw(Xr(7), Xr(3), 0);
        a.add(Xr(8), Xr(6), Xr(7));
        a.sw(Xr(8), Xr(3), 0);
        a.addi(Xr(2), Xr(2), 1);
        a.addi(Xr(3), Xr(3), 1);
        a.andi_wrap(Xr(2), 31);
        a.andi_wrap_base(Xr(3), 31, 32);
    });
    a.halt();
    Benchmark::new("daxpy", a.assemble(), pattern(64, 7), 1600)
}

/// Block copy sized past the D-cache (L2-resident working set).
pub fn memcpy_l2(config: &CpuConfig) -> Benchmark {
    let block = (2 * config.dcache_lines) as u16;
    let mut a = Asm::new();
    a.addi(Xr(2), Xr(0), 0); // src
    a.addi(Xr(3), Xr(0), block); // dst
    a.addi(Xr(4), Xr(0), 0); // index
    let blk = Xr(14);
    a.addi(blk, Xr(0), block);
    counted_loop(&mut a, Xr(1), 3, |a| {
        let inner = a.label();
        a.add(Xr(5), Xr(2), Xr(4));
        a.lw(Xr(6), Xr(5), 0);
        a.add(Xr(7), Xr(3), Xr(4));
        a.sw(Xr(6), Xr(7), 0);
        a.addi(Xr(4), Xr(4), 1);
        a.blt(Xr(4), blk, inner);
        a.addi(Xr(4), Xr(0), 0);
    });
    a.halt();
    Benchmark::new(
        "memcpy_l2",
        a.assemble(),
        pattern(2 * block as usize + 8, 8),
        3000,
    )
}

/// The `throttling_{1,2,3}` benchmarks: apply a throttling scheme, then
/// run a maxpwr-like body.
pub fn throttling(level: u8) -> Benchmark {
    assert!((1..=3).contains(&level));
    let mut a = Asm::new();
    a.throttle(level);
    a.vld(Vr(0), Xr(0), 0);
    a.vld(Vr(1), Xr(0), 2);
    a.load_const(Xr(3), 0xF0F0_0F0F_3C3C_C3C3);
    counted_loop(&mut a, Xr(1), 24, |a| {
        a.vec(VecOp::VMac, Vr(1), Vr(0), Vr(1));
        a.mul(Xr(5), Xr(3), Xr(3));
        a.add(Xr(6), Xr(5), Xr(3));
        a.xor(Xr(7), Xr(6), Xr(5));
        a.lw(Xr(8), Xr(0), 1);
    });
    a.halt();
    Benchmark::new(
        &format!("throttling_{level}"),
        a.assemble(),
        pattern(32, 9 + level as u64),
        1100,
    )
}

/// The full Table 4 testing suite for a design configuration.
pub fn table4_suite(config: &CpuConfig) -> Vec<Benchmark> {
    vec![
        dhrystone(),
        maxpwr_cpu(),
        dcache_miss(config),
        saxpy_simd(),
        maxpwr_l2(config),
        icache_miss(config),
        cache_miss(config),
        daxpy(),
        memcpy_l2(config),
        throttling(1),
        throttling(2),
        throttling(3),
    ]
}

/// A long multi-phase workload (stand-in for SPEC2006 `hmmer` in Figure
/// 16): alternating integer-, vector-, and memory-dominated phases with
/// distinct power levels, repeated `phases` times.
pub fn hmmer_like(config: &CpuConfig, phases: u16) -> Benchmark {
    let stride = config.dcache_lines as u16;
    let mut a = Asm::new();
    a.vld(Vr(0), Xr(0), 0);
    a.vld(Vr(1), Xr(0), 2);
    a.load_const(Xr(3), 0xB16B_00B5_CAFE_D00D);
    counted_loop(&mut a, Xr(1), phases, |a| {
        // Phase A: integer.
        counted_loop(a, Xr(2), 24, |a| {
            a.add(Xr(4), Xr(3), Xr(3));
            a.xor(Xr(5), Xr(4), Xr(3));
            a.shri(Xr(6), Xr(5), 3);
            a.sub(Xr(3), Xr(6), Xr(4));
        });
        // Phase B: vector-heavy (high power).
        counted_loop(a, Xr(2), 20, |a| {
            a.vec(VecOp::VMac, Vr(1), Vr(0), Vr(1));
            a.vec(VecOp::VMul, Vr(2), Vr(1), Vr(0));
            a.mul(Xr(7), Xr(3), Xr(3));
            a.vec(VecOp::VAdd, Vr(3), Vr(2), Vr(1));
        });
        // Phase C: memory-bound (low core power, cache misses).
        a.addi(Xr(8), Xr(0), 0);
        a.addi(Xr(9), Xr(0), stride);
        counted_loop(a, Xr(2), 10, |a| {
            a.lw(Xr(10), Xr(8), 0);
            a.lw(Xr(11), Xr(9), 0);
            a.add(Xr(12), Xr(10), Xr(11));
        });
        // Phase D: idle-ish (throttled NOPs).
        counted_loop(a, Xr(2), 12, |a| {
            a.nop();
            a.nop();
        });
    });
    a.halt();
    Benchmark::new(
        "hmmer_like",
        a.assemble(),
        pattern(2 * stride as usize + 8, 42),
        0, // caller chooses the window
    )
}

impl Asm {
    /// Helper used by streaming kernels: wrap an index register to
    /// `[0, limit]` by AND-masking (limit must be a power-of-two minus 1).
    fn andi_wrap(&mut self, r: Xr, limit: u16) {
        self.push(Inst::AluImm {
            op: AluOp::And,
            rd: r,
            ra: r,
            imm: limit,
        });
    }

    /// Wrap `(r - base)` to `[0, limit]`, then add `base` back.
    fn andi_wrap_base(&mut self, r: Xr, limit: u16, base: u16) {
        // r = ((r - base) & limit) + base
        self.push(Inst::AluImm {
            op: AluOp::Sub,
            rd: r,
            ra: r,
            imm: base,
        });
        self.andi_wrap(r, limit);
        self.push(Inst::AluImm {
            op: AluOp::Add,
            rd: r,
            ra: r,
            imm: base,
        });
    }
}

/// Constrained random program generation for GA training data.
///
/// Programs are straight-line bodies wrapped in a counted outer loop, so
/// they always halt; branches inside the body are never emitted, keeping
/// crossover/mutation closed over valid programs (the paper's
/// "constrained set of instructions").
pub mod random {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Instruction classes a generator may draw from, with weights.
    #[derive(Clone, Debug, PartialEq)]
    pub struct GenWeights {
        /// Weight of scalar ALU ops.
        pub alu: f64,
        /// Weight of multiplies.
        pub mul: f64,
        /// Weight of divides.
        pub div: f64,
        /// Weight of loads.
        pub load: f64,
        /// Weight of stores.
        pub store: f64,
        /// Weight of vector ops.
        pub vec: f64,
        /// Weight of vector loads/stores.
        pub vmem: f64,
        /// Weight of NOPs.
        pub nop: f64,
        /// Weight of THROTTLE hints (duty-cycled issue).
        pub throttle: f64,
    }

    impl Default for GenWeights {
        fn default() -> Self {
            GenWeights {
                alu: 4.0,
                mul: 1.0,
                div: 0.4,
                load: 1.5,
                store: 1.0,
                vec: 2.0,
                vmem: 0.8,
                nop: 1.0,
                throttle: 0.15,
            }
        }
    }

    /// Draws one random body instruction.
    pub fn random_inst(rng: &mut StdRng, w: &GenWeights) -> Inst {
        let total = w.alu + w.mul + w.div + w.load + w.store + w.vec + w.vmem + w.nop + w.throttle;
        let mut x = rng.gen_range(0.0..total);
        let xr = |rng: &mut StdRng| Xr(rng.gen_range(0..16));
        let xr_nz = |rng: &mut StdRng| Xr(rng.gen_range(1..16));
        let vr = |rng: &mut StdRng| Vr(rng.gen_range(0..8));
        x -= w.alu;
        if x < 0.0 {
            let op = AluOp::ALL[rng.gen_range(0..8usize)];
            if rng.gen_bool(0.5) {
                return Inst::Alu {
                    op,
                    rd: xr_nz(rng),
                    ra: xr(rng),
                    rb: xr(rng),
                };
            }
            return Inst::AluImm {
                op,
                rd: xr_nz(rng),
                ra: xr(rng),
                imm: rng.gen_range(0..1 << 14),
            };
        }
        x -= w.mul;
        if x < 0.0 {
            return Inst::Mul {
                rd: xr_nz(rng),
                ra: xr(rng),
                rb: xr(rng),
            };
        }
        x -= w.div;
        if x < 0.0 {
            return Inst::Div {
                rd: xr_nz(rng),
                ra: xr(rng),
                rb: xr(rng),
            };
        }
        x -= w.load;
        if x < 0.0 {
            return Inst::Lw {
                rd: xr_nz(rng),
                ra: xr(rng),
                imm: rng.gen_range(0..256),
            };
        }
        x -= w.store;
        if x < 0.0 {
            return Inst::Sw {
                rb: xr(rng),
                ra: xr(rng),
                imm: rng.gen_range(0..256),
            };
        }
        x -= w.vec;
        if x < 0.0 {
            let op = VecOp::ALL[rng.gen_range(0..4usize)];
            return Inst::Vec {
                op,
                vd: vr(rng),
                va: vr(rng),
                vb: vr(rng),
            };
        }
        x -= w.vmem;
        if x < 0.0 {
            if rng.gen_bool(0.5) {
                return Inst::Vld {
                    vd: vr(rng),
                    ra: xr(rng),
                    imm: rng.gen_range(0..128),
                };
            }
            return Inst::Vst {
                vb: vr(rng),
                ra: xr(rng),
                imm: rng.gen_range(0..128),
            };
        }
        x -= w.nop;
        if x < 0.0 {
            return Inst::Nop;
        }
        Inst::Throttle {
            level: rng.gen_range(0..4),
        }
    }

    /// Generates a random straight-line body of `len` instructions.
    pub fn random_body(seed: u64, len: usize, w: &GenWeights) -> Vec<Inst> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| random_inst(&mut rng, w)).collect()
    }

    /// Wraps a body in the standard GA harness: seed registers with
    /// varied data, loop the body `reps` times, halt.
    pub fn wrap_body(body: &[Inst], reps: u16) -> Vec<Inst> {
        let mut a = Asm::new();
        // Seed registers with rich 64-bit data from memory (the data
        // pattern is preloaded by the harness) — a short preamble so
        // fitness windows measure the body, not setup code.
        a.lw(Xr(3), Xr(0), 0);
        a.lw(Xr(4), Xr(0), 1);
        a.lw(Xr(5), Xr(0), 2);
        a.lw(Xr(6), Xr(0), 3);
        a.vld(Vr(0), Xr(0), 4);
        a.vld(Vr(1), Xr(0), 6);
        counted_loop(&mut a, Xr(1), reps, |a| {
            for &inst in body {
                // Never let the GA overwrite the loop counter (x1) or
                // the loop-step constant (x15).
                let inst = remap_away_from(inst);
                a.push(inst);
            }
        });
        a.halt();
        a.assemble()
    }

    /// Remaps destination registers away from the loop-control registers
    /// (`x1` counter and `x15` step constant).
    fn remap_away_from(inst: Inst) -> Inst {
        let fix = |r: Xr| if r == Xr(1) || r == Xr(15) { Xr(2) } else { r };
        match inst {
            Inst::Alu { op, rd, ra, rb } => Inst::Alu {
                op,
                rd: fix(rd),
                ra,
                rb,
            },
            Inst::AluImm { op, rd, ra, imm } => Inst::AluImm {
                op,
                rd: fix(rd),
                ra,
                imm,
            },
            Inst::Lui { rd, imm } => Inst::Lui { rd: fix(rd), imm },
            Inst::Mul { rd, ra, rb } => Inst::Mul {
                rd: fix(rd),
                ra,
                rb,
            },
            Inst::Div { rd, ra, rb } => Inst::Div {
                rd: fix(rd),
                ra,
                rb,
            },
            Inst::Lw { rd, ra, imm } => Inst::Lw {
                rd: fix(rd),
                ra,
                imm,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{GoldenModel, GoldenOutcome};

    #[test]
    fn all_table4_benchmarks_halt_on_golden_model() {
        let config = CpuConfig::tiny();
        for bench in table4_suite(&config) {
            let mut g = GoldenModel::new(config.dram_words as usize);
            g.mem[..bench.data.len()].copy_from_slice(&bench.data);
            let out = g.run(&bench.program, 2_000_000);
            assert!(
                matches!(out, GoldenOutcome::Halted { .. }),
                "{} did not halt",
                bench.name
            );
        }
    }

    #[test]
    fn table4_has_twelve_benchmarks_with_paper_names() {
        let suite = table4_suite(&CpuConfig::tiny());
        assert_eq!(suite.len(), 12);
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        for expected in [
            "dhrystone",
            "maxpwr_cpu",
            "dcache_miss",
            "saxpy_simd",
            "maxpwr_l2",
            "icache_miss",
            "cache_miss",
            "daxpy",
            "memcpy_l2",
            "throttling_1",
            "throttling_2",
            "throttling_3",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn hmmer_like_halts() {
        let config = CpuConfig::tiny();
        let bench = hmmer_like(&config, 3);
        let mut g = GoldenModel::new(config.dram_words as usize);
        g.mem[..bench.data.len()].copy_from_slice(&bench.data);
        assert!(matches!(
            g.run(&bench.program, 2_000_000),
            GoldenOutcome::Halted { .. }
        ));
    }

    #[test]
    fn random_bodies_always_halt_when_wrapped() {
        let w = random::GenWeights::default();
        for seed in 0..20 {
            let body = random::random_body(seed, 40, &w);
            let prog = random::wrap_body(&body, 5);
            let mut g = GoldenModel::new(1024);
            assert!(
                matches!(g.run(&prog, 1_000_000), GoldenOutcome::Halted { .. }),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn random_generation_is_deterministic() {
        let w = random::GenWeights::default();
        assert_eq!(
            random::random_body(7, 30, &w),
            random::random_body(7, 30, &w)
        );
    }
}
