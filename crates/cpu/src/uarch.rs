//! The RTL micro-architecture of the synthetic CPU.
//!
//! A single-issue, scoreboarded core with out-of-order completion:
//! fetch with an I-cache and refill FSM, an issue queue, per-register
//! busy bits, multiple parallel function units (N scalar ALUs, an
//! iterative multiplier and divider, a 4-lane vector unit, a load/store
//! unit with write-through D-cache and unified L2 backed by a DRAM
//! model), a two-port writeback arbiter, unit-level clock gating, and
//! per-unit staging/debug register chains.
//!
//! The design intentionally exhibits the structure the APOLLO paper's
//! proxy selection exploits: activity is strongly correlated within
//! clock-gated functional units, and gated-clock enables summarize large
//! groups of register clock pins.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use crate::config::CpuConfig;
use crate::isa::opcode;
use apollo_rtl::{ClockId, MemId, Netlist, NetlistBuilder, NodeId, RtlError, Unit, CLOCK_ROOT};

/// Width of the program counter in bits.
pub const PC_W: u8 = 16;
/// Width of physical data addresses in bits.
pub const ADDR_W: u8 = 24;

/// Handles into the built CPU netlist, used by the simulation harness.
#[derive(Clone, Debug)]
pub struct CpuHandles {
    /// The finished netlist.
    pub netlist: Netlist,
    /// The configuration it was built from.
    pub config: CpuConfig,
    /// Instruction memory (program image backing store).
    pub imem: MemId,
    /// Data memory (DRAM model backing store).
    pub dram: MemId,
    /// Program counter.
    pub pc: NodeId,
    /// Set once `HALT` issues.
    pub halted: NodeId,
    /// High once halted *and* the pipeline has fully drained.
    pub quiesced: NodeId,
    /// Retired (issued) instruction counter.
    pub retired: NodeId,
    /// Free-running cycle counter.
    pub cycles: NodeId,
    /// Architectural scalar registers `x1 ..= x15` (`x0` is constant 0).
    pub xregs: Vec<NodeId>,
    /// Architectural vector registers as `[low64, high64]` halves.
    pub vregs: Vec<[NodeId; 2]>,
    /// Current throttle level register.
    pub throttle: NodeId,
    /// External throttle-override enable input.
    pub throttle_override_en: NodeId,
    /// External throttle-override level input (2 bits).
    pub throttle_override: NodeId,
}

struct Fu {
    /// Always-on valid/busy flag.
    valid: NodeId,
    /// Gated clock domain of the datapath.
    clock: ClockId,
    /// Gate enable (for reuse in staging chains).
    grant: NodeId,
}

/// `lo <= x <= hi` for an unsigned node and constant bounds.
fn in_range(b: &mut NetlistBuilder, x: NodeId, lo: u64, hi: u64) -> NodeId {
    let w = b.width(x);
    let lo_c = b.constant(lo, w);
    let below = b.ult(x, lo_c); // x < lo
    let ge = b.not(below);
    let hi1 = b.constant(hi, w);
    let above = b.ult(hi1, x); // hi < x
    let le = b.not(above);
    b.and(ge, le)
}

fn eq_const(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let w = b.width(x);
    let c = b.constant(v, w);
    b.eq(x, c)
}

fn ne_const(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let e = eq_const(b, x, v);
    b.not(e)
}

/// Sign-extends `x` from its width to `to` bits.
fn sext(b: &mut NetlistBuilder, x: NodeId, to: u8) -> NodeId {
    let from = b.width(x);
    assert!(to > from);
    let sign = b.bit(x, from - 1);
    let zeros = b.constant(0, to - from);
    let ones = b.constant(apollo_rtl_mask(to - from), to - from);
    let ext = b.mux(sign, ones, zeros);
    b.concat(ext, x)
}

fn apollo_rtl_mask(w: u8) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

fn add_const(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let w = b.width(x);
    let c = b.constant(v & apollo_rtl_mask(w), w);
    b.add(x, c)
}

fn sub_const(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let w = b.width(x);
    let c = b.constant(v & apollo_rtl_mask(w), w);
    b.sub(x, c)
}

/// OR of a list of 1-bit signals.
fn any(b: &mut NetlistBuilder, xs: &[NodeId]) -> NodeId {
    let mut acc = xs[0];
    for &x in &xs[1..] {
        acc = b.or(acc, x);
    }
    acc
}

fn and3(b: &mut NetlistBuilder, x: NodeId, y: NodeId, z: NodeId) -> NodeId {
    let xy = b.and(x, y);
    b.and(xy, z)
}

fn andn(b: &mut NetlistBuilder, x: NodeId, y_inverted: NodeId) -> NodeId {
    let ny = b.not(y_inverted);
    b.and(x, ny)
}

/// Handles for one CPU core inside a (possibly multi-core) netlist.
#[derive(Clone, Debug)]
pub struct CoreHandles {
    /// Instruction memory (program image backing store).
    pub imem: MemId,
    /// Data memory (DRAM model backing store).
    pub dram: MemId,
    /// Program counter.
    pub pc: NodeId,
    /// Set once `HALT` issues.
    pub halted: NodeId,
    /// High once halted *and* the pipeline has fully drained.
    pub quiesced: NodeId,
    /// Retired (issued) instruction counter.
    pub retired: NodeId,
    /// Free-running cycle counter.
    pub cycles: NodeId,
    /// Architectural scalar registers `x1 ..= x15`.
    pub xregs: Vec<NodeId>,
    /// Architectural vector registers as `[low64, high64]` halves.
    pub vregs: Vec<[NodeId; 2]>,
    /// Current throttle level register.
    pub throttle: NodeId,
    /// External input: when 1, the throttle level is taken from
    /// [`CoreHandles::throttle_override`] instead of the architectural
    /// register (used by runtime power-management loops).
    pub throttle_override_en: NodeId,
    /// External input: the override throttle level (2 bits).
    pub throttle_override: NodeId,
}

/// Builds the CPU and returns its netlist plus handles.
///
/// # Errors
/// Propagates netlist construction errors (which would indicate a bug in
/// this generator rather than in user input).
///
/// # Panics
/// Panics if `config` fails [`CpuConfig::validate`].
pub fn build_cpu(config: &CpuConfig) -> Result<CpuHandles, RtlError> {
    let _span = apollo_telemetry::span("cpu.build");
    let mut b = NetlistBuilder::new(config.name.clone());
    let core = build_core(&mut b, config);
    let netlist = b.build()?;
    apollo_telemetry::gauge("cpu.netlist_nodes").set(netlist.len() as f64);
    Ok(CpuHandles {
        netlist,
        config: config.clone(),
        imem: core.imem,
        dram: core.dram,
        pc: core.pc,
        halted: core.halted,
        quiesced: core.quiesced,
        retired: core.retired,
        cycles: core.cycles,
        xregs: core.xregs,
        vregs: core.vregs,
        throttle: core.throttle,
        throttle_override_en: core.throttle_override_en,
        throttle_override: core.throttle_override,
    })
}

/// Elaborates one core into an existing builder (used directly by
/// [`crate::build_soc`] for multi-core designs; wrap names with
/// [`NetlistBuilder::push_scope`] to namespace cores).
///
/// # Panics
/// Panics if `config` fails [`CpuConfig::validate`].
pub fn build_core(b: &mut NetlistBuilder, config: &CpuConfig) -> CoreHandles {
    config.validate();
    let c = config.clone();
    let depth = c.queue_depth as usize;
    let qidx_w: u8 = (c.queue_depth.trailing_zeros() as u8).max(1);
    let ib: u8 = c.icache_lines.trailing_zeros() as u8; // icache index bits
    let itag_w: u8 = PC_W - ib;
    // The cached (physical) address space must equal the DRAM size:
    // the DRAM model wraps addresses, so a wider tag space would let two
    // tags alias one physical word and serve stale data.
    let phys_w: u8 = (c.dram_words.trailing_zeros() as u8).min(ADDR_W);
    let db: u8 = c.dcache_lines.trailing_zeros() as u8;
    let dtag_w: u8 = phys_w - db;
    let l2b: u8 = c.l2_lines.trailing_zeros() as u8;
    let l2tag_w: u8 = phys_w - l2b;
    let n_alus = c.num_alus as usize;

    // ---- P0/P1: memories and always-on architectural + control state ----
    b.set_unit(Unit::Fetch);
    let imem = b.memory(c.imem_words, 32, "imem", Unit::Fetch);
    b.set_unit(Unit::LoadStore);
    let dram = b.memory(c.dram_words, 64, "dram", Unit::L2);
    let dcache_data = b.memory(c.dcache_lines, 64, "dcache_data", Unit::LoadStore);
    b.set_unit(Unit::L2);
    let l2_data = b.memory(c.l2_lines, 64, "l2_data", Unit::L2);

    b.set_unit(Unit::Fetch);
    let pc = b.reg(PC_W, 0, CLOCK_ROOT, "fetch/pc", Unit::Fetch);
    let fstate = b.reg(1, 0, CLOCK_ROOT, "fetch/miss_state", Unit::Fetch);
    let miss_ctr = b.reg(8, 0, CLOCK_ROOT, "fetch/miss_ctr", Unit::Fetch);
    b.set_unit(Unit::Issue);
    let q_instr: Vec<NodeId> = (0..depth)
        .map(|i| b.reg(32, 0, CLOCK_ROOT, &format!("issue/q{i}_instr"), Unit::Issue))
        .collect();
    let q_pc: Vec<NodeId> = (0..depth)
        .map(|i| b.reg(PC_W, 0, CLOCK_ROOT, &format!("issue/q{i}_pc"), Unit::Issue))
        .collect();
    let q_head = b.reg(qidx_w, 0, CLOCK_ROOT, "issue/q_head", Unit::Issue);
    let q_count = b.reg(4, 0, CLOCK_ROOT, "issue/q_count", Unit::Issue);
    let xbusy = b.reg(16, 0, CLOCK_ROOT, "issue/xbusy", Unit::Issue);
    let vbusy = b.reg(8, 0, CLOCK_ROOT, "issue/vbusy", Unit::Issue);

    b.set_unit(Unit::Control);
    let halted = b.reg(1, 0, CLOCK_ROOT, "ctrl/halted", Unit::Control);
    let throttle = b.reg(2, 0, CLOCK_ROOT, "ctrl/throttle", Unit::Control);
    let throttle_override_en = b.input(1, "ctrl/thr_ov_en", Unit::Control);
    let throttle_override = b.input(2, "ctrl/thr_ov", Unit::Control);
    let throttle_eff = b.mux(throttle_override_en, throttle_override, throttle);
    b.name(throttle_eff, "ctrl/throttle_eff", Unit::Control);
    let thr_ctr = b.reg(3, 0, CLOCK_ROOT, "ctrl/thr_ctr", Unit::Control);
    let cycles = b.reg(16, 0, CLOCK_ROOT, "ctrl/cycles", Unit::Control);
    let retired = b.reg(24, 0, CLOCK_ROOT, "ctrl/retired", Unit::Control);

    // FU always-on valid flags + LSU master state (created early so
    // conservative clock-gate enables for the big register arrays can be
    // derived from them — real RTL gates register files and tag arrays
    // the same way, with enables that may be pessimistically on but are
    // never wrongly off).
    b.set_unit(Unit::Issue);
    let alu_v: Vec<NodeId> = (0..n_alus)
        .map(|i| b.reg(1, 0, CLOCK_ROOT, &format!("issue/alu{i}_busy"), Unit::Issue))
        .collect();
    let mul_v = b.reg(1, 0, CLOCK_ROOT, "issue/mul_busy", Unit::Issue);
    let div_v = b.reg(1, 0, CLOCK_ROOT, "issue/div_busy", Unit::Issue);
    let vec_v = b.reg(1, 0, CLOCK_ROOT, "issue/vec_busy", Unit::Issue);
    b.set_unit(Unit::LoadStore);
    let lsu_state = b.reg(3, 0, CLOCK_ROOT, "lsu/state", Unit::LoadStore);
    let lsu_busy_flag = ne_const(&mut *b, lsu_state, 0);

    // Conservative gate enables.
    b.set_unit(Unit::ClockTree);
    let any_scalar_fu = {
        let mut e = mul_v;
        for &v in &alu_v {
            e = b.or(e, v);
        }
        let e = b.or(e, div_v);
        b.or(e, lsu_busy_flag)
    };
    let clk_xrf = b.clock_gate(any_scalar_fu, "clk/xrf", Unit::ClockTree);
    let vrf_en = b.or(vec_v, lsu_busy_flag);
    let clk_vrf = b.clock_gate(vrf_en, "clk/vrf", Unit::ClockTree);
    let clk_dtag = b.clock_gate(lsu_busy_flag, "clk/dtag", Unit::ClockTree);
    let clk_l2tag = b.clock_gate(lsu_busy_flag, "clk/l2tag", Unit::ClockTree);
    let fmiss_en = b.bit(fstate, 0);
    let clk_icache = b.clock_gate(fmiss_en, "clk/icache", Unit::ClockTree);

    b.set_unit(Unit::Fetch);
    let itag: Vec<NodeId> = (0..c.icache_lines)
        .map(|i| {
            b.reg(
                itag_w + 1,
                0,
                clk_icache,
                &format!("fetch/itag{i}"),
                Unit::Fetch,
            )
        })
        .collect();
    let idata: Vec<NodeId> = (0..c.icache_lines)
        .map(|i| b.reg(32, 0, clk_icache, &format!("fetch/idata{i}"), Unit::Fetch))
        .collect();

    b.set_unit(Unit::RegFile);
    let xregs: Vec<NodeId> = (1..16)
        .map(|i| b.reg(64, 0, clk_xrf, &format!("rf/x{i}"), Unit::RegFile))
        .collect();
    let vregs: Vec<[NodeId; 2]> = (0..8)
        .map(|i| {
            [
                b.reg(64, 0, clk_vrf, &format!("rf/v{i}_lo"), Unit::RegFile),
                b.reg(64, 0, clk_vrf, &format!("rf/v{i}_hi"), Unit::RegFile),
            ]
        })
        .collect();

    // D-cache / L2 tag arrays (read combinationally; clocked only while
    // the LSU is active, which covers every fill).
    b.set_unit(Unit::LoadStore);
    let dtag: Vec<NodeId> = (0..c.dcache_lines)
        .map(|i| {
            b.reg(
                dtag_w + 1,
                0,
                clk_dtag,
                &format!("lsu/dtag{i}"),
                Unit::LoadStore,
            )
        })
        .collect();
    b.set_unit(Unit::L2);
    let l2tag: Vec<NodeId> = (0..c.l2_lines)
        .map(|i| b.reg(l2tag_w + 1, 0, clk_l2tag, &format!("l2/tag{i}"), Unit::L2))
        .collect();

    // ---- P2: decode of the queue head + register-file reads -------------
    b.set_unit(Unit::Decode);
    let zero1 = b.zero();
    let zero64 = b.constant(0, 64);
    let head_instr = b.select(q_head, &q_instr);
    b.name(head_instr, "decode/instr", Unit::Decode);
    let head_pc = b.select(q_head, &q_pc);
    let op6 = b.slice(head_instr, 26, 6);
    b.name(op6, "decode/op", Unit::Decode);
    let rd = b.slice(head_instr, 22, 4);
    let ra = b.slice(head_instr, 18, 4);
    let rb = b.slice(head_instr, 14, 4);
    let imm14 = b.slice(head_instr, 0, 14);
    let vd3 = b.slice(head_instr, 22, 3);
    let va3 = b.slice(head_instr, 18, 3);
    let vb3 = b.slice(head_instr, 14, 3);

    let is_alu_rr = in_range(
        &mut *b,
        op6,
        opcode::ALU_BASE as u64,
        (opcode::ALU_BASE + 7) as u64,
    );
    let is_alu_imm = in_range(
        &mut *b,
        op6,
        opcode::ALUI_BASE as u64,
        (opcode::ALUI_BASE + 7) as u64,
    );
    let is_lui = eq_const(&mut *b, op6, opcode::LUI as u64);
    let is_mul = eq_const(&mut *b, op6, opcode::MUL as u64);
    let is_div = eq_const(&mut *b, op6, opcode::DIV as u64);
    let is_lw = eq_const(&mut *b, op6, opcode::LW as u64);
    let is_sw = eq_const(&mut *b, op6, opcode::SW as u64);
    let is_beq = eq_const(&mut *b, op6, opcode::BEQ as u64);
    let is_bne = eq_const(&mut *b, op6, opcode::BNE as u64);
    let is_blt = eq_const(&mut *b, op6, opcode::BLT as u64);
    let is_j = eq_const(&mut *b, op6, opcode::J as u64);
    let is_vec = in_range(
        &mut *b,
        op6,
        opcode::VEC_BASE as u64,
        (opcode::VEC_BASE + 3) as u64,
    );
    let is_vld = eq_const(&mut *b, op6, opcode::VLD as u64);
    let is_vst = eq_const(&mut *b, op6, opcode::VST as u64);
    let is_halt = eq_const(&mut *b, op6, opcode::HALT as u64);
    let is_throttle = eq_const(&mut *b, op6, opcode::THROTTLE as u64);
    let is_branch = {
        let t = b.or(is_beq, is_bne);
        b.or(t, is_blt)
    };
    let is_vmac = eq_const(&mut *b, op6, (opcode::VEC_BASE + 3) as u64);

    let needs_alu = {
        let t = b.or(is_alu_rr, is_alu_imm);
        b.or(t, is_lui)
    };
    let needs_lsu = {
        let t = b.or(is_lw, is_sw);
        let u = b.or(is_vld, is_vst);
        b.or(t, u)
    };
    let uses_ra = {
        let t = b.or(is_alu_rr, is_alu_imm);
        let u = b.or(is_mul, is_div);
        let v = b.or(needs_lsu, is_branch);
        let tu = b.or(t, u);
        b.or(tu, v)
    };
    let uses_rb = {
        let t = b.or(is_alu_rr, is_mul);
        let u = b.or(is_div, is_sw);
        let tu = b.or(t, u);
        b.or(tu, is_branch)
    };
    let writes_rd = {
        let t = b.or(is_alu_rr, is_alu_imm);
        let u = b.or(is_lui, is_mul);
        let v = b.or(is_div, is_lw);
        let tu = b.or(t, u);
        b.or(tu, v)
    };
    let writes_vd = b.or(is_vec, is_vld);

    // Scalar register read ports (x0 reads as zero).
    b.set_unit(Unit::RegFile);
    let mut xchoices = vec![zero64];
    xchoices.extend_from_slice(&xregs);
    let ra_val = b.select(ra, &xchoices);
    b.name(ra_val, "rf/ra_val", Unit::RegFile);
    let rb_val = b.select(rb, &xchoices);
    b.name(rb_val, "rf/rb_val", Unit::RegFile);

    // Vector register read ports (3 ports x 2 halves).
    let v_lo: Vec<NodeId> = vregs.iter().map(|v| v[0]).collect();
    let v_hi: Vec<NodeId> = vregs.iter().map(|v| v[1]).collect();
    let va_lo = b.select(va3, &v_lo);
    let va_hi = b.select(va3, &v_hi);
    let vb_lo = b.select(vb3, &v_lo);
    let vb_hi = b.select(vb3, &v_hi);
    let vd_lo = b.select(vd3, &v_lo);
    let vd_hi = b.select(vd3, &v_hi);

    // ---- P3: issue decision ---------------------------------------------
    b.set_unit(Unit::Issue);
    let have_inst = ne_const(&mut *b, q_count, 0);

    // Throttle gate: duty-cycled issue — level k allows one issue per
    // 2^k cycles.
    let lvl0 = eq_const(&mut *b, throttle_eff, 0);
    let lvl1 = eq_const(&mut *b, throttle_eff, 1);
    let lvl2 = eq_const(&mut *b, throttle_eff, 2);
    let lvl3 = eq_const(&mut *b, throttle_eff, 3);
    let ctr_b0 = b.bit(thr_ctr, 0);
    let ctr_lo2 = b.slice(thr_ctr, 0, 2);
    let ctr_lo2_zero = eq_const(&mut *b, ctr_lo2, 0);
    let ctr_zero = eq_const(&mut *b, thr_ctr, 0);
    let open1 = andn(&mut *b, lvl1, ctr_b0);
    let open2 = b.and(lvl2, ctr_lo2_zero);
    let open3 = b.and(lvl3, ctr_zero);
    let thr_open = {
        let t = b.or(lvl0, open1);
        let u = b.or(open2, open3);
        b.or(t, u)
    };
    b.name(thr_open, "issue/throttle_open", Unit::Issue);
    let vec_blocked = b.zero();

    // Hazards via busy bits.
    let ra_w = b.zext(ra, 16);
    let rb_w = b.zext(rb, 16);
    let rd_w = b.zext(rd, 16);
    let busy_ra = {
        let s = b.shr(xbusy, ra_w);
        b.bit(s, 0)
    };
    let busy_rb = {
        let s = b.shr(xbusy, rb_w);
        b.bit(s, 0)
    };
    let busy_rd = {
        let s = b.shr(xbusy, rd_w);
        b.bit(s, 0)
    };
    let vd_w = b.zext(vd3, 8);
    let va_w = b.zext(va3, 8);
    let vb_w = b.zext(vb3, 8);
    let busy_vd = {
        let s = b.shr(vbusy, vd_w);
        b.bit(s, 0)
    };
    let busy_va = {
        let s = b.shr(vbusy, va_w);
        b.bit(s, 0)
    };
    let busy_vb = {
        let s = b.shr(vbusy, vb_w);
        b.bit(s, 0)
    };

    let uses_va = is_vec;
    let uses_vb = b.or(is_vec, is_vst); // vb field doubles as the store source
    let uses_vd_any = b.or(writes_vd, is_vmac);

    let haz_ra = b.and(uses_ra, busy_ra);
    let haz_rb = b.and(uses_rb, busy_rb);
    let haz_rd = b.and(writes_rd, busy_rd);
    let haz_va = b.and(uses_va, busy_va);
    let haz_vb = b.and(uses_vb, busy_vb);
    let haz_vd = b.and(uses_vd_any, busy_vd);
    let any_hazard = {
        let t = b.or(haz_ra, haz_rb);
        let u = b.or(haz_rd, haz_va);
        let v = b.or(haz_vb, haz_vd);
        let tu = b.or(t, u);
        b.or(tu, v)
    };
    b.name(any_hazard, "issue/hazard", Unit::Issue);

    // Structural readiness.
    let alu_free: Vec<NodeId> = alu_v.iter().map(|&v| b.not(v)).collect();
    let any_alu_free = any(&mut *b, &alu_free);
    let mul_free = b.not(mul_v);
    let div_free = b.not(div_v);
    let vec_free = b.not(vec_v);
    let lsu_free = eq_const(&mut *b, lsu_state, 0);
    let no_fu = {
        let t = b.or(is_branch, is_j);
        let u = b.or(is_halt, is_throttle);
        let nop = eq_const(&mut *b, op6, opcode::NOP as u64);
        let tu = b.or(t, u);
        let tun = b.or(tu, nop);
        // Unknown opcodes behave as NOP: not any known class.
        let known = {
            let k1 = b.or(needs_alu, needs_lsu);
            let k2 = b.or(is_mul, is_div);
            let k3 = b.or(is_vec, tun);
            let k12 = b.or(k1, k2);
            b.or(k12, k3)
        };
        let unknown = b.not(known);
        b.or(tun, unknown)
    };
    let fu_ready = {
        let a = b.and(needs_alu, any_alu_free);
        let m = b.and(is_mul, mul_free);
        let d = b.and(is_div, div_free);
        let l = b.and(needs_lsu, lsu_free);
        let v = b.and(is_vec, vec_free);
        let am = b.or(a, m);
        let dl = b.or(d, l);
        let amdl = b.or(am, dl);
        let amdlv = b.or(amdl, v);
        b.or(amdlv, no_fu)
    };

    let not_halted = b.not(halted);
    let no_haz = b.not(any_hazard);
    let no_vecblock = b.not(vec_blocked);
    let issue = {
        let t = and3(&mut *b, have_inst, not_halted, thr_open);
        let u = and3(&mut *b, no_haz, fu_ready, no_vecblock);
        b.and(t, u)
    };
    b.name(issue, "issue/fire", Unit::Issue);

    // Per-FU grants. ALUs pick the lowest-numbered free unit, rotated by
    // the cycle counter's low bit for activity balance.
    let issue_alu = b.and(issue, needs_alu);
    let rotate = b.bit(cycles, 0);
    let mut grant_alu: Vec<NodeId> = Vec::with_capacity(n_alus);
    {
        // preference order: if rotate, start from unit 1.
        let mut taken = zero1;
        let order: Vec<usize> = (0..n_alus).collect();
        let mut grants = vec![zero1; n_alus];
        // two passes to realize rotation: pass1 skips units < 1 when rotate
        for pass in 0..2 {
            for &i in &order {
                let in_this_pass = if pass == 0 {
                    if i == 0 {
                        // unit 0 preferred only when !rotate
                        b.not(rotate)
                    } else {
                        b.one()
                    }
                } else if i == 0 {
                    rotate
                } else {
                    zero1
                };
                let not_taken = b.not(taken);
                let cand = and3(&mut *b, issue_alu, alu_free[i], not_taken);
                let g = b.and(cand, in_this_pass);
                grants[i] = b.or(grants[i], g);
                taken = b.or(taken, g);
            }
        }
        for (i, g) in grants.into_iter().enumerate() {
            let named = b.name(g, &format!("issue/grant_alu{i}"), Unit::Issue);
            grant_alu.push(named);
        }
    }
    let grant_mul = b.and(issue, is_mul);
    b.name(grant_mul, "issue/grant_mul", Unit::Issue);
    let grant_div = b.and(issue, is_div);
    b.name(grant_div, "issue/grant_div", Unit::Issue);
    let grant_vec = b.and(issue, is_vec);
    b.name(grant_vec, "issue/grant_vec", Unit::Issue);
    let grant_lsu = b.and(issue, needs_lsu);
    b.name(grant_lsu, "issue/grant_lsu", Unit::Issue);

    // Branch resolution at issue.
    let cmp_eq = b.eq(ra_val, rb_val);
    let cmp_lt = b.ult(ra_val, rb_val);
    let cmp_ne = b.not(cmp_eq);
    let br_taken = {
        let e = b.and(is_beq, cmp_eq);
        let n = b.and(is_bne, cmp_ne);
        let l = b.and(is_blt, cmp_lt);
        let en = b.or(e, n);
        let enl = b.or(en, l);
        b.or(enl, is_j)
    };
    let br_class = b.or(is_branch, is_j);
    let flush = {
        let ib2 = b.and(issue, br_class);
        let br_flush = b.and(ib2, br_taken);
        // HALT also flushes: instructions fetched past it are dead and
        // would otherwise keep the queue non-empty forever.
        let halt_fire = b.and(issue, is_halt);
        b.or(br_flush, halt_fire)
    };
    b.name(flush, "issue/flush", Unit::Issue);
    let offset16 = sext(&mut *b, imm14, PC_W);
    let br_target = b.add(head_pc, offset16);
    b.name(br_target, "issue/br_target", Unit::Issue);

    let pop = issue;

    // ALU operand / opcode preparation.
    b.set_unit(Unit::Alu);
    let imm64 = b.zext(imm14, 64);
    let lui_val = {
        let c14 = b.constant(14, 64);
        b.shl(imm64, c14)
    };
    let alu_a = b.mux(is_lui, lui_val, ra_val);
    let alu_b = {
        let imm_or_rb = b.mux(is_alu_imm, imm64, rb_val);
        b.mux(is_lui, zero64, imm_or_rb)
    };
    let aluop_rr = sub_const(&mut *b, op6, opcode::ALU_BASE as u64);
    let aluop_imm = sub_const(&mut *b, op6, opcode::ALUI_BASE as u64);
    let or_code = b.constant(3, 6);
    let alu_code6 = {
        let t = b.mux(is_alu_imm, aluop_imm, aluop_rr);
        b.mux(is_lui, or_code, t)
    };
    let alu_code = b.trunc(alu_code6, 3);

    // LSU issue-time address and store data.
    b.set_unit(Unit::LoadStore);
    let addr64 = b.add(ra_val, imm64);
    let addr_issue = b.trunc(addr64, phys_w);
    b.name(addr_issue, "lsu/addr_issue", Unit::LoadStore);
    let kind_code = {
        // 0 = LW, 1 = SW, 2 = VLD, 3 = VST
        let one2 = b.constant(1, 2);
        let two2 = b.constant(2, 2);
        let three2 = b.constant(3, 2);
        let zero2 = b.constant(0, 2);
        let t = b.mux(is_sw, one2, zero2);
        let u = b.mux(is_vld, two2, t);
        b.mux(is_vst, three2, u)
    };

    // ---- P4: function units ----------------------------------------------
    // Scalar ALUs.
    let mut alu_done_req: Vec<NodeId> = Vec::new();
    let mut alu_rd_reg: Vec<NodeId> = Vec::new();
    let mut alu_result: Vec<NodeId> = Vec::new();
    let mut alu_clock: Vec<ClockId> = Vec::new();
    for i in 0..n_alus {
        b.set_unit(Unit::Alu);
        let en = b.or(grant_alu[i], alu_v[i]);
        let clk = b.clock_gate(en, &format!("clk/alu{i}"), Unit::ClockTree);
        alu_clock.push(clk);
        let a = b.reg(64, 0, clk, &format!("alu{i}/a"), Unit::Alu);
        let bb = b.reg(64, 0, clk, &format!("alu{i}/b"), Unit::Alu);
        let op = b.reg(3, 0, clk, &format!("alu{i}/op"), Unit::Alu);
        let rdre = b.reg(4, 0, clk, &format!("alu{i}/rd"), Unit::Alu);
        let a_next = b.mux(grant_alu[i], alu_a, a);
        let b_next = b.mux(grant_alu[i], alu_b, bb);
        let op_next = b.mux(grant_alu[i], alu_code, op);
        let rd_next = b.mux(grant_alu[i], rd, rdre);
        b.connect(a, a_next);
        b.connect(bb, b_next);
        b.connect(op, op_next);
        b.connect(rdre, rd_next);
        // Parallel datapaths, selected by op.
        let amt6 = {
            let c63 = b.constant(63, 64);
            b.and(bb, c63)
        };
        let r_add = b.add(a, bb);
        let r_sub = b.sub(a, bb);
        let r_and = b.and(a, bb);
        let r_or = b.or(a, bb);
        let r_xor = b.xor(a, bb);
        let r_shl = b.shl(a, amt6);
        let r_shr = b.shr(a, amt6);
        let r_slt = {
            let lt = b.ult(a, bb);
            b.zext(lt, 64)
        };
        let result = b.select(op, &[r_add, r_sub, r_and, r_or, r_xor, r_shl, r_shr, r_slt]);
        b.name(result, &format!("alu{i}/result"), Unit::Alu);
        alu_result.push(result);
        alu_done_req.push(alu_v[i]);
        alu_rd_reg.push(rdre);
    }

    // Multiplier.
    b.set_unit(Unit::Multiplier);
    let mul_en = b.or(grant_mul, mul_v);
    let clk_mul = b.clock_gate(mul_en, "clk/mul", Unit::ClockTree);
    let mul_a = b.reg(64, 0, clk_mul, "mul/a", Unit::Multiplier);
    let mul_b = b.reg(64, 0, clk_mul, "mul/b", Unit::Multiplier);
    let mul_rd = b.reg(4, 0, clk_mul, "mul/rd", Unit::Multiplier);
    let mul_ctr = b.reg(4, 0, clk_mul, "mul/ctr", Unit::Multiplier);
    let mul_churn = b.reg(64, 1, clk_mul, "mul/pp", Unit::Multiplier);
    {
        let an = b.mux(grant_mul, ra_val, mul_a);
        b.connect(mul_a, an);
        let bn = b.mux(grant_mul, rb_val, mul_b);
        b.connect(mul_b, bn);
        let rn = b.mux(grant_mul, rd, mul_rd);
        b.connect(mul_rd, rn);
        let lat = b.constant(c.mul_latency as u64, 4);
        let nz = ne_const(&mut *b, mul_ctr, 0);
        let dec = sub_const(&mut *b, mul_ctr, 1);
        let held = b.mux(nz, dec, mul_ctr);
        let cn = b.mux(grant_mul, lat, held);
        b.connect(mul_ctr, cn);
        // Partial-product churn: realistic array activity while busy.
        let one64 = b.constant(1, 64);
        let a_odd = b.or(mul_a, one64);
        let pp = b.mul(mul_churn, a_odd);
        let pp2 = b.add(pp, mul_b);
        b.connect(mul_churn, pp2);
    }
    let mul_result = b.mul(mul_a, mul_b);
    b.name(mul_result, "mul/result", Unit::Multiplier);
    let mul_ctr_zero = eq_const(&mut *b, mul_ctr, 0);
    let mul_done = b.and(mul_v, mul_ctr_zero);

    // Divider.
    b.set_unit(Unit::Multiplier);
    let div_en = b.or(grant_div, div_v);
    let clk_div = b.clock_gate(div_en, "clk/div", Unit::ClockTree);
    let div_a = b.reg(64, 0, clk_div, "div/a", Unit::Multiplier);
    let div_b = b.reg(64, 0, clk_div, "div/b", Unit::Multiplier);
    let div_rd = b.reg(4, 0, clk_div, "div/rd", Unit::Multiplier);
    let div_ctr = b.reg(4, 0, clk_div, "div/ctr", Unit::Multiplier);
    let div_churn = b.reg(64, 0, clk_div, "div/rem", Unit::Multiplier);
    {
        let an = b.mux(grant_div, ra_val, div_a);
        b.connect(div_a, an);
        let bn = b.mux(grant_div, rb_val, div_b);
        b.connect(div_b, bn);
        let rn = b.mux(grant_div, rd, div_rd);
        b.connect(div_rd, rn);
        let lat = b.constant(c.div_latency as u64, 4);
        let nz = ne_const(&mut *b, div_ctr, 0);
        let dec = sub_const(&mut *b, div_ctr, 1);
        let held = b.mux(nz, dec, div_ctr);
        let cn = b.mux(grant_div, lat, held);
        b.connect(div_ctr, cn);
        // Shift-subtract churn.
        let c1 = b.constant(1, 64);
        let sh = b.shl(div_churn, c1);
        let sub = b.sub(sh, div_b);
        let use_sub = b.ult(div_b, sh);
        let next = b.mux(use_sub, sub, sh);
        let seeded = b.mux(grant_div, ra_val, next);
        b.connect(div_churn, seeded);
    }
    let div_result = b.udiv(div_a, div_b);
    b.name(div_result, "div/result", Unit::Multiplier);
    let div_ctr_zero = eq_const(&mut *b, div_ctr, 0);
    let div_done = b.and(div_v, div_ctr_zero);

    // Vector unit.
    b.set_unit(Unit::Vector);
    let vec_en = b.or(grant_vec, vec_v);
    let clk_vec = b.clock_gate(vec_en, "clk/vec", Unit::ClockTree);
    let vu_a = [
        b.reg(64, 0, clk_vec, "vec/a_lo", Unit::Vector),
        b.reg(64, 0, clk_vec, "vec/a_hi", Unit::Vector),
    ];
    let vu_b = [
        b.reg(64, 0, clk_vec, "vec/b_lo", Unit::Vector),
        b.reg(64, 0, clk_vec, "vec/b_hi", Unit::Vector),
    ];
    let vu_d = [
        b.reg(64, 0, clk_vec, "vec/d_lo", Unit::Vector),
        b.reg(64, 0, clk_vec, "vec/d_hi", Unit::Vector),
    ];
    let vu_op = b.reg(2, 0, clk_vec, "vec/op", Unit::Vector);
    let vu_dest = b.reg(3, 0, clk_vec, "vec/dest", Unit::Vector);
    let vu_ctr = b.reg(1, 0, clk_vec, "vec/ctr", Unit::Vector);
    {
        for (r, src) in [
            (vu_a[0], va_lo),
            (vu_a[1], va_hi),
            (vu_b[0], vb_lo),
            (vu_b[1], vb_hi),
            (vu_d[0], vd_lo),
            (vu_d[1], vd_hi),
        ] {
            let n = b.mux(grant_vec, src, r);
            b.connect(r, n);
        }
        let vop2 = sub_const(&mut *b, op6, opcode::VEC_BASE as u64);
        let vop2 = b.trunc(vop2, 2);
        let on = b.mux(grant_vec, vop2, vu_op);
        b.connect(vu_op, on);
        let dn = b.mux(grant_vec, vd3, vu_dest);
        b.connect(vu_dest, dn);
        let one1 = b.one();
        let zn = b.mux(grant_vec, one1, zero1);
        b.connect(vu_ctr, zn);
    }
    // Lane datapaths.
    let mut lane_out = Vec::with_capacity(4);
    for lane in 0..4u8 {
        let half = (lane / 2) as usize;
        let off = (lane % 2) * 32;
        let a_l = b.slice(vu_a[half], off, 32);
        let b_l = b.slice(vu_b[half], off, 32);
        let d_l = b.slice(vu_d[half], off, 32);
        let r_add = b.add(a_l, b_l);
        let r_mul = b.mul(a_l, b_l);
        let r_xor = b.xor(a_l, b_l);
        let r_mac = b.add(d_l, r_mul);
        let r = b.select(vu_op, &[r_add, r_mul, r_xor, r_mac]);
        b.name(r, &format!("vec/lane{lane}"), Unit::Vector);
        lane_out.push(r);
    }
    let vec_res_lo = b.concat(lane_out[1], lane_out[0]);
    let vec_res_hi = b.concat(lane_out[3], lane_out[2]);
    let vu_ctr_zero = eq_const(&mut *b, vu_ctr, 0);
    let vec_done = b.and(vec_v, vu_ctr_zero);
    b.name(vec_done, "vec/done", Unit::Vector);

    // Load/store unit.
    b.set_unit(Unit::LoadStore);
    let lsu_active = ne_const(&mut *b, lsu_state, 0);
    let lsu_en = b.or(grant_lsu, lsu_active);
    let clk_lsu = b.clock_gate(lsu_en, "clk/lsu", Unit::ClockTree);
    let lsu_addr = b.reg(phys_w, 0, clk_lsu, "lsu/addr", Unit::LoadStore);
    let lsu_kind = b.reg(2, 0, clk_lsu, "lsu/kind", Unit::LoadStore);
    let lsu_rd = b.reg(4, 0, clk_lsu, "lsu/rd", Unit::LoadStore);
    let lsu_vdest = b.reg(3, 0, clk_lsu, "lsu/vdest", Unit::LoadStore);
    let lsu_beat = b.reg(1, 0, clk_lsu, "lsu/beat", Unit::LoadStore);
    let lsu_src = b.reg(2, 0, clk_lsu, "lsu/src", Unit::LoadStore);
    let lsu_data0 = b.reg(64, 0, clk_lsu, "lsu/data0", Unit::LoadStore);
    let lsu_wdata0 = b.reg(64, 0, clk_lsu, "lsu/wdata0", Unit::LoadStore);
    let lsu_wdata1 = b.reg(64, 0, clk_lsu, "lsu/wdata1", Unit::LoadStore);
    let lsu_ctr = b.reg(8, 0, clk_lsu, "lsu/ctr", Unit::LoadStore);

    // FSM state constants.
    const S_IDLE: u64 = 0;
    const S_LOOKUP: u64 = 1;
    const S_L2WAIT: u64 = 2;
    const S_DRAMWAIT: u64 = 3;
    const S_WBWAIT: u64 = 4;
    const S_REISSUE: u64 = 5;

    let st_idle = eq_const(&mut *b, lsu_state, S_IDLE);
    let st_lookup = eq_const(&mut *b, lsu_state, S_LOOKUP);
    let st_l2wait = eq_const(&mut *b, lsu_state, S_L2WAIT);
    let st_dramwait = eq_const(&mut *b, lsu_state, S_DRAMWAIT);
    let st_wbwait = eq_const(&mut *b, lsu_state, S_WBWAIT);
    let st_reissue = eq_const(&mut *b, lsu_state, S_REISSUE);
    let _ = st_idle;

    let kind_is_lw = eq_const(&mut *b, lsu_kind, 0);
    let kind_is_sw = eq_const(&mut *b, lsu_kind, 1);
    let kind_is_vld = eq_const(&mut *b, lsu_kind, 2);
    let kind_is_vst = eq_const(&mut *b, lsu_kind, 3);
    let kind_is_load = b.or(kind_is_lw, kind_is_vld);
    let kind_is_store = b.or(kind_is_sw, kind_is_vst);

    // Cache index/tag of the latched address.
    let dindex = b.slice(lsu_addr, 0, db);
    let dtag_of_addr = b.slice(lsu_addr, db, dtag_w);
    let dtag_entry = b.select(dindex, &dtag);
    let dtag_valid = b.bit(dtag_entry, dtag_w);
    let dtag_tag = b.slice(dtag_entry, 0, dtag_w);
    let dtag_match = b.eq(dtag_tag, dtag_of_addr);
    let dhit = b.and(dtag_valid, dtag_match);
    b.name(dhit, "lsu/dhit", Unit::LoadStore);

    b.set_unit(Unit::L2);
    let l2index = b.slice(lsu_addr, 0, l2b);
    let l2tag_of_addr = b.slice(lsu_addr, l2b, l2tag_w);
    let l2tag_entry = b.select(l2index, &l2tag);
    let l2tag_valid = b.bit(l2tag_entry, l2tag_w);
    let l2tag_tag = b.slice(l2tag_entry, 0, l2tag_w);
    let l2tag_match = b.eq(l2tag_tag, l2tag_of_addr);
    let l2hit = b.and(l2tag_valid, l2tag_match);
    b.name(l2hit, "l2/hit", Unit::L2);

    b.set_unit(Unit::LoadStore);
    let ctr_one = eq_const(&mut *b, lsu_ctr, 1);
    let ctr_zero2 = eq_const(&mut *b, lsu_ctr, 0);

    // Memory read ports.
    let issue_load_like = b.or(is_lw, is_vld);
    let accept_read = b.and(grant_lsu, issue_load_like);
    let reissue_read = b.and(st_reissue, kind_is_vld);
    let dc_read_en = b.or(accept_read, reissue_read);
    let addr_issue_index = b.slice(addr_issue, 0, db);
    let dc_read_addr_src = b.mux(accept_read, addr_issue_index, dindex);
    let dc_read_addr = b.zext(dc_read_addr_src, phys_w.max(db));
    let dc_port = b.mem_read(
        dcache_data,
        dc_read_addr,
        dc_read_en,
        "lsu/dc_rdata",
        Unit::LoadStore,
    );

    b.set_unit(Unit::L2);
    let l2_read_en = and3(&mut *b, st_l2wait, ctr_one, l2hit);
    let l2_read_addr = b.zext(l2index, phys_w.max(l2b));
    let l2_port = b.mem_read(l2_data, l2_read_addr, l2_read_en, "l2/rdata", Unit::L2);

    let dram_read_en = b.and(st_dramwait, ctr_one);
    let dram_port = b.mem_read(dram, lsu_addr, dram_read_en, "l2/dram_rdata", Unit::L2);

    b.set_unit(Unit::LoadStore);
    let lsu_result = b.select(lsu_src, &[dc_port, l2_port, dram_port]);
    b.name(lsu_result, "lsu/result", Unit::LoadStore);

    // Store data for the current beat.
    let store_data = {
        let beat1 = b.bit(lsu_beat, 0);
        b.mux(beat1, lsu_wdata1, lsu_wdata0)
    };

    // Store writes at LOOKUP (write-through; no allocate).
    let store_cycle = b.and(st_lookup, kind_is_store);
    b.name(store_cycle, "lsu/store_fire", Unit::LoadStore);
    let dc_store_en = b.and(store_cycle, dhit);
    let dindex32 = b.zext(dindex, phys_w.max(db));
    b.mem_write(dcache_data, dc_store_en, dindex32, store_data);
    let l2_store_en = b.and(store_cycle, l2hit);
    let l2index32 = b.zext(l2index, phys_w.max(l2b));
    b.mem_write(l2_data, l2_store_en, l2index32, store_data);
    b.mem_write(dram, store_cycle, lsu_addr, store_data);

    // Fills.
    let fill_from_l2 = and3(&mut *b, st_l2wait, ctr_zero2, l2hit);
    let fill_from_dram = b.and(st_dramwait, ctr_zero2);
    let fill_dc = b.or(fill_from_l2, fill_from_dram);
    b.name(fill_dc, "lsu/fill", Unit::LoadStore);
    let fill_dc_data = b.mux(fill_from_l2, l2_port, dram_port);
    b.mem_write(dcache_data, fill_dc, dindex32, fill_dc_data);
    b.mem_write(l2_data, fill_from_dram, l2index32, dram_port);

    // Scalar/vector writeback requests from the LSU.
    let lsu_scalar_req = b.and(st_wbwait, kind_is_lw);
    let beat_bit = b.bit(lsu_beat, 0);
    let beat0 = b.not(beat_bit);
    let lsu_vec_req = and3(&mut *b, st_wbwait, kind_is_vld, beat_bit);
    b.name(lsu_vec_req, "lsu/vec_wb_req", Unit::LoadStore);

    // ---- P5: writeback arbitration ---------------------------------------
    b.set_unit(Unit::Issue);
    // Requesters in priority order: ALUs, MUL, DIV, LSU.
    let mut req: Vec<(NodeId, NodeId, NodeId, &str)> = Vec::new(); // (req, rd, data, name)
    for i in 0..n_alus {
        req.push((alu_done_req[i], alu_rd_reg[i], alu_result[i], "alu"));
    }
    req.push((mul_done, mul_rd, mul_result, "mul"));
    req.push((div_done, div_rd, div_result, "div"));
    req.push((lsu_scalar_req, lsu_rd, lsu_result, "lsu"));

    let mut grants: Vec<NodeId> = Vec::with_capacity(req.len());
    let mut used = b.constant(0, 2); // grants so far (0..=2)
    for &(r, _, _, _) in &req {
        let lt2 = {
            let two = b.constant(2, 2);
            b.ult(used, two)
        };
        let g = b.and(r, lt2);
        grants.push(g);
        let g2 = b.zext(g, 2);
        used = b.add(used, g2);
    }
    // Port assignment: the first grant goes to port 0, the second to port 1.
    let mut p0_en = zero1;
    let mut p0_idx = b.constant(0, 4);
    let mut p0_data = zero64;
    let mut p1_en = zero1;
    let mut p1_idx = b.constant(0, 4);
    let mut p1_data = zero64;
    let mut seen = b.constant(0, 2);
    for (i, &(_, rdn, data, _)) in req.iter().enumerate() {
        let g = grants[i];
        let first = eq_const(&mut *b, seen, 0);
        let to_p0 = b.and(g, first);
        let to_p1 = andn(&mut *b, g, first);
        p0_en = b.or(p0_en, to_p0);
        p0_idx = b.mux(to_p0, rdn, p0_idx);
        p0_data = b.mux(to_p0, data, p0_data);
        p1_en = b.or(p1_en, to_p1);
        p1_idx = b.mux(to_p1, rdn, p1_idx);
        p1_data = b.mux(to_p1, data, p1_data);
        let g2 = b.zext(g, 2);
        seen = b.add(seen, g2);
    }
    b.name(p0_en, "wb/p0_en", Unit::Issue);
    b.name(p0_data, "wb/p0_data", Unit::Issue);
    b.name(p1_en, "wb/p1_en", Unit::Issue);
    b.name(p1_data, "wb/p1_data", Unit::Issue);

    let grant_wb_alu: Vec<NodeId> = (0..n_alus).map(|i| grants[i]).collect();
    let grant_wb_mul = grants[n_alus];
    let grant_wb_div = grants[n_alus + 1];
    let grant_wb_lsu = grants[n_alus + 2];

    // Vector RF write port: vector unit has priority, LSU holds.
    b.set_unit(Unit::Vector);
    let lsu_vec_grant = andn(&mut *b, lsu_vec_req, vec_done);
    let vwr_en = b.or(vec_done, lsu_vec_grant);
    b.name(vwr_en, "vec/wr_en", Unit::Vector);
    let vwr_idx = b.mux(vec_done, vu_dest, lsu_vdest);
    let vwr_lo = b.mux(vec_done, vec_res_lo, lsu_data0);
    let vwr_hi = b.mux(vec_done, vec_res_hi, lsu_result);

    // ---- P6: fetch --------------------------------------------------------
    b.set_unit(Unit::Fetch);
    let q_full = eq_const(&mut *b, q_count, c.queue_depth as u64);
    let fnormal = eq_const(&mut *b, fstate, 0);
    let fmiss = b.bit(fstate, 0);
    let iindex = b.slice(pc, 0, ib);
    let itag_of_pc = b.slice(pc, ib, itag_w);
    let itag_entry = b.select(iindex, &itag);
    let itag_valid = b.bit(itag_entry, itag_w);
    let itag_tag = b.slice(itag_entry, 0, itag_w);
    let itag_match = b.eq(itag_tag, itag_of_pc);
    let ihit = b.and(itag_valid, itag_match);
    b.name(ihit, "fetch/ihit", Unit::Fetch);
    let icache_instr = b.select(iindex, &idata);
    b.name(icache_instr, "fetch/instr", Unit::Fetch);

    let f_can_run = {
        let nf = b.not(q_full);
        let nh = b.not(halted);
        let nfl = b.not(flush);
        and3(&mut *b, nf, nh, nfl)
    };
    let hit_fetch = and3(&mut *b, fnormal, f_can_run, ihit);
    let miss_detect = {
        let nh = b.not(ihit);
        and3(&mut *b, fnormal, f_can_run, nh)
    };
    b.name(miss_detect, "fetch/miss", Unit::Fetch);

    let mctr_one = eq_const(&mut *b, miss_ctr, 1);
    let mctr_zero = eq_const(&mut *b, miss_ctr, 0);
    let imem_read_en = b.and(fmiss, mctr_one);
    let imem_addr = b.zext(pc, 32.min(PC_W + 1));
    let imem_port = b.mem_read(
        imem,
        imem_addr,
        imem_read_en,
        "fetch/imem_rdata",
        Unit::Fetch,
    );

    let miss_deliver = and3(&mut *b, fmiss, mctr_zero, f_can_run);
    let push = b.or(hit_fetch, miss_deliver);
    b.name(push, "fetch/push", Unit::Fetch);
    let fetch_instr = b.mux(fmiss, imem_port, icache_instr);

    // I-cache fill (idempotent while waiting to deliver).
    let fill_i = b.and(fmiss, mctr_zero);

    // PC / miss FSM next-state.
    let pc_inc = add_const(&mut *b, pc, 1);
    let pc_next = {
        let adv = b.mux(push, pc_inc, pc);

        b.mux(flush, br_target, adv)
    };
    b.connect(pc, pc_next);
    let fstate_next = {
        let one_ = b.one();
        let enter = b.mux(miss_detect, one_, fstate);
        let leave = b.mux(miss_deliver, zero1, enter);
        b.mux(flush, zero1, leave)
    };
    b.connect(fstate, fstate_next);
    let miss_ctr_next = {
        let lat = b.constant(c.imiss_latency as u64, 8);
        let nz = ne_const(&mut *b, miss_ctr, 0);
        let dec = sub_const(&mut *b, miss_ctr, 1);
        let count = b.mux(nz, dec, miss_ctr);
        let dflt = b.mux(fmiss, count, miss_ctr);
        b.mux(miss_detect, lat, dflt)
    };
    b.connect(miss_ctr, miss_ctr_next);

    // I-cache fill connections.
    for i in 0..c.icache_lines {
        let sel_line = eq_const(&mut *b, iindex, i as u64);
        let we = b.and(fill_i, sel_line);
        let one_w = b.one();
        let new_tag = b.concat(one_w, itag_of_pc);
        let tn = b.mux(we, new_tag, itag[i as usize]);
        b.connect(itag[i as usize], tn);
        let dn = b.mux(we, imem_port, idata[i as usize]);
        b.connect(idata[i as usize], dn);
    }

    // ---- P7: connect remaining always-on state ----------------------------
    // Queue.
    b.set_unit(Unit::Issue);
    let tail = {
        let cnt_trunc = b.trunc(q_count, qidx_w);
        b.add(q_head, cnt_trunc)
    };
    for i in 0..depth {
        let sel_i = eq_const(&mut *b, tail, i as u64);
        let we = {
            let nfl = b.not(flush);
            and3(&mut *b, push, sel_i, nfl)
        };
        let instr_n = b.mux(we, fetch_instr, q_instr[i]);
        b.connect(q_instr[i], instr_n);
        let pc_n = b.mux(we, pc, q_pc[i]);
        b.connect(q_pc[i], pc_n);
    }
    let head_inc = add_const(&mut *b, q_head, 1);
    let head_next = {
        let popd = b.mux(pop, head_inc, q_head);
        let z = b.constant(0, qidx_w);
        b.mux(flush, z, popd)
    };
    b.connect(q_head, head_next);
    let count_next = {
        let push4 = b.zext(push, 4);
        let pop4 = b.zext(pop, 4);
        let plus = b.add(q_count, push4);
        let minus = b.sub(plus, pop4);
        let z = b.constant(0, 4);
        b.mux(flush, z, minus)
    };
    b.connect(q_count, count_next);

    // Busy bits.
    let one16 = b.constant(1, 16);
    let set_x = {
        let sh = b.shl(one16, rd_w);
        let fffe = b.constant(0xFFFE, 16);
        let masked = b.and(sh, fffe);
        let w = b.and(issue, writes_rd);
        let z = b.constant(0, 16);
        b.mux(w, masked, z)
    };
    let clear_x = {
        let mut m = b.constant(0, 16);
        // All scalar WB grants clear their destination bit.
        let grant_rds: Vec<(NodeId, NodeId)> = (0..n_alus)
            .map(|i| (grant_wb_alu[i], alu_rd_reg[i]))
            .chain([
                (grant_wb_mul, mul_rd),
                (grant_wb_div, div_rd),
                (grant_wb_lsu, lsu_rd),
            ])
            .collect();
        for (g, rdn) in grant_rds {
            let rd16 = b.zext(rdn, 16);
            let bitm = b.shl(one16, rd16);
            let z = b.constant(0, 16);
            let mm = b.mux(g, bitm, z);
            m = b.or(m, mm);
        }
        m
    };
    let xbusy_next = {
        let setted = b.or(xbusy, set_x);
        let ncl = b.not(clear_x);
        b.and(setted, ncl)
    };
    b.connect(xbusy, xbusy_next);

    let one8 = b.constant(1, 8);
    let set_v = {
        let sh = b.shl(one8, vd_w);
        let w = b.and(issue, writes_vd);
        let z = b.constant(0, 8);
        b.mux(w, sh, z)
    };
    let clear_v = {
        let vidx8 = b.zext(vwr_idx, 8);
        let bitm = b.shl(one8, vidx8);
        let z = b.constant(0, 8);
        b.mux(vwr_en, bitm, z)
    };
    let vbusy_next = {
        let setted = b.or(vbusy, set_v);
        let ncl = b.not(clear_v);
        b.and(setted, ncl)
    };
    b.connect(vbusy, vbusy_next);

    // Scalar RF writes.
    for (i, &xr) in xregs.iter().enumerate() {
        let idx = (i + 1) as u64;
        let m0 = eq_const(&mut *b, p0_idx, idx);
        let w0 = b.and(p0_en, m0);
        let m1 = eq_const(&mut *b, p1_idx, idx);
        let w1 = b.and(p1_en, m1);
        let v1 = b.mux(w1, p1_data, xr);
        let v0 = b.mux(w0, p0_data, v1);
        b.connect(xr, v0);
    }
    // Vector RF writes.
    for (v, halves) in vregs.iter().enumerate() {
        let m = eq_const(&mut *b, vwr_idx, v as u64);
        let we = b.and(vwr_en, m);
        let lo_n = b.mux(we, vwr_lo, halves[0]);
        b.connect(halves[0], lo_n);
        let hi_n = b.mux(we, vwr_hi, halves[1]);
        b.connect(halves[1], hi_n);
    }

    // FU valid flags.
    for i in 0..n_alus {
        let cleared = andn(&mut *b, alu_v[i], grant_wb_alu[i]);
        let n = b.or(cleared, grant_alu[i]);
        b.connect(alu_v[i], n);
    }
    {
        let cleared = andn(&mut *b, mul_v, grant_wb_mul);
        let n = b.or(cleared, grant_mul);
        b.connect(mul_v, n);
        let cleared = andn(&mut *b, div_v, grant_wb_div);
        let n = b.or(cleared, grant_div);
        b.connect(div_v, n);
        let vcleared = andn(&mut *b, vec_v, vec_done);
        let n = b.or(vcleared, grant_vec);
        b.connect(vec_v, n);
    }

    // LSU state machine.
    {
        let k_idle = b.constant(S_IDLE, 3);
        let k_lookup = b.constant(S_LOOKUP, 3);
        let k_l2wait = b.constant(S_L2WAIT, 3);
        let k_dramwait = b.constant(S_DRAMWAIT, 3);
        let k_wbwait = b.constant(S_WBWAIT, 3);
        let k_reissue = b.constant(S_REISSUE, 3);

        // From IDLE.
        let from_idle = b.mux(grant_lsu, k_lookup, k_idle);
        // From LOOKUP.
        let load_hit_next = k_wbwait;
        let load_miss_next = k_l2wait;
        let load_next = b.mux(dhit, load_hit_next, load_miss_next);
        let vst_beat0 = b.and(kind_is_vst, beat0);
        let store_next = b.mux(vst_beat0, k_reissue, k_idle);
        let from_lookup = b.mux(kind_is_load, load_next, store_next);
        // From L2WAIT.
        let l2_done_next = b.mux(l2hit, k_wbwait, k_dramwait);
        let from_l2wait = b.mux(ctr_zero2, l2_done_next, k_l2wait);
        // From DRAMWAIT.
        let from_dramwait = b.mux(ctr_zero2, k_wbwait, k_dramwait);
        // From WBWAIT.
        let scalar_leave = b.mux(grant_wb_lsu, k_idle, k_wbwait);
        let vld_b0 = b.and(kind_is_vld, beat0);
        let vld_b1_leave = b.mux(lsu_vec_grant, k_idle, k_wbwait);
        let vld_next = b.mux(vld_b0, k_reissue, vld_b1_leave);
        let from_wbwait = b.mux(kind_is_lw, scalar_leave, vld_next);
        // Select by state.
        let st_next = b.select(
            lsu_state,
            &[
                from_idle,
                from_lookup,
                from_l2wait,
                from_dramwait,
                from_wbwait,
                k_lookup, // REISSUE -> LOOKUP
                k_idle,
                k_idle,
            ],
        );
        b.connect(lsu_state, st_next);

        // Counter.
        let l2lat = b.constant(c.l2_latency as u64, 8);
        let dramlat = b.constant(c.dram_latency as u64, 8);
        let nz = ne_const(&mut *b, lsu_ctr, 0);
        let dec = sub_const(&mut *b, lsu_ctr, 1);
        let counting = b.mux(nz, dec, lsu_ctr);
        let to_l2wait = {
            let miss = b.not(dhit);
            and3(&mut *b, st_lookup, kind_is_load, miss)
        };
        let to_dram = {
            let nl2 = b.not(l2hit);
            and3(&mut *b, st_l2wait, ctr_zero2, nl2)
        };
        let c1 = b.mux(to_l2wait, l2lat, counting);
        let c2 = b.mux(to_dram, dramlat, c1);
        b.connect(lsu_ctr, c2);

        // Latched operation registers.
        let entering_reissue = {
            let a = b.and(st_lookup, vst_beat0);
            let bq = and3(&mut *b, st_wbwait, kind_is_vld, beat0);
            b.or(a, bq)
        };
        let addr_inc = add_const(&mut *b, lsu_addr, 1);
        let a1 = b.mux(entering_reissue, addr_inc, lsu_addr);
        let a2 = b.mux(grant_lsu, addr_issue, a1);
        b.connect(lsu_addr, a2);

        let k1 = b.mux(grant_lsu, kind_code, lsu_kind);
        b.connect(lsu_kind, k1);
        let r1 = b.mux(grant_lsu, rd, lsu_rd);
        b.connect(lsu_rd, r1);
        let v1 = b.mux(grant_lsu, vd3, lsu_vdest);
        b.connect(lsu_vdest, v1);
        let bt1 = {
            let one_ = b.one();
            let set1 = b.mux(entering_reissue, one_, lsu_beat);
            b.mux(grant_lsu, zero1, set1)
        };
        b.connect(lsu_beat, bt1);

        // Result source.
        let s0 = b.constant(0, 2);
        let s1 = b.constant(1, 2);
        let s2 = b.constant(2, 2);
        let src_dhit = and3(&mut *b, st_lookup, kind_is_load, dhit);
        let a = b.mux(src_dhit, s0, lsu_src);
        let bsel = b.mux(fill_from_l2, s1, a);
        let csel = b.mux(fill_from_dram, s2, bsel);
        b.connect(lsu_src, csel);

        // Beat-0 data stash for vector loads.
        let stash = and3(&mut *b, st_wbwait, kind_is_vld, beat0);
        let d1 = b.mux(stash, lsu_result, lsu_data0);
        b.connect(lsu_data0, d1);

        // Store data latched at issue (vb halves or rb value).
        let w0 = b.mux(is_vst, vb_lo, rb_val);
        let w0n = b.mux(grant_lsu, w0, lsu_wdata0);
        b.connect(lsu_wdata0, w0n);
        let w1n = b.mux(grant_lsu, vb_hi, lsu_wdata1);
        b.connect(lsu_wdata1, w1n);
    }

    // D-cache / L2 tag fills.
    for i in 0..c.dcache_lines {
        let sel_line = eq_const(&mut *b, dindex, i as u64);
        let we = b.and(fill_dc, sel_line);
        let one_ = b.one();
        let new_tag = b.concat(one_, dtag_of_addr);
        let n = b.mux(we, new_tag, dtag[i as usize]);
        b.connect(dtag[i as usize], n);
    }
    for i in 0..c.l2_lines {
        let sel_line = eq_const(&mut *b, l2index, i as u64);
        let we = b.and(fill_from_dram, sel_line);
        let one_ = b.one();
        let new_tag = b.concat(one_, l2tag_of_addr);
        let n = b.mux(we, new_tag, l2tag[i as usize]);
        b.connect(l2tag[i as usize], n);
    }

    // Control state.
    b.set_unit(Unit::Control);
    {
        let h = b.and(issue, is_halt);
        let one_ = b.one();
        let n = b.mux(h, one_, halted);
        b.connect(halted, n);
        let t = b.and(issue, is_throttle);
        let lvl = b.trunc(imm14, 2);
        let n = b.mux(t, lvl, throttle);
        b.connect(throttle, n);
        let inc = add_const(&mut *b, thr_ctr, 1);
        b.connect(thr_ctr, inc);
        let cinc = add_const(&mut *b, cycles, 1);
        b.connect(cycles, cinc);
        let pop24 = b.zext(pop, 24);
        let rinc = b.add(retired, pop24);
        b.connect(retired, rinc);
    }

    // Quiesced: halted and fully drained.
    let quiesced = {
        let empty = eq_const(&mut *b, q_count, 0);
        let mut idle = b.and(halted, empty);
        for i in 0..n_alus {
            let f = b.not(alu_v[i]);
            idle = b.and(idle, f);
        }
        let nm = b.not(mul_v);
        let nd = b.not(div_v);
        let nv = b.not(vec_v);
        let nl = eq_const(&mut *b, lsu_state, 0);
        idle = b.and(idle, nm);
        idle = b.and(idle, nd);
        idle = b.and(idle, nv);
        idle = b.and(idle, nl);
        b.name(idle, "ctrl/quiesced", Unit::Control)
    };

    // ---- P8: staging/debug chains + per-unit event counters ---------------
    let fu_list: Vec<(Fu, NodeId, &str, Unit)> = {
        let mut v: Vec<(Fu, NodeId, &str, Unit)> = Vec::new();
        for i in 0..n_alus {
            v.push((
                Fu {
                    valid: alu_v[i],
                    clock: alu_clock[i],
                    grant: grant_alu[i],
                },
                alu_result[i],
                if i == 0 {
                    "alu0"
                } else if i == 1 {
                    "alu1"
                } else {
                    "alu2"
                },
                Unit::Alu,
            ));
        }
        v.push((
            Fu {
                valid: mul_v,
                clock: clk_mul,
                grant: grant_mul,
            },
            mul_result,
            "mul",
            Unit::Multiplier,
        ));
        v.push((
            Fu {
                valid: div_v,
                clock: clk_div,
                grant: grant_div,
            },
            div_result,
            "div",
            Unit::Multiplier,
        ));
        v.push((
            Fu {
                valid: vec_v,
                clock: clk_vec,
                grant: grant_vec,
            },
            vec_res_lo,
            "vec",
            Unit::Vector,
        ));
        v.push((
            Fu {
                valid: lsu_active,
                clock: clk_lsu,
                grant: grant_lsu,
            },
            lsu_result,
            "lsu",
            Unit::LoadStore,
        ));
        v
    };
    if c.staging_depth > 0 {
        for (fu, bus, name, unit) in &fu_list {
            b.set_unit(*unit);
            let mut prev = *bus;
            for s in 0..c.staging_depth {
                let r = b.reg(
                    64.min(b.width(prev)),
                    0,
                    fu.clock,
                    &format!("{name}/stage{s}"),
                    *unit,
                );
                b.connect(r, prev);
                prev = r;
            }
            // Per-unit op counter in the gated domain.
            let ctr = b.reg(12, 0, fu.clock, &format!("{name}/ops"), *unit);
            let g12 = b.zext(fu.grant, 12);
            let n = b.add(ctr, g12);
            b.connect(ctr, n);
            let _ = fu.valid;
        }
        // Issue-side staging chain in its own gated domain (active on pop).
        b.set_unit(Unit::Issue);
        let pop_en = b.or(pop, flush);
        let clk_istage = b.clock_gate(pop_en, "clk/issue_dbg", Unit::ClockTree);
        let mut prev = head_instr;
        for s in 0..c.staging_depth {
            let r = b.reg(32, 0, clk_istage, &format!("issue/dbg{s}"), Unit::Issue);
            b.connect(r, prev);
            prev = r;
        }
        // Fetch-side chain gated on push.
        b.set_unit(Unit::Fetch);
        let clk_fstage = b.clock_gate(push, "clk/fetch_dbg", Unit::ClockTree);
        let mut prev = fetch_instr;
        for s in 0..c.staging_depth {
            let r = b.reg(32, 0, clk_fstage, &format!("fetch/dbg{s}"), Unit::Fetch);
            b.connect(r, prev);
            prev = r;
        }
        // Writeback-bus chain gated on port-0 writes.
        b.set_unit(Unit::Issue);
        let clk_wb = b.clock_gate(p0_en, "clk/wb_dbg", Unit::ClockTree);
        let mut prev = p0_data;
        for s in 0..c.staging_depth {
            let r = b.reg(64, 0, clk_wb, &format!("wb/dbg{s}"), Unit::Issue);
            b.connect(r, prev);
            prev = r;
        }
    }

    CoreHandles {
        imem,
        dram,
        pc,
        halted,
        quiesced,
        retired,
        cycles,
        xregs,
        vregs,
        throttle,
        throttle_override_en,
        throttle_override,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cpu_builds() {
        let h = build_cpu(&CpuConfig::tiny()).unwrap();
        let stats = h.netlist.stats();
        assert!(stats.signal_bits > 3_000, "got {}", stats.signal_bits);
        assert!(stats.clock_domains >= 8);
        assert!(stats.memories == 4);
    }

    #[test]
    fn presets_build_with_expected_scale() {
        let n1 = build_cpu(&CpuConfig::neoverse_like()).unwrap();
        let a77 = build_cpu(&CpuConfig::cortex_like()).unwrap();
        let m1 = n1.netlist.signal_bits();
        let m2 = a77.netlist.signal_bits();
        assert!(m1 > 15_000, "n1-like M = {m1}");
        assert!(m2 > m1, "a77-like ({m2}) should exceed n1-like ({m1})");
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_cpu(&CpuConfig::tiny()).unwrap();
        let b = build_cpu(&CpuConfig::tiny()).unwrap();
        assert_eq!(a.netlist.len(), b.netlist.len());
        assert_eq!(a.netlist.signal_bits(), b.netlist.signal_bits());
    }
}
