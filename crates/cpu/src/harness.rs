//! Simulation harness: loads programs, runs to completion, inspects
//! architectural state.

use crate::isa::Inst;
use crate::uarch::CpuHandles;
use apollo_rtl::{CapAnnotation, CapModel};
use apollo_sim::{BitsliceSimulator, FaultPlan, FaultPlanError, PowerConfig, Simulator};

/// Outcome of running a program on the RTL CPU.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The core quiesced (halted and drained) after this many cycles.
    Quiesced {
        /// Cycles simulated until quiescence.
        cycles: u64,
    },
    /// The cycle budget ran out first.
    OutOfCycles,
}

/// Convenience wrapper tying a [`CpuHandles`] design to a simulator.
///
/// The netlist is built once per design; each program run constructs a
/// fresh [`Simulator`] (cheap) and pokes the program image into the
/// instruction memory, so model feature indices remain valid across
/// workloads.
#[derive(Debug)]
pub struct CpuSim<'a> {
    handles: &'a CpuHandles,
    sim: Simulator<'a>,
}

impl<'a> CpuSim<'a> {
    /// Creates a fresh simulator for the design with `program` loaded at
    /// address 0 and `data` (if any) preloaded into data memory.
    ///
    /// # Panics
    /// Panics if the program exceeds instruction memory or data exceeds
    /// data memory.
    pub fn new(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
    ) -> Self {
        Self::with_threads(handles, cap, power, program, data, 1)
    }

    /// Like [`CpuSim::new`], but evaluates the netlist with `threads`
    /// simulator worker threads (see [`Simulator::with_threads`]);
    /// results are bit-identical to the sequential engine.
    pub fn with_threads(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
        threads: usize,
    ) -> Self {
        match Self::with_faults(handles, cap, power, program, data, threads, None) {
            Ok(sim) => sim,
            Err(e) => unreachable!("no fault plan, so compilation cannot fail: {e}"),
        }
    }

    /// Like [`CpuSim::with_threads`], with an optional fault plan
    /// injected into the underlying simulator (see
    /// [`Simulator::with_faults`]).
    ///
    /// # Errors
    /// Returns the [`FaultPlanError`] if the plan does not compile
    /// against the design netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn with_faults(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
        threads: usize,
        plan: Option<&FaultPlan>,
    ) -> Result<Self, FaultPlanError> {
        assert!(
            program.len() <= handles.config.imem_words as usize,
            "program of {} instructions exceeds imem ({} words)",
            program.len(),
            handles.config.imem_words
        );
        assert!(
            data.len() <= handles.config.dram_words as usize,
            "data of {} words exceeds dram ({} words)",
            data.len(),
            handles.config.dram_words
        );
        let mut sim = Simulator::with_faults(&handles.netlist, cap, power, threads, plan)?;
        for (i, inst) in program.iter().enumerate() {
            sim.poke_mem(handles.imem, i as u32, inst.encode() as u64);
        }
        for (i, &w) in data.iter().enumerate() {
            sim.poke_mem(handles.dram, i as u32, w);
        }
        Ok(CpuSim { handles, sim })
    }

    /// Creates a simulator with the default parasitic annotation.
    pub fn with_default_power(
        handles: &'a CpuHandles,
        program: &[Inst],
        data: &[u64],
    ) -> (CapAnnotation, PowerConfig) {
        let _ = (handles, program, data);
        (
            CapModel::default().annotate(&handles.netlist),
            PowerConfig::default(),
        )
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (stepping, tracing).
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// The design handles.
    pub fn handles(&self) -> &'a CpuHandles {
        self.handles
    }

    /// Steps one cycle.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Steps one cycle in toggles-only mode (no power pass); see
    /// [`Simulator::step_toggles`].
    pub fn step_toggles(&mut self) {
        self.sim.step_toggles();
    }

    /// Runs until the core quiesces or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        for cycle in 1..=max_cycles {
            self.sim.step();
            if self.sim.value(self.handles.quiesced) == 1 {
                return RunOutcome::Quiesced { cycles: cycle };
            }
        }
        RunOutcome::OutOfCycles
    }

    /// Architectural value of scalar register `i`.
    ///
    /// # Panics
    /// Panics if `i >= 16`.
    pub fn xreg(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.sim.value(self.handles.xregs[i - 1])
        }
    }

    /// Architectural value of vector register `i` as `[lo64, hi64]`.
    pub fn vreg(&self, i: usize) -> [u64; 2] {
        let h = self.handles.vregs[i];
        [self.sim.value(h[0]), self.sim.value(h[1])]
    }

    /// Reads a data-memory word.
    pub fn mem_word(&self, addr: u32) -> u64 {
        self.sim.mem_word(self.handles.dram, addr)
    }

    /// The retired-instruction counter.
    pub fn retired(&self) -> u64 {
        self.sim.value(self.handles.retired)
    }

    /// Whether the core has halted.
    pub fn halted(&self) -> bool {
        self.sim.value(self.handles.halted) == 1
    }
}

/// A batch of up to 64 independent program runs on one design, evaluated
/// together by the bitslice engine: each workload occupies one lane of a
/// [`BitsliceSimulator`], so a single netlist pass advances every
/// program by one cycle.
///
/// Per-lane observables (registers, memory, power, retirement) are
/// bit-identical to running each workload alone through [`CpuSim`] —
/// the scalar engine is the differential oracle.
#[derive(Debug)]
pub struct CpuBatch<'a> {
    handles: &'a CpuHandles,
    sim: BitsliceSimulator<'a>,
}

impl<'a> CpuBatch<'a> {
    /// Creates a batch with each `(program, data)` workload loaded into
    /// its own lane's instruction and data memories.
    ///
    /// # Panics
    /// Panics if `workloads` is empty or longer than 64, or if any
    /// program/data image exceeds the design's memories.
    pub fn new(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        workloads: &[(Vec<Inst>, Vec<u64>)],
    ) -> Self {
        Self::with_threads(handles, cap, power, workloads, 1)
    }

    /// Like [`CpuBatch::new`] with `threads` level-parallel workers
    /// under the bitslice kernel.
    pub fn with_threads(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        workloads: &[(Vec<Inst>, Vec<u64>)],
        threads: usize,
    ) -> Self {
        assert!(
            (1..=64).contains(&workloads.len()),
            "a CpuBatch holds 1..=64 workloads, got {}",
            workloads.len()
        );
        let mut sim =
            BitsliceSimulator::with_threads(&handles.netlist, cap, power, workloads.len(), threads);
        for (lane, (program, data)) in workloads.iter().enumerate() {
            assert!(
                program.len() <= handles.config.imem_words as usize,
                "lane {lane}: program of {} instructions exceeds imem ({} words)",
                program.len(),
                handles.config.imem_words
            );
            assert!(
                data.len() <= handles.config.dram_words as usize,
                "lane {lane}: data of {} words exceeds dram ({} words)",
                data.len(),
                handles.config.dram_words
            );
            for (i, inst) in program.iter().enumerate() {
                sim.poke_mem(lane, handles.imem, i as u32, inst.encode() as u64);
            }
            for (i, &w) in data.iter().enumerate() {
                sim.poke_mem(lane, handles.dram, i as u32, w);
            }
        }
        CpuBatch { handles, sim }
    }

    /// Number of active lanes (= workloads).
    pub fn lanes(&self) -> usize {
        self.sim.lanes()
    }

    /// The underlying bitslice simulator.
    pub fn sim(&self) -> &BitsliceSimulator<'a> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (stepping, power).
    pub fn sim_mut(&mut self) -> &mut BitsliceSimulator<'a> {
        &mut self.sim
    }

    /// Steps every lane by one cycle.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Steps every lane by one cycle in toggles-only mode (no power
    /// pass, no row transpose); see
    /// [`BitsliceSimulator::step_toggles`].
    pub fn step_toggles(&mut self) {
        self.sim.step_toggles();
    }

    /// Runs until every lane's core quiesces or `max_cycles` elapse,
    /// returning each lane's outcome. Quiesced cores hold their
    /// architectural state, so early finishers idle while stragglers
    /// drain.
    pub fn run(&mut self, max_cycles: u64) -> Vec<RunOutcome> {
        let lanes = self.lanes();
        let mut outcomes = vec![RunOutcome::OutOfCycles; lanes];
        for cycle in 1..=max_cycles {
            self.sim.step();
            let mut all_done = true;
            for (lane, out) in outcomes.iter_mut().enumerate() {
                if matches!(out, RunOutcome::OutOfCycles) {
                    if self.sim.value(lane, self.handles.quiesced) == 1 {
                        *out = RunOutcome::Quiesced { cycles: cycle };
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
        }
        outcomes
    }

    /// Architectural value of scalar register `i` on `lane`.
    ///
    /// # Panics
    /// Panics if `i >= 16` or `lane` is out of range.
    pub fn xreg(&self, lane: usize, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.sim.value(lane, self.handles.xregs[i - 1])
        }
    }

    /// Architectural value of vector register `i` on `lane` as
    /// `[lo64, hi64]`.
    pub fn vreg(&self, lane: usize, i: usize) -> [u64; 2] {
        let h = self.handles.vregs[i];
        [self.sim.value(lane, h[0]), self.sim.value(lane, h[1])]
    }

    /// Reads a data-memory word on `lane`.
    pub fn mem_word(&self, lane: usize, addr: u32) -> u64 {
        self.sim.mem_word(lane, self.handles.dram, addr)
    }

    /// The retired-instruction counter on `lane`.
    pub fn retired(&self, lane: usize) -> u64 {
        self.sim.value(lane, self.handles.retired)
    }

    /// Whether `lane`'s core has halted.
    pub fn halted(&self, lane: usize) -> bool {
        self.sim.value(lane, self.handles.halted) == 1
    }

    /// Whether `lane`'s core has halted *and* fully drained.
    pub fn quiesced(&self, lane: usize) -> bool {
        self.sim.value(lane, self.handles.quiesced) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::uarch::build_cpu;
    use crate::CpuConfig;

    /// A mixed batch (scalar, vector, memory-bound workloads) must be
    /// lane-for-lane bit-identical to one scalar `CpuSim` per program:
    /// same quiesce cycle, registers, vector state and final memory.
    #[test]
    fn batch_matches_per_program_scalar_runs() {
        let handles = build_cpu(&CpuConfig::tiny()).unwrap();
        let cap = CapModel::default().annotate(&handles.netlist);
        let workloads: Vec<(Vec<Inst>, Vec<u64>)> = [
            benchmarks::dhrystone(),
            benchmarks::maxpwr_cpu(),
            benchmarks::daxpy(),
        ]
        .into_iter()
        .map(|b| (b.program, b.data))
        .collect();

        let mut batch = CpuBatch::new(&handles, &cap, PowerConfig::default(), &workloads);
        let mut singles: Vec<CpuSim<'_>> = workloads
            .iter()
            .map(|(p, d)| CpuSim::new(&handles, &cap, PowerConfig::default(), p, d))
            .collect();
        let single_outcomes: Vec<RunOutcome> = singles.iter_mut().map(|s| s.run(20_000)).collect();
        let batch_outcomes = batch.run(20_000);

        for (lane, single) in singles.iter().enumerate() {
            assert_eq!(
                batch_outcomes[lane], single_outcomes[lane],
                "lane {lane}: outcome"
            );
            assert!(batch.quiesced(lane) && batch.halted(lane));
            assert_eq!(
                batch.retired(lane),
                single.retired(),
                "lane {lane}: retired"
            );
            for i in 0..16 {
                assert_eq!(batch.xreg(lane, i), single.xreg(i), "lane {lane}: x{i}");
            }
            for v in 0..8 {
                assert_eq!(batch.vreg(lane, v), single.vreg(v), "lane {lane}: v{v}");
            }
            for addr in 0..handles.config.dram_words {
                assert_eq!(
                    batch.mem_word(lane, addr),
                    single.mem_word(addr),
                    "lane {lane}: mem[{addr}]"
                );
            }
        }
    }
}
