//! Simulation harness: loads programs, runs to completion, inspects
//! architectural state.

use crate::isa::Inst;
use crate::uarch::CpuHandles;
use apollo_rtl::{CapAnnotation, CapModel};
use apollo_sim::{FaultPlan, FaultPlanError, PowerConfig, Simulator};

/// Outcome of running a program on the RTL CPU.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The core quiesced (halted and drained) after this many cycles.
    Quiesced {
        /// Cycles simulated until quiescence.
        cycles: u64,
    },
    /// The cycle budget ran out first.
    OutOfCycles,
}

/// Convenience wrapper tying a [`CpuHandles`] design to a simulator.
///
/// The netlist is built once per design; each program run constructs a
/// fresh [`Simulator`] (cheap) and pokes the program image into the
/// instruction memory, so model feature indices remain valid across
/// workloads.
#[derive(Debug)]
pub struct CpuSim<'a> {
    handles: &'a CpuHandles,
    sim: Simulator<'a>,
}

impl<'a> CpuSim<'a> {
    /// Creates a fresh simulator for the design with `program` loaded at
    /// address 0 and `data` (if any) preloaded into data memory.
    ///
    /// # Panics
    /// Panics if the program exceeds instruction memory or data exceeds
    /// data memory.
    pub fn new(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
    ) -> Self {
        Self::with_threads(handles, cap, power, program, data, 1)
    }

    /// Like [`CpuSim::new`], but evaluates the netlist with `threads`
    /// simulator worker threads (see [`Simulator::with_threads`]);
    /// results are bit-identical to the sequential engine.
    pub fn with_threads(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
        threads: usize,
    ) -> Self {
        match Self::with_faults(handles, cap, power, program, data, threads, None) {
            Ok(sim) => sim,
            Err(e) => unreachable!("no fault plan, so compilation cannot fail: {e}"),
        }
    }

    /// Like [`CpuSim::with_threads`], with an optional fault plan
    /// injected into the underlying simulator (see
    /// [`Simulator::with_faults`]).
    ///
    /// # Errors
    /// Returns the [`FaultPlanError`] if the plan does not compile
    /// against the design netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn with_faults(
        handles: &'a CpuHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        program: &[Inst],
        data: &[u64],
        threads: usize,
        plan: Option<&FaultPlan>,
    ) -> Result<Self, FaultPlanError> {
        assert!(
            program.len() <= handles.config.imem_words as usize,
            "program of {} instructions exceeds imem ({} words)",
            program.len(),
            handles.config.imem_words
        );
        assert!(
            data.len() <= handles.config.dram_words as usize,
            "data of {} words exceeds dram ({} words)",
            data.len(),
            handles.config.dram_words
        );
        let mut sim = Simulator::with_faults(&handles.netlist, cap, power, threads, plan)?;
        for (i, inst) in program.iter().enumerate() {
            sim.poke_mem(handles.imem, i as u32, inst.encode() as u64);
        }
        for (i, &w) in data.iter().enumerate() {
            sim.poke_mem(handles.dram, i as u32, w);
        }
        Ok(CpuSim { handles, sim })
    }

    /// Creates a simulator with the default parasitic annotation.
    pub fn with_default_power(handles: &'a CpuHandles, program: &[Inst], data: &[u64]) -> (CapAnnotation, PowerConfig) {
        let _ = (handles, program, data);
        (CapModel::default().annotate(&handles.netlist), PowerConfig::default())
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (stepping, tracing).
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// The design handles.
    pub fn handles(&self) -> &'a CpuHandles {
        self.handles
    }

    /// Steps one cycle.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Runs until the core quiesces or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        for cycle in 1..=max_cycles {
            self.sim.step();
            if self.sim.value(self.handles.quiesced) == 1 {
                return RunOutcome::Quiesced { cycles: cycle };
            }
        }
        RunOutcome::OutOfCycles
    }

    /// Architectural value of scalar register `i`.
    ///
    /// # Panics
    /// Panics if `i >= 16`.
    pub fn xreg(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.sim.value(self.handles.xregs[i - 1])
        }
    }

    /// Architectural value of vector register `i` as `[lo64, hi64]`.
    pub fn vreg(&self, i: usize) -> [u64; 2] {
        let h = self.handles.vregs[i];
        [self.sim.value(h[0]), self.sim.value(h[1])]
    }

    /// Reads a data-memory word.
    pub fn mem_word(&self, addr: u32) -> u64 {
        self.sim.mem_word(self.handles.dram, addr)
    }

    /// The retired-instruction counter.
    pub fn retired(&self) -> u64 {
        self.sim.value(self.handles.retired)
    }

    /// Whether the core has halted.
    pub fn halted(&self) -> bool {
        self.sim.value(self.handles.halted) == 1
    }
}
