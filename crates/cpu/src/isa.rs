//! Instruction set of the synthetic microprocessor.
//!
//! A compact RISC ISA with 64-bit scalar registers, 128-bit (4 × 32-bit
//! lane) vector registers, scalar/vector arithmetic, loads/stores,
//! branches and a `THROTTLE` hint that drives the issue-throttling
//! schemes referenced by the paper's `throttling_{1,2,3}` benchmarks.
//!
//! Encodings are 32-bit fixed width:
//!
//! ```text
//! [31:26] opcode   [25:22] rd   [21:18] ra   [17:14] rb   [13:0] imm14
//! ```

use std::fmt;

/// Number of scalar registers (`x0` reads as zero).
pub const NUM_XREGS: usize = 16;
/// Number of vector registers.
pub const NUM_VREGS: usize = 8;
/// Vector lanes (32-bit each).
pub const VEC_LANES: usize = 4;

/// A scalar register index (`x0` ..= `x15`).
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Xr(pub u8);

impl Xr {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < NUM_XREGS, "x{i} out of range");
        Xr(i)
    }
}

impl fmt::Debug for Xr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A vector register index (`v0` ..= `v7`).
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Vr(pub u8);

impl Vr {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < NUM_VREGS, "v{i} out of range");
        Vr(i)
    }
}

impl fmt::Debug for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Scalar two-operand ALU operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount mod 64).
    Shl,
    /// Logical shift right (amount mod 64).
    Shr,
    /// Set if less-than (unsigned): 1 or 0.
    Slt,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
    ];

    /// Applies the operation to 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
            AluOp::Slt => (a < b) as u64,
        }
    }

    fn code(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::And => 2,
            AluOp::Or => 3,
            AluOp::Xor => 4,
            AluOp::Shl => 5,
            AluOp::Shr => 6,
            AluOp::Slt => 7,
        }
    }

    fn from_code(c: u8) -> Self {
        Self::ALL[(c & 7) as usize]
    }
}

/// Vector lane-wise operations on 4 × 32-bit lanes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum VecOp {
    /// Lane-wise wrapping add.
    VAdd,
    /// Lane-wise wrapping multiply.
    VMul,
    /// Lane-wise XOR.
    VXor,
    /// Lane-wise multiply-accumulate: `vd += va * vb`.
    VMac,
}

impl VecOp {
    /// All vector operations.
    pub const ALL: [VecOp; 4] = [VecOp::VAdd, VecOp::VMul, VecOp::VXor, VecOp::VMac];

    /// Applies the op to one 32-bit lane (with accumulator `d` for MAC).
    pub fn apply_lane(self, d: u32, a: u32, b: u32) -> u32 {
        match self {
            VecOp::VAdd => a.wrapping_add(b),
            VecOp::VMul => a.wrapping_mul(b),
            VecOp::VXor => a ^ b,
            VecOp::VMac => d.wrapping_add(a.wrapping_mul(b)),
        }
    }

    fn code(self) -> u8 {
        match self {
            VecOp::VAdd => 0,
            VecOp::VMul => 1,
            VecOp::VXor => 2,
            VecOp::VMac => 3,
        }
    }

    fn from_code(c: u8) -> Self {
        Self::ALL[(c & 3) as usize]
    }
}

/// Branch conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum BranchCond {
    /// Taken when `ra == rb`.
    Eq,
    /// Taken when `ra != rb`.
    Ne,
    /// Taken when `ra < rb` (unsigned).
    Lt,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
        }
    }
}

/// An instruction, at the assembler level.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Inst {
    /// No operation.
    Nop,
    /// `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Xr,
        /// First operand.
        ra: Xr,
        /// Second operand.
        rb: Xr,
    },
    /// `rd = ra <op> imm` (imm zero-extended, 14 bits).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Xr,
        /// Operand.
        ra: Xr,
        /// 14-bit immediate.
        imm: u16,
    },
    /// `rd = imm << 14` (load upper immediate).
    Lui {
        /// Destination.
        rd: Xr,
        /// 14-bit immediate.
        imm: u16,
    },
    /// `rd = ra * rb` (low 64 bits; multi-cycle unit).
    Mul {
        /// Destination.
        rd: Xr,
        /// First operand.
        ra: Xr,
        /// Second operand.
        rb: Xr,
    },
    /// `rd = ra / rb` (`rb == 0` yields all-ones; multi-cycle unit).
    Div {
        /// Destination.
        rd: Xr,
        /// Dividend.
        ra: Xr,
        /// Divisor.
        rb: Xr,
    },
    /// `rd = mem[ra + imm]` (word address).
    Lw {
        /// Destination.
        rd: Xr,
        /// Base register.
        ra: Xr,
        /// Word offset.
        imm: u16,
    },
    /// `mem[ra + imm] = rb` (word address).
    Sw {
        /// Source register.
        rb: Xr,
        /// Base register.
        ra: Xr,
        /// Word offset.
        imm: u16,
    },
    /// Conditional branch to `pc + offset`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compare operand.
        ra: Xr,
        /// Second compare operand.
        rb: Xr,
        /// Signed word offset from this instruction.
        offset: i16,
    },
    /// Unconditional jump to `pc + offset`.
    Jump {
        /// Signed word offset from this instruction.
        offset: i16,
    },
    /// Vector lane-wise operation `vd = va <op> vb` (`vd` also read for MAC).
    Vec {
        /// Operation.
        op: VecOp,
        /// Destination (and accumulator for MAC).
        vd: Vr,
        /// First operand.
        va: Vr,
        /// Second operand.
        vb: Vr,
    },
    /// Vector load: `vd = mem[ra + imm .. ra + imm + 2]` (two words).
    Vld {
        /// Destination vector register.
        vd: Vr,
        /// Base register.
        ra: Xr,
        /// Word offset.
        imm: u16,
    },
    /// Vector store: `mem[ra + imm .. +2] = vb`.
    Vst {
        /// Source vector register.
        vb: Vr,
        /// Base register.
        ra: Xr,
        /// Word offset.
        imm: u16,
    },
    /// Stop fetching and issuing; the pipeline drains and the core idles.
    Halt,
    /// Set the issue-throttling level (0 = off .. 3 = max).
    Throttle {
        /// New throttle level.
        level: u8,
    },
}

/// Opcode numbers, used both by the encoder and the RTL decoder.
pub mod opcode {
    /// `NOP`.
    pub const NOP: u8 = 0;
    /// Register-register ALU ops occupy `ALU_BASE + code`.
    pub const ALU_BASE: u8 = 1; // 1..=8
    /// Immediate ALU ops occupy `ALUI_BASE + code`.
    pub const ALUI_BASE: u8 = 9; // 9..=16
    /// `LUI`.
    pub const LUI: u8 = 17;
    /// `MUL`.
    pub const MUL: u8 = 18;
    /// `DIV`.
    pub const DIV: u8 = 19;
    /// `LW`.
    pub const LW: u8 = 20;
    /// `SW`.
    pub const SW: u8 = 21;
    /// `BEQ`.
    pub const BEQ: u8 = 22;
    /// `BNE`.
    pub const BNE: u8 = 23;
    /// `BLT`.
    pub const BLT: u8 = 24;
    /// `J`.
    pub const J: u8 = 25;
    /// Vector ops occupy `VEC_BASE + code`.
    pub const VEC_BASE: u8 = 26; // 26..=29
    /// `VLD`.
    pub const VLD: u8 = 30;
    /// `VST`.
    pub const VST: u8 = 31;
    /// `HALT`.
    pub const HALT: u8 = 32;
    /// `THROTTLE`.
    pub const THROTTLE: u8 = 33;
}

const IMM_MASK: u32 = (1 << 14) - 1;

fn fields(op: u8, rd: u8, ra: u8, rb: u8, imm: u16) -> u32 {
    debug_assert!(op < 64 && rd < 16 && ra < 16 && rb < 16);
    debug_assert!((imm as u32) <= IMM_MASK);
    ((op as u32) << 26)
        | ((rd as u32) << 22)
        | ((ra as u32) << 18)
        | ((rb as u32) << 14)
        | (imm as u32 & IMM_MASK)
}

/// Encodes a signed 14-bit offset.
fn enc_offset(offset: i16) -> u16 {
    debug_assert!(
        (-(1 << 13)..(1 << 13)).contains(&(offset as i32)),
        "offset {offset} out of range"
    );
    (offset as u16) & IMM_MASK as u16
}

/// Decodes a signed 14-bit offset.
fn dec_offset(imm: u16) -> i16 {
    // sign-extend from bit 13
    ((imm << 2) as i16) >> 2
}

impl Inst {
    /// Encodes the instruction to its 32-bit machine form.
    pub fn encode(self) -> u32 {
        use opcode::*;
        match self {
            Inst::Nop => fields(NOP, 0, 0, 0, 0),
            Inst::Alu { op, rd, ra, rb } => fields(ALU_BASE + op.code(), rd.0, ra.0, rb.0, 0),
            Inst::AluImm { op, rd, ra, imm } => fields(ALUI_BASE + op.code(), rd.0, ra.0, 0, imm),
            Inst::Lui { rd, imm } => fields(LUI, rd.0, 0, 0, imm),
            Inst::Mul { rd, ra, rb } => fields(MUL, rd.0, ra.0, rb.0, 0),
            Inst::Div { rd, ra, rb } => fields(DIV, rd.0, ra.0, rb.0, 0),
            Inst::Lw { rd, ra, imm } => fields(LW, rd.0, ra.0, 0, imm),
            Inst::Sw { rb, ra, imm } => fields(SW, 0, ra.0, rb.0, imm),
            Inst::Branch {
                cond,
                ra,
                rb,
                offset,
            } => {
                let op = match cond {
                    BranchCond::Eq => BEQ,
                    BranchCond::Ne => BNE,
                    BranchCond::Lt => BLT,
                };
                fields(op, 0, ra.0, rb.0, enc_offset(offset))
            }
            Inst::Jump { offset } => fields(J, 0, 0, 0, enc_offset(offset)),
            Inst::Vec { op, vd, va, vb } => fields(VEC_BASE + op.code(), vd.0, va.0, vb.0, 0),
            Inst::Vld { vd, ra, imm } => fields(VLD, vd.0, ra.0, 0, imm),
            Inst::Vst { vb, ra, imm } => fields(VST, 0, ra.0, vb.0, imm),
            Inst::Halt => fields(HALT, 0, 0, 0, 0),
            Inst::Throttle { level } => fields(THROTTLE, 0, 0, 0, (level & 3) as u16),
        }
    }

    /// Decodes a 32-bit machine word; unknown opcodes decode as `Nop`.
    pub fn decode(word: u32) -> Inst {
        use opcode::*;
        let op = (word >> 26) as u8;
        let rd = ((word >> 22) & 15) as u8;
        let ra = ((word >> 18) & 15) as u8;
        let rb = ((word >> 14) & 15) as u8;
        let imm = (word & IMM_MASK) as u16;
        match op {
            NOP => Inst::Nop,
            o if (ALU_BASE..ALU_BASE + 8).contains(&o) => Inst::Alu {
                op: AluOp::from_code(o - ALU_BASE),
                rd: Xr(rd),
                ra: Xr(ra),
                rb: Xr(rb),
            },
            o if (ALUI_BASE..ALUI_BASE + 8).contains(&o) => Inst::AluImm {
                op: AluOp::from_code(o - ALUI_BASE),
                rd: Xr(rd),
                ra: Xr(ra),
                imm,
            },
            LUI => Inst::Lui { rd: Xr(rd), imm },
            MUL => Inst::Mul {
                rd: Xr(rd),
                ra: Xr(ra),
                rb: Xr(rb),
            },
            DIV => Inst::Div {
                rd: Xr(rd),
                ra: Xr(ra),
                rb: Xr(rb),
            },
            LW => Inst::Lw {
                rd: Xr(rd),
                ra: Xr(ra),
                imm,
            },
            SW => Inst::Sw {
                rb: Xr(rb),
                ra: Xr(ra),
                imm,
            },
            BEQ => Inst::Branch {
                cond: BranchCond::Eq,
                ra: Xr(ra),
                rb: Xr(rb),
                offset: dec_offset(imm),
            },
            BNE => Inst::Branch {
                cond: BranchCond::Ne,
                ra: Xr(ra),
                rb: Xr(rb),
                offset: dec_offset(imm),
            },
            BLT => Inst::Branch {
                cond: BranchCond::Lt,
                ra: Xr(ra),
                rb: Xr(rb),
                offset: dec_offset(imm),
            },
            J => Inst::Jump {
                offset: dec_offset(imm),
            },
            o if (VEC_BASE..VEC_BASE + 4).contains(&o) => Inst::Vec {
                op: VecOp::from_code(o - VEC_BASE),
                vd: Vr(rd & 7),
                va: Vr(ra & 7),
                vb: Vr(rb & 7),
            },
            VLD => Inst::Vld {
                vd: Vr(rd & 7),
                ra: Xr(ra),
                imm,
            },
            VST => Inst::Vst {
                vb: Vr(rb & 7),
                ra: Xr(ra),
                imm,
            },
            HALT => Inst::Halt,
            THROTTLE => Inst::Throttle {
                level: (imm & 3) as u8,
            },
            _ => Inst::Nop,
        }
    }

    /// Returns `true` if this instruction ends a program's execution.
    pub fn is_halt(self) -> bool {
        matches!(self, Inst::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instructions() -> Vec<Inst> {
        let mut v = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Throttle { level: 2 },
            Inst::Lui {
                rd: Xr(3),
                imm: 0x3FF,
            },
            Inst::Mul {
                rd: Xr(1),
                ra: Xr(2),
                rb: Xr(3),
            },
            Inst::Div {
                rd: Xr(4),
                ra: Xr(5),
                rb: Xr(6),
            },
            Inst::Lw {
                rd: Xr(7),
                ra: Xr(8),
                imm: 100,
            },
            Inst::Sw {
                rb: Xr(9),
                ra: Xr(10),
                imm: 200,
            },
            Inst::Jump { offset: -5 },
            Inst::Vld {
                vd: Vr(3),
                ra: Xr(2),
                imm: 8,
            },
            Inst::Vst {
                vb: Vr(4),
                ra: Xr(1),
                imm: 16,
            },
        ];
        for op in AluOp::ALL {
            v.push(Inst::Alu {
                op,
                rd: Xr(1),
                ra: Xr(2),
                rb: Xr(3),
            });
            v.push(Inst::AluImm {
                op,
                rd: Xr(4),
                ra: Xr(5),
                imm: 77,
            });
        }
        for op in VecOp::ALL {
            v.push(Inst::Vec {
                op,
                vd: Vr(1),
                va: Vr(2),
                vb: Vr(3),
            });
        }
        for cond in [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt] {
            v.push(Inst::Branch {
                cond,
                ra: Xr(1),
                rb: Xr(2),
                offset: -100,
            });
            v.push(Inst::Branch {
                cond,
                ra: Xr(3),
                rb: Xr(4),
                offset: 100,
            });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for inst in all_sample_instructions() {
            let enc = inst.encode();
            assert_eq!(Inst::decode(enc), inst, "{inst:?} ({enc:#010x})");
        }
    }

    #[test]
    fn offsets_sign_extend() {
        assert_eq!(dec_offset(enc_offset(-1)), -1);
        assert_eq!(dec_offset(enc_offset(-8192)), -8192);
        assert_eq!(dec_offset(enc_offset(8191)), 8191);
        assert_eq!(dec_offset(enc_offset(0)), 0);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift amount is mod 64");
        assert_eq!(AluOp::Slt.apply(1, 2), 1);
        assert_eq!(AluOp::Slt.apply(2, 1), 0);
    }

    #[test]
    fn vec_lane_semantics() {
        assert_eq!(VecOp::VAdd.apply_lane(0, u32::MAX, 1), 0);
        assert_eq!(VecOp::VMac.apply_lane(10, 3, 4), 22);
    }

    #[test]
    fn unknown_opcode_decodes_to_nop() {
        assert_eq!(Inst::decode(0xFC00_0000), Inst::Nop);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xr_range_checked() {
        Xr::new(16);
    }
}
