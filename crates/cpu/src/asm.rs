//! A small structured assembler with label support.

use crate::isa::{AluOp, BranchCond, Inst, VecOp, Vr, Xr};
use std::collections::HashMap;

/// A forward-referenceable branch target.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds instruction sequences with labels, then resolves branch
/// offsets.
///
/// ```
/// use apollo_cpu::{Asm, Xr};
///
/// let mut a = Asm::new();
/// a.addi(Xr(1), Xr(0), 10);        // x1 = 10
/// let loop_top = a.label();
/// a.addi(Xr(1), Xr(1), 0x3FFF);    // x1 -= 1 (wrapping add of -1 mod 2^14... use sub)
/// a.sub(Xr(1), Xr(1), Xr(2));
/// a.bne(Xr(1), Xr(0), loop_top);
/// a.halt();
/// let program = a.assemble();
/// assert!(program.len() >= 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    insts: Vec<PendingInst>,
    labels: HashMap<Label, usize>,
    next_label: usize,
}

#[derive(Clone, Debug)]
enum PendingInst {
    Fixed(Inst),
    Branch {
        cond: BranchCond,
        ra: Xr,
        rb: Xr,
        target: Label,
    },
    Jump {
        target: Label,
    },
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(PendingInst::Fixed(inst));
        self
    }

    /// Defines a label at the current position.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        self.labels.insert(l, self.insts.len());
        l
    }

    /// Creates a label to be placed later with
    /// [`place`](Asm::place) (forward references).
    pub fn forward_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Places a previously created forward label at the current position.
    ///
    /// # Panics
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        let prev = self.labels.insert(label, self.insts.len());
        assert!(prev.is_none(), "label placed twice");
    }

    // -- convenience emitters --------------------------------------------

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        })
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            rd,
            ra,
            rb,
        })
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            rd,
            ra,
            rb,
        })
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::And,
            rd,
            ra,
            rb,
        })
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Or,
            rd,
            ra,
            rb,
        })
    }

    /// Generic register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Alu { op, rd, ra, rb })
    }

    /// `rd = ra + imm`.
    pub fn addi(&mut self, rd: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Add,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra ^ imm`.
    pub fn xori(&mut self, rd: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Xor,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra << imm`.
    pub fn shli(&mut self, rd: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Shl,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra >> imm`.
    pub fn shri(&mut self, rd: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Shr,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = imm << 14`.
    pub fn lui(&mut self, rd: Xr, imm: u16) -> &mut Self {
        self.push(Inst::Lui { rd, imm })
    }

    /// `rd = ra * rb`.
    pub fn mul(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Mul { rd, ra, rb })
    }

    /// `rd = ra / rb`.
    pub fn div(&mut self, rd: Xr, ra: Xr, rb: Xr) -> &mut Self {
        self.push(Inst::Div { rd, ra, rb })
    }

    /// `rd = mem[ra + imm]`.
    pub fn lw(&mut self, rd: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::Lw { rd, ra, imm })
    }

    /// `mem[ra + imm] = rb`.
    pub fn sw(&mut self, rb: Xr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::Sw { rb, ra, imm })
    }

    /// Branch if equal.
    pub fn beq(&mut self, ra: Xr, rb: Xr, target: Label) -> &mut Self {
        self.insts.push(PendingInst::Branch {
            cond: BranchCond::Eq,
            ra,
            rb,
            target,
        });
        self
    }

    /// Branch if not equal.
    pub fn bne(&mut self, ra: Xr, rb: Xr, target: Label) -> &mut Self {
        self.insts.push(PendingInst::Branch {
            cond: BranchCond::Ne,
            ra,
            rb,
            target,
        });
        self
    }

    /// Branch if unsigned less-than.
    pub fn blt(&mut self, ra: Xr, rb: Xr, target: Label) -> &mut Self {
        self.insts.push(PendingInst::Branch {
            cond: BranchCond::Lt,
            ra,
            rb,
            target,
        });
        self
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.insts.push(PendingInst::Jump { target });
        self
    }

    /// Vector op.
    pub fn vec(&mut self, op: VecOp, vd: Vr, va: Vr, vb: Vr) -> &mut Self {
        self.push(Inst::Vec { op, vd, va, vb })
    }

    /// Vector load.
    pub fn vld(&mut self, vd: Vr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::Vld { vd, ra, imm })
    }

    /// Vector store.
    pub fn vst(&mut self, vb: Vr, ra: Xr, imm: u16) -> &mut Self {
        self.push(Inst::Vst { vb, ra, imm })
    }

    /// Issue-throttle hint.
    pub fn throttle(&mut self, level: u8) -> &mut Self {
        self.push(Inst::Throttle { level })
    }

    /// `HALT`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Loads a full 64-bit constant into `rd` using a LUI/ORI/SHLI
    /// sequence (5+ instructions).
    pub fn load_const(&mut self, rd: Xr, value: u64) -> &mut Self {
        // Build 64 bits in 14-bit chunks, MSB first.
        self.lui(rd, ((value >> 50) & 0x3FFF) as u16);
        self.shri(rd, rd, 14); // LUI put chunk at [27:14]; normalize to low bits
        for shift in [36u8, 22, 8] {
            self.shli(rd, rd, 14);
            self.push(Inst::AluImm {
                op: AluOp::Or,
                rd,
                ra: rd,
                imm: ((value >> shift) & 0x3FFF) as u16,
            });
        }
        self.shli(rd, rd, 8);
        self.push(Inst::AluImm {
            op: AluOp::Or,
            rd,
            ra: rd,
            imm: (value & 0xFF) as u16,
        });
        self
    }

    /// Resolves labels and returns the encoded instruction sequence.
    ///
    /// # Panics
    /// Panics if a referenced label was never placed or an offset does
    /// not fit in 14 signed bits.
    pub fn assemble(&self) -> Vec<Inst> {
        self.insts
            .iter()
            .enumerate()
            .map(|(pc, p)| match p {
                PendingInst::Fixed(i) => *i,
                PendingInst::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    let t = *self.labels.get(target).expect("unplaced label");
                    let offset = t as i64 - pc as i64;
                    assert!(
                        (-(1 << 13)..(1 << 13)).contains(&offset),
                        "branch offset {offset} out of range"
                    );
                    Inst::Branch {
                        cond: *cond,
                        ra: *ra,
                        rb: *rb,
                        offset: offset as i16,
                    }
                }
                PendingInst::Jump { target } => {
                    let t = *self.labels.get(target).expect("unplaced label");
                    let offset = t as i64 - pc as i64;
                    assert!(
                        (-(1 << 13)..(1 << 13)).contains(&offset),
                        "jump offset {offset} out of range"
                    );
                    Inst::Jump {
                        offset: offset as i16,
                    }
                }
            })
            .collect()
    }

    /// Assembles directly to machine words.
    pub fn assemble_words(&self) -> Vec<u32> {
        self.assemble().into_iter().map(Inst::encode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_offset() {
        let mut a = Asm::new();
        a.nop();
        let top = a.label();
        a.addi(Xr(1), Xr(1), 1);
        a.bne(Xr(1), Xr(2), top);
        a.halt();
        let prog = a.assemble();
        match prog[2] {
            Inst::Branch { offset, .. } => assert_eq!(offset, -1),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn forward_branch_offset() {
        let mut a = Asm::new();
        let done = a.forward_label();
        a.beq(Xr(0), Xr(0), done);
        a.nop();
        a.nop();
        a.place(done);
        a.halt();
        let prog = a.assemble();
        match prog[0] {
            Inst::Branch { offset, .. } => assert_eq!(offset, 3),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut a = Asm::new();
        let l = a.forward_label();
        a.jump(l);
        a.assemble();
    }

    #[test]
    fn load_const_roundtrip_through_golden_model() {
        use crate::golden::GoldenModel;
        for value in [
            0u64,
            1,
            0xDEAD_BEEF_CAFE_F00D,
            u64::MAX,
            0x8000_0000_0000_0001,
        ] {
            let mut a = Asm::new();
            a.load_const(Xr(5), value);
            a.halt();
            let mut g = GoldenModel::new(1 << 12);
            g.run(&a.assemble(), 10_000);
            assert_eq!(g.xregs[5], value, "value {value:#x}");
        }
    }
}
