//! Architectural golden model (instruction-set simulator).
//!
//! Executes programs at the architecture level, independent of the RTL
//! micro-architecture. Used to differentially test the RTL CPU and to
//! cheaply pre-screen generated programs (e.g. GA individuals that would
//! never halt).

use crate::isa::{Inst, NUM_VREGS, NUM_XREGS, VEC_LANES};

/// Result of running the golden model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// The program reached `HALT` after this many executed instructions.
    Halted {
        /// Number of instructions executed, including the `HALT`.
        executed: u64,
    },
    /// The instruction budget ran out before `HALT`.
    OutOfBudget,
}

/// Architectural state and executor.
#[derive(Clone, Debug)]
pub struct GoldenModel {
    /// Scalar registers (`x0` is hardwired to zero).
    pub xregs: [u64; NUM_XREGS],
    /// Vector registers as 32-bit lanes.
    pub vregs: [[u32; VEC_LANES]; NUM_VREGS],
    /// Data memory, word-addressed (addresses wrap at its length).
    pub mem: Vec<u64>,
    /// Program counter (instruction index).
    pub pc: u64,
    /// Current throttle level (architecturally visible state).
    pub throttle: u8,
}

impl GoldenModel {
    /// Creates a model with `mem_words` words of zeroed data memory.
    ///
    /// # Panics
    /// Panics if `mem_words` is zero.
    pub fn new(mem_words: usize) -> Self {
        assert!(mem_words > 0, "data memory must be non-empty");
        GoldenModel {
            xregs: [0; NUM_XREGS],
            vregs: [[0; VEC_LANES]; NUM_VREGS],
            mem: vec![0; mem_words],
            pc: 0,
            throttle: 0,
        }
    }

    fn wrap_addr(&self, addr: u64) -> usize {
        (addr % self.mem.len() as u64) as usize
    }

    fn write_x(&mut self, rd: u8, value: u64) {
        if rd != 0 {
            self.xregs[rd as usize] = value;
        }
    }

    /// Executes a single instruction, advancing the PC.
    ///
    /// Returns `true` if it was `HALT`.
    pub fn exec(&mut self, inst: Inst) -> bool {
        let mut next_pc = self.pc.wrapping_add(1);
        match inst {
            Inst::Nop => {}
            Inst::Alu { op, rd, ra, rb } => {
                let v = op.apply(self.xregs[ra.0 as usize], self.xregs[rb.0 as usize]);
                self.write_x(rd.0, v);
            }
            Inst::AluImm { op, rd, ra, imm } => {
                let v = op.apply(self.xregs[ra.0 as usize], imm as u64);
                self.write_x(rd.0, v);
            }
            Inst::Lui { rd, imm } => self.write_x(rd.0, (imm as u64) << 14),
            Inst::Mul { rd, ra, rb } => {
                let v = self.xregs[ra.0 as usize].wrapping_mul(self.xregs[rb.0 as usize]);
                self.write_x(rd.0, v);
            }
            Inst::Div { rd, ra, rb } => {
                let b = self.xregs[rb.0 as usize];
                let v = self.xregs[ra.0 as usize].checked_div(b).unwrap_or(u64::MAX);
                self.write_x(rd.0, v);
            }
            Inst::Lw { rd, ra, imm } => {
                let addr = self.wrap_addr(self.xregs[ra.0 as usize].wrapping_add(imm as u64));
                self.write_x(rd.0, self.mem[addr]);
            }
            Inst::Sw { rb, ra, imm } => {
                let addr = self.wrap_addr(self.xregs[ra.0 as usize].wrapping_add(imm as u64));
                self.mem[addr] = self.xregs[rb.0 as usize];
            }
            Inst::Branch {
                cond,
                ra,
                rb,
                offset,
            } => {
                if cond.taken(self.xregs[ra.0 as usize], self.xregs[rb.0 as usize]) {
                    next_pc = self.pc.wrapping_add_signed(offset as i64);
                }
            }
            Inst::Jump { offset } => {
                next_pc = self.pc.wrapping_add_signed(offset as i64);
            }
            Inst::Vec { op, vd, va, vb } => {
                let a = self.vregs[va.0 as usize];
                let b = self.vregs[vb.0 as usize];
                let d = self.vregs[vd.0 as usize];
                let mut out = [0u32; VEC_LANES];
                for lane in 0..VEC_LANES {
                    out[lane] = op.apply_lane(d[lane], a[lane], b[lane]);
                }
                self.vregs[vd.0 as usize] = out;
            }
            Inst::Vld { vd, ra, imm } => {
                let base = self.xregs[ra.0 as usize].wrapping_add(imm as u64);
                let w0 = self.mem[self.wrap_addr(base)];
                let w1 = self.mem[self.wrap_addr(base.wrapping_add(1))];
                self.vregs[vd.0 as usize] =
                    [w0 as u32, (w0 >> 32) as u32, w1 as u32, (w1 >> 32) as u32];
            }
            Inst::Vst { vb, ra, imm } => {
                let base = self.xregs[ra.0 as usize].wrapping_add(imm as u64);
                let v = self.vregs[vb.0 as usize];
                let w0 = (v[0] as u64) | ((v[1] as u64) << 32);
                let w1 = (v[2] as u64) | ((v[3] as u64) << 32);
                let a0 = self.wrap_addr(base);
                let a1 = self.wrap_addr(base.wrapping_add(1));
                self.mem[a0] = w0;
                self.mem[a1] = w1;
            }
            Inst::Halt => return true,
            Inst::Throttle { level } => self.throttle = level & 3,
        }
        self.pc = next_pc;
        false
    }

    /// Runs `program` from the current PC until `HALT` or `max_insts`
    /// executed instructions. The PC wraps at the program length.
    pub fn run(&mut self, program: &[Inst], max_insts: u64) -> GoldenOutcome {
        if program.is_empty() {
            return GoldenOutcome::OutOfBudget;
        }
        for executed in 1..=max_insts {
            let inst = program[(self.pc % program.len() as u64) as usize];
            if self.exec(inst) {
                return GoldenOutcome::Halted { executed };
            }
        }
        GoldenOutcome::OutOfBudget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{Vr, Xr};

    #[test]
    fn loop_sums_integers() {
        // sum 1..=10 into x3
        let mut a = Asm::new();
        a.addi(Xr(1), Xr(0), 10); // i = 10
        a.addi(Xr(2), Xr(0), 1);
        let top = a.label();
        a.add(Xr(3), Xr(3), Xr(1));
        a.sub(Xr(1), Xr(1), Xr(2));
        a.bne(Xr(1), Xr(0), top);
        a.halt();
        let mut g = GoldenModel::new(64);
        let out = g.run(&a.assemble(), 1000);
        assert!(matches!(out, GoldenOutcome::Halted { .. }));
        assert_eq!(g.xregs[3], 55);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut a = Asm::new();
        a.addi(Xr(0), Xr(0), 99);
        a.halt();
        let mut g = GoldenModel::new(64);
        g.run(&a.assemble(), 10);
        assert_eq!(g.xregs[0], 0);
    }

    #[test]
    fn memory_roundtrip_and_wrap() {
        let mut a = Asm::new();
        a.addi(Xr(1), Xr(0), 7);
        a.sw(Xr(1), Xr(0), 3);
        a.lw(Xr(2), Xr(0), 3);
        // address 67 wraps to 3 in a 64-word memory
        a.addi(Xr(3), Xr(0), 67);
        a.lw(Xr(4), Xr(3), 0);
        a.halt();
        let mut g = GoldenModel::new(64);
        g.run(&a.assemble(), 100);
        assert_eq!(g.xregs[2], 7);
        assert_eq!(g.xregs[4], 7);
    }

    #[test]
    fn vector_load_compute_store() {
        let mut a = Asm::new();
        a.vld(Vr(1), Xr(0), 0);
        a.vld(Vr(2), Xr(0), 2);
        a.vec(crate::isa::VecOp::VAdd, Vr(3), Vr(1), Vr(2));
        a.vst(Vr(3), Xr(0), 4);
        a.halt();
        let mut g = GoldenModel::new(64);
        g.mem[0] = 0x0000_0002_0000_0001; // lanes 1,2
        g.mem[1] = 0x0000_0004_0000_0003; // lanes 3,4
        g.mem[2] = 0x0000_000A_0000_0009;
        g.mem[3] = 0x0000_000C_0000_000B;
        g.run(&a.assemble(), 100);
        assert_eq!(g.mem[4], 0x0000_000C_0000_000A);
        assert_eq!(g.mem[5], 0x0000_0010_0000_000E);
    }

    #[test]
    fn div_by_zero_is_all_ones() {
        let mut a = Asm::new();
        a.addi(Xr(1), Xr(0), 5);
        a.div(Xr(2), Xr(1), Xr(0));
        a.halt();
        let mut g = GoldenModel::new(64);
        g.run(&a.assemble(), 100);
        assert_eq!(g.xregs[2], u64::MAX);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut a = Asm::new();
        let top = a.label();
        a.jump(top);
        let mut g = GoldenModel::new(64);
        assert_eq!(g.run(&a.assemble(), 50), GoldenOutcome::OutOfBudget);
    }

    #[test]
    fn throttle_is_recorded() {
        let mut a = Asm::new();
        a.throttle(2);
        a.halt();
        let mut g = GoldenModel::new(64);
        g.run(&a.assemble(), 10);
        assert_eq!(g.throttle, 2);
    }
}
