//! CPU configuration and the two evaluation presets.

/// Parameters of the synthetic microprocessor.
///
/// Two presets mirror the paper's evaluation targets: a larger
/// server-class core ([`CpuConfig::neoverse_like`]) and an even larger
/// mobile core with roughly twice the signal count
/// ([`CpuConfig::cortex_like`]), plus a [`CpuConfig::tiny`] configuration
/// for fast unit tests.
///
/// Cache line size is one word throughout; caches are direct-mapped and
/// write-through (no dirty state), so correctness is easy to audit while
/// the latency/energy shape (L1 hit ≪ L2 hit ≪ DRAM) is preserved.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CpuConfig {
    /// Design name (becomes the netlist name).
    pub name: String,
    /// Instruction memory capacity in 32-bit words (power of two).
    pub imem_words: u32,
    /// Data memory (DRAM model) capacity in 64-bit words (power of two).
    pub dram_words: u32,
    /// I-cache lines (power of two, one instruction per line).
    pub icache_lines: u32,
    /// D-cache lines (power of two, one word per line).
    pub dcache_lines: u32,
    /// Unified L2 lines (power of two, one word per line).
    pub l2_lines: u32,
    /// Issue-queue depth (power of two, 2 ..= 8).
    pub queue_depth: u32,
    /// Number of scalar ALUs (1 ..= 4).
    pub num_alus: u8,
    /// Multiplier latency in cycles (>= 1).
    pub mul_latency: u8,
    /// Divider latency in cycles (>= 1).
    pub div_latency: u8,
    /// Extra L2 access latency in cycles (>= 2).
    pub l2_latency: u8,
    /// Extra DRAM access latency in cycles (>= 2).
    pub dram_latency: u8,
    /// I-cache miss refill latency in cycles (>= 2).
    pub imiss_latency: u8,
    /// Depth of the per-unit staging/debug register chains (scales the
    /// signal count the way verification/debug logic does in production
    /// RTL; 0 disables).
    pub staging_depth: u8,
}

impl CpuConfig {
    /// Server-class preset (the "Neoverse-N1-like" evaluation target).
    pub fn neoverse_like() -> Self {
        CpuConfig {
            name: "n1-like".into(),
            imem_words: 4096,
            dram_words: 65536,
            icache_lines: 64,
            dcache_lines: 64,
            l2_lines: 256,
            queue_depth: 4,
            num_alus: 2,
            mul_latency: 3,
            div_latency: 10,
            l2_latency: 6,
            dram_latency: 24,
            imiss_latency: 6,
            staging_depth: 3,
        }
    }

    /// Larger mobile-class preset (the "Cortex-A77-like" target, roughly
    /// twice the signal count of [`CpuConfig::neoverse_like`]).
    pub fn cortex_like() -> Self {
        CpuConfig {
            name: "a77-like".into(),
            imem_words: 4096,
            dram_words: 131072,
            icache_lines: 128,
            dcache_lines: 128,
            l2_lines: 512,
            queue_depth: 8,
            num_alus: 3,
            mul_latency: 2,
            div_latency: 12,
            l2_latency: 5,
            dram_latency: 28,
            imiss_latency: 5,
            staging_depth: 6,
        }
    }

    /// Small configuration for unit tests (fast to build and simulate).
    pub fn tiny() -> Self {
        CpuConfig {
            name: "tiny".into(),
            imem_words: 512,
            dram_words: 256,
            icache_lines: 8,
            dcache_lines: 8,
            l2_lines: 16,
            queue_depth: 4,
            num_alus: 2,
            mul_latency: 3,
            div_latency: 6,
            l2_latency: 4,
            dram_latency: 8,
            imiss_latency: 3,
            staging_depth: 1,
        }
    }

    /// Validates invariants (powers of two, ranges).
    ///
    /// # Panics
    /// Panics with a description of the violated constraint.
    pub fn validate(&self) {
        assert!(
            self.imem_words.is_power_of_two(),
            "imem_words must be a power of two"
        );
        assert!(
            self.dram_words.is_power_of_two(),
            "dram_words must be a power of two"
        );
        assert!(self.icache_lines.is_power_of_two() && self.icache_lines >= 4);
        assert!(self.dcache_lines.is_power_of_two() && self.dcache_lines >= 4);
        assert!(self.l2_lines.is_power_of_two() && self.l2_lines >= 8);
        assert!(
            self.dram_words >= 4 * self.l2_lines && self.dram_words >= 4 * self.dcache_lines,
            "dram must be at least 4x each cache so tags are meaningful"
        );
        assert!(self.queue_depth.is_power_of_two() && (2..=8).contains(&self.queue_depth));
        assert!((1..=4).contains(&self.num_alus));
        assert!(self.mul_latency >= 1 && self.div_latency >= 1);
        assert!(self.l2_latency >= 2 && self.dram_latency >= 2 && self.imiss_latency >= 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CpuConfig::neoverse_like().validate();
        CpuConfig::cortex_like().validate();
        CpuConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let mut c = CpuConfig::tiny();
        c.imem_words = 100;
        c.validate();
    }
}
