//! Multi-core SoC assembly: several cores elaborated into one netlist.
//!
//! The paper motivates design-time power introspection for "the
//! simultaneous execution of multiple CPU cores" (§1). This module
//! builds N cores (each with private memories — think per-core LLC
//! slices) into a single netlist so one APOLLO model can be trained for
//! the whole die and per-cycle SoC power traced across concurrent
//! workloads.

use crate::config::CpuConfig;
use crate::harness::RunOutcome;
use crate::isa::Inst;
use crate::uarch::{build_core, CoreHandles};
use apollo_rtl::{CapAnnotation, CapModel, Netlist, NetlistBuilder, RtlError};
use apollo_sim::{PowerConfig, Simulator};

/// A multi-core SoC configuration.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SocConfig {
    /// Design name.
    pub name: String,
    /// Per-core configurations (cores may be heterogeneous).
    pub cores: Vec<CpuConfig>,
}

impl SocConfig {
    /// A homogeneous SoC of `n` copies of `core`.
    pub fn homogeneous(name: &str, core: CpuConfig, n: usize) -> Self {
        SocConfig {
            name: name.to_owned(),
            cores: vec![core; n],
        }
    }
}

/// Handles into a built SoC.
#[derive(Clone, Debug)]
pub struct SocHandles {
    /// The combined netlist.
    pub netlist: Netlist,
    /// The configuration.
    pub config: SocConfig,
    /// Per-core handles (signal ids are valid in `netlist`).
    pub cores: Vec<CoreHandles>,
    /// Flat signal-bit range occupied by each core (for attribution).
    pub core_bit_ranges: Vec<std::ops::Range<usize>>,
}

/// Builds an SoC netlist with every core namespaced as `coreN/...`.
///
/// # Errors
/// Propagates netlist construction errors.
///
/// # Panics
/// Panics if the configuration has no cores or a core config is invalid.
pub fn build_soc(config: &SocConfig) -> Result<SocHandles, RtlError> {
    assert!(!config.cores.is_empty(), "SoC needs at least one core");
    let mut b = NetlistBuilder::new(config.name.clone());
    let mut cores = Vec::with_capacity(config.cores.len());
    let mut node_ranges = Vec::with_capacity(config.cores.len());
    for (i, core_cfg) in config.cores.iter().enumerate() {
        let start = b.len();
        b.push_scope(format!("core{i}"));
        cores.push(build_core(&mut b, core_cfg));
        b.pop_scope();
        node_ranges.push(start..b.len());
    }
    let netlist = b.build()?;
    let core_bit_ranges = node_ranges
        .into_iter()
        .map(|r| {
            let start = netlist.bit_offset(apollo_rtl::NodeId::from_index(r.start));
            let end = if r.end == netlist.len() {
                netlist.signal_bits()
            } else {
                netlist.bit_offset(apollo_rtl::NodeId::from_index(r.end))
            };
            start..end
        })
        .collect();
    Ok(SocHandles {
        netlist,
        config: config.clone(),
        cores,
        core_bit_ranges,
    })
}

/// Simulation harness for an SoC: per-core program images, run until
/// every core quiesces.
#[derive(Debug)]
pub struct SocSim<'a> {
    handles: &'a SocHandles,
    sim: Simulator<'a>,
}

impl<'a> SocSim<'a> {
    /// Creates a session with one `(program, data)` pair per core.
    ///
    /// # Panics
    /// Panics if the workload count differs from the core count or an
    /// image exceeds its core's memories.
    pub fn new(
        handles: &'a SocHandles,
        cap: &CapAnnotation,
        power: PowerConfig,
        workloads: &[(Vec<Inst>, Vec<u64>)],
    ) -> Self {
        assert_eq!(
            workloads.len(),
            handles.cores.len(),
            "one workload per core required"
        );
        let mut sim = Simulator::new(&handles.netlist, cap, power);
        for ((program, data), core) in workloads.iter().zip(&handles.cores) {
            for (i, inst) in program.iter().enumerate() {
                sim.poke_mem(core.imem, i as u32, inst.encode() as u64);
            }
            for (i, &w) in data.iter().enumerate() {
                sim.poke_mem(core.dram, i as u32, w);
            }
        }
        SocSim { handles, sim }
    }

    /// Creates a session with the default parasitic annotation.
    pub fn with_defaults(
        handles: &'a SocHandles,
        workloads: &[(Vec<Inst>, Vec<u64>)],
    ) -> (CapAnnotation, Self) {
        let cap = CapModel::default().annotate(&handles.netlist);
        let sim = Self::new(handles, &cap, PowerConfig::default(), workloads);
        (cap, sim)
    }

    /// Mutable access to the underlying simulator.
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Shared access to the underlying simulator.
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Whether every core has quiesced.
    pub fn all_quiesced(&self) -> bool {
        self.handles
            .cores
            .iter()
            .all(|c| self.sim.value(c.quiesced) == 1)
    }

    /// Runs until all cores quiesce or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        for cycle in 1..=max_cycles {
            self.sim.step();
            if self.all_quiesced() {
                return RunOutcome::Quiesced { cycles: cycle };
            }
        }
        RunOutcome::OutOfCycles
    }

    /// Architectural scalar register of one core.
    pub fn xreg(&self, core: usize, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.sim.value(self.handles.cores[core].xregs[i - 1])
        }
    }

    /// Retired-instruction counter of one core.
    pub fn retired(&self, core: usize) -> u64 {
        self.sim.value(self.handles.cores[core].retired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::Xr;

    fn sum_program(n: u16) -> Vec<Inst> {
        let mut a = Asm::new();
        a.addi(Xr(1), Xr(0), n);
        a.addi(Xr(2), Xr(0), 1);
        let top = a.label();
        a.add(Xr(3), Xr(3), Xr(1));
        a.sub(Xr(1), Xr(1), Xr(2));
        a.bne(Xr(1), Xr(0), top);
        a.halt();
        a.assemble()
    }

    #[test]
    fn dual_core_runs_independent_programs() {
        let soc = build_soc(&SocConfig::homogeneous("duo", CpuConfig::tiny(), 2)).unwrap();
        assert!(soc.netlist.signal_bits() > 2 * 10_000);
        // Names are namespaced per core.
        assert!(soc
            .netlist
            .named_signals()
            .any(|(_, m)| m.name == "core0/fetch/pc"));
        assert!(soc
            .netlist
            .named_signals()
            .any(|(_, m)| m.name == "core1/fetch/pc"));

        let workloads = vec![(sum_program(10), vec![]), (sum_program(20), vec![])];
        let (_cap, mut sim) = SocSim::with_defaults(&soc, &workloads);
        let out = sim.run(100_000);
        assert!(matches!(out, RunOutcome::Quiesced { .. }), "{out:?}");
        assert_eq!(sim.xreg(0, 3), 55);
        assert_eq!(sim.xreg(1, 3), 210);
        assert!(sim.retired(0) > 0 && sim.retired(1) > 0);
    }

    #[test]
    fn soc_power_exceeds_single_core_power() {
        let core_cfg = CpuConfig::tiny();
        let single = build_soc(&SocConfig::homogeneous("uno", core_cfg.clone(), 1)).unwrap();
        let duo = build_soc(&SocConfig::homogeneous("duo", core_cfg, 2)).unwrap();
        let busy = sum_program(2000);

        let mean_power = |soc: &SocHandles, workloads: &[(Vec<Inst>, Vec<u64>)]| {
            let (_cap, mut sim) = SocSim::with_defaults(soc, workloads);
            let mut total = 0.0;
            for _ in 0..300 {
                sim.sim_mut().step();
                total += sim.sim().power().total;
            }
            total / 300.0
        };
        let p1 = mean_power(&single, &[(busy.clone(), vec![])]);
        let p2 = mean_power(&duo, &[(busy.clone(), vec![]), (busy, vec![])]);
        assert!(p2 > 1.6 * p1, "duo {p2:.0} vs uno {p1:.0}");
    }
}
