//! The CPU's functional-unit hierarchy, exported for per-unit power
//! attribution.
//!
//! [`apollo_rtl::Unit`] tags every netlist node with the fine-grained
//! functional unit it belongs to. Runtime introspection wants both
//! that fine decomposition (fetch / decode / issue / ALU / vector /
//! LSU / L2 …) and a coarse pipeline-stage rollup a dashboard can show
//! at a glance. This module pins the rollup for the synthetic cores
//! built by [`crate::build_cpu`]: every [`Unit`] maps to exactly one
//! [`UnitGroup`], so attribution folded onto groups still sums to the
//! same total.

use apollo_rtl::Unit;

/// A named rollup of functional units (one pipeline region).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UnitGroup {
    /// Stable lower-case group name (used in metric/event field names).
    pub name: &'static str,
    /// The functional units the group covers.
    pub units: &'static [Unit],
}

/// The pipeline-region rollup of the synthetic cores. Every
/// [`Unit`] appears in exactly one group (checked by a test).
pub const UNIT_HIERARCHY: &[UnitGroup] = &[
    UnitGroup {
        name: "frontend",
        units: &[Unit::Fetch, Unit::Decode],
    },
    UnitGroup {
        name: "issue",
        units: &[Unit::Issue],
    },
    UnitGroup {
        name: "ex_scalar",
        units: &[Unit::Alu, Unit::Multiplier, Unit::RegFile],
    },
    UnitGroup {
        name: "ex_vector",
        units: &[Unit::Vector],
    },
    UnitGroup {
        name: "memory",
        units: &[Unit::LoadStore, Unit::L2],
    },
    UnitGroup {
        name: "clocks",
        units: &[Unit::ClockTree],
    },
    UnitGroup {
        name: "uncore",
        units: &[Unit::Control, Unit::Opm],
    },
];

/// The group a functional unit rolls up into.
pub fn group_of(unit: Unit) -> &'static UnitGroup {
    UNIT_HIERARCHY
        .iter()
        .find(|g| g.units.contains(&unit))
        .expect("UNIT_HIERARCHY covers every Unit")
}

/// Stable lower-case metric label for a functional unit (ASCII
/// alphanumerics only, usable in metric names and event field keys).
pub fn unit_label(unit: Unit) -> &'static str {
    match unit {
        Unit::Fetch => "fetch",
        Unit::Decode => "decode",
        Unit::Issue => "issue",
        Unit::Alu => "alu",
        Unit::Multiplier => "mul",
        Unit::Vector => "vec",
        Unit::LoadStore => "lsu",
        Unit::L2 => "l2",
        Unit::RegFile => "regfile",
        Unit::ClockTree => "clock",
        Unit::Control => "control",
        Unit::Opm => "opm",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_partitions_all_units() {
        for unit in Unit::ALL {
            let owners: Vec<_> = UNIT_HIERARCHY
                .iter()
                .filter(|g| g.units.contains(&unit))
                .collect();
            assert_eq!(
                owners.len(),
                1,
                "unit {unit:?} must be in exactly one group"
            );
            assert!(group_of(unit).units.contains(&unit));
        }
    }

    #[test]
    fn labels_are_metric_safe_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for unit in Unit::ALL {
            let l = unit_label(unit);
            assert!(l
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(seen.insert(l), "duplicate label {l}");
        }
        let mut names = std::collections::BTreeSet::new();
        for g in UNIT_HIERARCHY {
            assert!(g.name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(names.insert(g.name), "duplicate group {}", g.name);
        }
    }
}
