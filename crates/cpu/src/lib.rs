//! # apollo-cpu
//!
//! The synthetic microprocessor substrate for the APOLLO reproduction:
//! a compact RISC ISA ([`Inst`]), a structured [assembler](Asm), an
//! architectural [golden model](GoldenModel), and — most importantly —
//! a parametric RTL [micro-architecture](build_cpu) built on
//! [`apollo_rtl`]: a single-issue scoreboarded core with out-of-order
//! completion, I/D caches, a unified L2, a 4-lane vector unit, iterative
//! multiply/divide, issue throttling and unit-level clock gating.
//!
//! Two presets mirror the paper's evaluation targets
//! ([`CpuConfig::neoverse_like`] and the larger
//! [`CpuConfig::cortex_like`]); [`benchmarks`] recreates the paper's
//! Table 4 suite of designer-handcrafted test benchmarks plus longer
//! workloads for the emulator-assisted flow.
//!
//! ## Example
//!
//! ```
//! use apollo_cpu::{build_cpu, Asm, CpuConfig, CpuSim, Xr};
//! use apollo_rtl::CapModel;
//! use apollo_sim::PowerConfig;
//!
//! let handles = build_cpu(&CpuConfig::tiny())?;
//! let cap = CapModel::default().annotate(&handles.netlist);
//!
//! let mut a = Asm::new();
//! a.addi(Xr(1), Xr(0), 2);
//! a.addi(Xr(2), Xr(0), 3);
//! a.add(Xr(3), Xr(1), Xr(2));
//! a.halt();
//!
//! let mut sim = CpuSim::new(&handles, &cap, PowerConfig::default(), &a.assemble(), &[]);
//! sim.run(1_000);
//! assert_eq!(sim.xreg(3), 5);
//! # Ok::<(), apollo_rtl::RtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
pub mod benchmarks;
mod config;
mod golden;
mod harness;
mod isa;
mod soc;
mod uarch;
pub mod units;

pub use asm::{Asm, Label};
pub use config::CpuConfig;
pub use golden::{GoldenModel, GoldenOutcome};
pub use harness::{CpuBatch, CpuSim, RunOutcome};
pub use isa::{opcode, AluOp, BranchCond, Inst, VecOp, Vr, Xr, NUM_VREGS, NUM_XREGS, VEC_LANES};
pub use soc::{build_soc, SocConfig, SocHandles, SocSim};
pub use uarch::{build_core, build_cpu, CoreHandles, CpuHandles, ADDR_W, PC_W};
