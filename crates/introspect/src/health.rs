//! Fleet health surface: the shared registry behind `/healthz` and
//! `/status`.
//!
//! The monitor loop, the supervisor, and the serving layer all write
//! into one [`HealthRegistry`]; the introspect server reads it to
//! answer two endpoints:
//!
//! * `/healthz` — liveness/readiness in one cheap check:
//!   `200 ok` while no pipeline is degraded, `503 degraded` otherwise.
//! * `/status` — a versioned JSON [`StatusSnapshot`] with
//!   per-pipeline supervisor state (restart counts, backoff stage),
//!   checkpoint age, drift/fail-safe arming, window publish rate, and
//!   per-subscriber hub queue state.
//!
//! `StatusSnapshot` is a [`Framed`] record family (its own
//! [`STATUS_VERSION`]), so `apollo trace-lint`'s machinery —
//! version gate, payload rules, round-trip closure — applies to the
//! health surface exactly as it does to trace records.

use crate::sync::plock;
use apollo_telemetry::{validate_framed, Framed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema version stamped into every [`StatusSnapshot`].
pub const STATUS_VERSION: u32 = 1;

/// Supervisor-visible lifecycle states a pipeline can report.
pub const PIPELINE_STATES: [&str; 5] = ["starting", "running", "backoff", "degraded", "completed"];

/// One pipeline's health row in a [`StatusSnapshot`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineHealth {
    /// Pipeline id (`RunOptions::pipeline_id`).
    pub pipeline: String,
    /// Lifecycle state, one of [`PIPELINE_STATES`].
    pub state: String,
    /// Supervisor restarts performed so far.
    pub restarts: u64,
    /// Current backoff stage (0 = not backing off).
    pub backoff_stage: u64,
    /// Windows published by the current incarnation.
    pub windows: u64,
    /// Windows elapsed since the last durable checkpoint (equals
    /// `windows` when checkpointing is off).
    pub checkpoint_age_windows: u64,
    /// Drift alarms raised so far.
    pub drift_alarms: u64,
    /// True while the fail-safe throttle actuator is armed.
    pub armed: bool,
    /// Current throttle level.
    pub throttle: u64,
}

impl PipelineHealth {
    /// A fresh `starting` row for `pipeline`.
    pub fn starting(pipeline: &str) -> PipelineHealth {
        PipelineHealth {
            pipeline: pipeline.to_owned(),
            state: "starting".to_owned(),
            restarts: 0,
            backoff_stage: 0,
            windows: 0,
            checkpoint_age_windows: 0,
            drift_alarms: 0,
            armed: false,
            throttle: 0,
        }
    }
}

/// One hub subscriber's queue state in a [`StatusSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubscriberStatus {
    /// Hub-assigned subscriber id.
    pub id: u64,
    /// Records currently queued.
    pub depth: u64,
    /// Records dropped (queue overflow) so far.
    pub dropped: u64,
    /// Current downsample stride (1 = every record).
    pub stride: u64,
    /// Records thinned by downsampling so far.
    pub downsampled: u64,
}

/// Versioned `/status` payload: the whole fleet's health in one framed
/// JSON object.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatusSnapshot {
    /// Schema version ([`STATUS_VERSION`]).
    pub v: u32,
    /// Dense per-registry snapshot sequence number.
    pub seq: u64,
    /// Nanoseconds since the registry was created. Timing-only.
    pub ts_ns: u64,
    /// False when any pipeline is degraded (mirrors `/healthz`).
    pub healthy: bool,
    /// Total windows published across all pipelines.
    pub uptime_windows: u64,
    /// Aggregate window publish rate since registry creation
    /// (windows/s; 0 until enough wall-clock has elapsed).
    pub window_rate_per_s: f64,
    /// Per-pipeline health rows, ordered by first report.
    pub pipelines: Vec<PipelineHealth>,
    /// Per-subscriber hub queue state at snapshot time.
    pub subscribers: Vec<SubscriberStatus>,
}

impl Framed for StatusSnapshot {
    const VERSION: u32 = STATUS_VERSION;

    fn version(&self) -> u32 {
        self.v
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn check_payload(&self) -> Result<(), String> {
        if !self.window_rate_per_s.is_finite() || self.window_rate_per_s < 0.0 {
            return Err(format!(
                "window_rate_per_s {} is not a finite non-negative rate",
                self.window_rate_per_s
            ));
        }
        for p in &self.pipelines {
            if p.pipeline.is_empty() {
                return Err("empty pipeline id".into());
            }
            if !PIPELINE_STATES.contains(&p.state.as_str()) {
                return Err(format!(
                    "pipeline `{}`: unknown state `{}`",
                    p.pipeline, p.state
                ));
            }
        }
        if self.healthy && self.pipelines.iter().any(|p| p.state == "degraded") {
            return Err("healthy snapshot contains a degraded pipeline".into());
        }
        Ok(())
    }
}

impl StatusSnapshot {
    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        apollo_telemetry::framing::to_jsonl(self)
    }

    /// Parses and validates one `/status` line (version gate, payload
    /// rules, round-trip closure).
    ///
    /// # Errors
    /// Returns a description of the first framing violation.
    pub fn validate_line(line: &str) -> Result<StatusSnapshot, String> {
        validate_framed(line)
    }
}

/// Shared, thread-safe fleet health state. Cheap to update from the
/// monitor loop (one short mutex hold per window) and cheap to read
/// for `/healthz` (one lock + scan of a handful of rows).
#[derive(Debug)]
pub struct HealthRegistry {
    rows: Mutex<Vec<PipelineHealth>>,
    next_seq: AtomicU64,
    started: Instant,
}

impl Default for HealthRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthRegistry {
    /// Empty registry; the creation instant anchors `ts_ns` and the
    /// publish-rate denominator.
    pub fn new() -> HealthRegistry {
        HealthRegistry {
            rows: Mutex::new(Vec::new()),
            next_seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    fn upsert(&self, pipeline: &str, f: impl FnOnce(&mut PipelineHealth)) {
        let mut rows = plock(&self.rows);
        match rows.iter_mut().find(|r| r.pipeline == pipeline) {
            Some(row) => f(row),
            None => {
                let mut row = PipelineHealth::starting(pipeline);
                f(&mut row);
                rows.push(row);
            }
        }
    }

    /// Records a supervisor lifecycle transition for `pipeline`.
    /// Window-level fields are preserved across restarts.
    pub fn report_state(&self, pipeline: &str, state: &str, restarts: u64, backoff_stage: u64) {
        debug_assert!(PIPELINE_STATES.contains(&state), "unknown state `{state}`");
        self.upsert(pipeline, |row| {
            row.state = state.to_owned();
            row.restarts = restarts;
            row.backoff_stage = backoff_stage;
        });
    }

    /// Records one published window for `pipeline` (called from the
    /// monitor loop at window close).
    pub fn report_window(
        &self,
        pipeline: &str,
        windows: u64,
        checkpoint_age_windows: u64,
        drift_alarms: u64,
        armed: bool,
        throttle: u64,
    ) {
        self.upsert(pipeline, |row| {
            if row.state == "starting" {
                row.state = "running".to_owned();
            }
            row.windows = windows;
            row.checkpoint_age_windows = checkpoint_age_windows;
            row.drift_alarms = drift_alarms;
            row.armed = armed;
            row.throttle = throttle;
        });
    }

    /// True while no pipeline is degraded — the whole `/healthz`
    /// decision.
    pub fn healthy(&self) -> bool {
        plock(&self.rows).iter().all(|r| r.state != "degraded")
    }

    /// Builds the next `/status` snapshot, merging in the hub's
    /// per-subscriber queue state. Each call consumes one `seq`.
    pub fn snapshot(&self, subscribers: Vec<SubscriberStatus>) -> StatusSnapshot {
        let pipelines = plock(&self.rows).clone();
        let uptime_windows: u64 = pipelines.iter().map(|p| p.windows).sum();
        let elapsed = self.started.elapsed();
        let secs = elapsed.as_secs_f64();
        let window_rate_per_s = if secs > 1e-3 {
            uptime_windows as f64 / secs
        } else {
            0.0
        };
        StatusSnapshot {
            v: STATUS_VERSION,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: elapsed.as_nanos() as u64,
            healthy: pipelines.iter().all(|p| p.state != "degraded"),
            uptime_windows,
            window_rate_per_s,
            pipelines,
            subscribers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_rows_track_reports_and_roundtrip_the_wire() {
        let reg = HealthRegistry::new();
        reg.report_window("p0", 5, 1, 0, false, 0);
        reg.report_state("p1", "backoff", 2, 3);
        let snap = reg.snapshot(vec![SubscriberStatus {
            id: 1,
            depth: 4,
            dropped: 0,
            stride: 2,
            downsampled: 8,
        }]);
        assert!(snap.healthy);
        assert_eq!(snap.uptime_windows, 5);
        assert_eq!(snap.pipelines.len(), 2);
        assert_eq!(snap.pipelines[0].state, "running");
        assert_eq!(snap.pipelines[1].backoff_stage, 3);
        let back = StatusSnapshot::validate_line(&snap.to_jsonl()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn degraded_pipeline_flips_healthz_and_snapshot() {
        let reg = HealthRegistry::new();
        reg.report_window("p0", 1, 0, 0, false, 0);
        assert!(reg.healthy());
        reg.report_state("p0", "degraded", 4, 0);
        assert!(!reg.healthy());
        let snap = reg.snapshot(Vec::new());
        assert!(!snap.healthy);
        // Window-level progress survives the state transition.
        assert_eq!(snap.pipelines[0].windows, 1);
        assert_eq!(snap.pipelines[0].restarts, 4);
        StatusSnapshot::validate_line(&snap.to_jsonl()).unwrap();
    }

    #[test]
    fn snapshot_seq_is_dense() {
        let reg = HealthRegistry::new();
        let mut check = apollo_telemetry::SeqCheck::new();
        for _ in 0..3 {
            let snap = reg.snapshot(Vec::new());
            check.check(snap.seq()).unwrap();
        }
    }

    #[test]
    fn lint_rejects_inconsistent_and_unversioned_snapshots() {
        let reg = HealthRegistry::new();
        reg.report_state("p0", "degraded", 1, 0);
        let mut snap = reg.snapshot(Vec::new());
        // A snapshot claiming health while degraded must not lint.
        snap.healthy = true;
        let err = StatusSnapshot::validate_line(&snap.to_jsonl()).unwrap_err();
        assert!(err.contains("degraded"), "{err}");
        snap.healthy = false;
        snap.v = STATUS_VERSION + 1;
        let err = StatusSnapshot::validate_line(&snap.to_jsonl()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        snap.v = STATUS_VERSION;
        snap.pipelines[0].state = "zombie".to_owned();
        let err = StatusSnapshot::validate_line(&snap.to_jsonl()).unwrap_err();
        assert!(err.contains("unknown state"), "{err}");
    }
}
