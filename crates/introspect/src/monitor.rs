//! The runtime introspection pipeline.
//!
//! [`run_monitor`] drives a workload through the cycle-accurate
//! simulator and, every `T`-cycle OPM window, produces:
//!
//! * the quantized OPM estimate (bit-exact with
//!   [`apollo_opm::QuantizedOpm::predict_windows`] on an offline
//!   capture of the same cycles),
//! * the float proxy-model prediction (bit-exact with
//!   [`apollo_core::windowed_eval`] on the same capture),
//! * the ground-truth simulated mean power,
//! * exact per-functional-unit attribution
//!   ([`apollo_opm::attribution`]),
//! * drift-detector updates ([`apollo_opm::drift`]) on the
//!   quantization residual (`est − float`) and the model residual
//!   (`est − truth`), optionally armed onto the core's throttle
//!   actuator,
//! * a typed `introspect.window` telemetry event, gauges/counters/
//!   histograms in the global registry, a [`History`] ring entry, and
//!   a broadcast to the serving hub.
//!
//! Everything except wall-clock timestamps is computed in cycle order
//! from this serial loop, so the whole report is bit-identical across
//! simulator thread counts, and with no hub subscribers the pipeline
//! is observationally identical to an offline `apollo eval`.

use crate::checkpoint::{
    check_compatible, load_snapshot, write_snapshot, CheckpointError, CheckpointPolicy,
    MonitorSnapshot, CHECKPOINT_VERSION,
};
use crate::health::HealthRegistry;
use crate::hub::MonitorHub;
use crate::ring::{History, HistoryStats, WindowRecord};
use apollo_core::{ApolloError, ApolloModel, DesignContext};
use apollo_cpu::benchmarks::Benchmark;
use apollo_opm::{
    ArmConfig, AttributionAccumulator, AttributionMap, DriftConfig, DriftDetector, FailSafeArm,
    ProxyTaps, QuantizedOpm,
};
use apollo_sim::WindowTap;
use apollo_telemetry::{Event, FieldValue, RecordBody};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monitor pipeline configuration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// OPM window length `T` in cycles (power of two ≥ 4).
    pub window_t: usize,
    /// Weight quantization bits `B`.
    pub bits: u8,
    /// Total cycles to run; 0 = run until the stop flag rises.
    pub cycles: u64,
    /// Ring-buffer history capacity in windows.
    pub history: usize,
    /// Drift-detector settings (shared by both monitors).
    pub drift: DriftConfig,
    /// When set, drift alarms arm the fail-safe throttle floor on the
    /// core's issue-throttle actuator.
    pub arm: Option<ArmConfig>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_t: 32,
            bits: 10,
            cycles: 0,
            history: 256,
            drift: DriftConfig::default(),
            arm: None,
        }
    }
}

/// Per-run options orthogonal to the steady-state [`MonitorConfig`]:
/// supervision identity, checkpointing, resume, and deterministic
/// chaos injection.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Pipeline id: names the checkpoint file, tags every published
    /// `introspect.window` body with a `pipeline` field (so a fleet
    /// multiplexed onto one hub stays attributable), and labels
    /// supervisor events. `None` = untagged single pipeline.
    pub pipeline: Option<String>,
    /// When set, a [`MonitorSnapshot`] is written atomically every
    /// `every_windows` completed windows.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Attempt to resume from the checkpoint file before starting. A
    /// missing, corrupt, or configuration-mismatched checkpoint falls
    /// back to a fresh start (corruption is counted and logged, never
    /// trusted).
    pub resume: bool,
    /// Chaos hook: panic (deterministically) immediately after
    /// completing each listed global window index. Used by the
    /// supervisor chaos harness; empty in production.
    pub panic_at_windows: Vec<u64>,
    /// Fleet health registry: when set, the loop reports one
    /// [`HealthRegistry::report_window`] row per closed window
    /// (windows, checkpoint age, drift alarms, arm state, throttle)
    /// for the server's `/healthz` + `/status` surface.
    pub health: Option<Arc<HealthRegistry>>,
}

impl RunOptions {
    /// The pipeline id, defaulting to `monitor`.
    pub fn pipeline_id(&self) -> &str {
        self.pipeline.as_deref().unwrap_or("monitor")
    }
}

/// Final state of a monitor run, bit-identical across simulator thread
/// counts for the same inputs.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct MonitorReport {
    /// Completed OPM windows.
    pub windows: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Workload runs (1 + restarts after halt).
    pub runs: u64,
    /// Full-stream mean estimated power.
    pub mean_est: f64,
    /// Full-stream peak estimated power.
    pub peak_est: f64,
    /// Full-stream mean ground-truth power.
    pub mean_true: f64,
    /// Cumulative estimated energy (power · cycles).
    pub energy: f64,
    /// Aggregates over the last retained history windows.
    pub tail: HistoryStats,
    /// Attribution class labels, in stable class order.
    pub unit_labels: Vec<String>,
    /// Cumulative estimated energy attributed per class (above the
    /// intercept baseline).
    pub unit_energy: Vec<f64>,
    /// Alarms from the quantization-residual monitor (`est − float`).
    pub quant_alarms: u64,
    /// Alarms from the model-residual monitor (`est − truth`).
    pub truth_alarms: u64,
    /// Windows spent with the fail-safe throttle floor armed.
    pub armed_windows: u64,
    /// Throttle level at the end of the run.
    pub final_throttle: u8,
    /// Windows evicted from the bounded history ring.
    pub history_dropped: u64,
    /// Window index this run resumed from (`None` = fresh start).
    pub resumed_from: Option<u64>,
    /// Checkpoints written during this run.
    pub checkpoints: u64,
}

/// Runs the introspection pipeline for `bench` on `ctx`'s design.
///
/// `hub` receives one `introspect.window` body per window (the same
/// body emitted to the global event sink); `stop` ends the run at the
/// next cycle boundary (the serving layer's `/shutdown` raises it).
///
/// # Errors
/// Returns [`ApolloError::Spec`] for an invalid OPM spec (bad window /
/// bit-width) or a model the quantizer rejects.
pub fn run_monitor(
    ctx: &DesignContext,
    model: &ApolloModel,
    bench: &Benchmark,
    cfg: &MonitorConfig,
    hub: Option<&MonitorHub>,
    stop: &AtomicBool,
) -> Result<MonitorReport, ApolloError> {
    run_monitor_with(ctx, model, bench, cfg, hub, stop, &RunOptions::default())
}

/// [`run_monitor`] with supervision options: checkpointing, resume,
/// pipeline tagging, and deterministic chaos injection.
///
/// Resume restores the durable pipeline state (counters, drift
/// detectors, arm state, energy and history aggregates) from the
/// checkpoint, then reconstructs the exact simulator state by
/// replaying `cycle_in_run` cycles of the deterministic workload from
/// a fresh simulation — so, absent mid-run throttle changes, the
/// post-resume window stream is bit-identical to the uninterrupted
/// run's stream from the checkpoint window onward (machine-checked by
/// `tests/chaos_differential.rs`).
///
/// # Errors
/// Returns [`ApolloError::Spec`] for an invalid OPM spec or a model
/// the quantizer rejects. Checkpoint problems never fail the run: a
/// bad checkpoint falls back to a fresh start, a failed checkpoint
/// write is counted (`introspect.checkpoint.write_errors`) and
/// skipped.
pub fn run_monitor_with(
    ctx: &DesignContext,
    model: &ApolloModel,
    bench: &Benchmark,
    cfg: &MonitorConfig,
    hub: Option<&MonitorHub>,
    stop: &AtomicBool,
    opts: &RunOptions,
) -> Result<MonitorReport, ApolloError> {
    // Causal tracing: adopt the caller's context (the supervisor
    // enters a per-attempt root before calling) or derive this
    // pipeline's own deterministic root. The pipeline span is the
    // ancestor every window span and delivery span walks back to.
    let _root_ctx = if apollo_telemetry::current().is_active() {
        None
    } else {
        Some(apollo_telemetry::enter(apollo_telemetry::TraceCtx::root(
            apollo_telemetry::intern(opts.pipeline_id()),
            0,
        )))
    };
    let _pipeline_span = apollo_telemetry::span("introspect.pipeline");
    let opm = QuantizedOpm::from_model(model, cfg.bits, cfg.window_t)?;
    let map = AttributionMap::from_model(model);
    let taps = ProxyTaps::new(ctx.netlist(), &opm.bits);
    let mut acc = AttributionAccumulator::new(&opm, &map);
    let mut wtap = WindowTap::new(cfg.window_t);
    let mut quant_drift = DriftDetector::new("quant", cfg.drift.clone());
    let mut truth_drift = DriftDetector::new("truth", cfg.drift.clone());
    let mut arm = cfg.arm.map(FailSafeArm::new);
    let mut history = History::new(cfg.history);
    let unit_fields: Vec<String> = map
        .classes
        .iter()
        .map(|c| format!("unit.{}", c.label))
        .collect();
    let unit_gauges: Vec<String> = map
        .classes
        .iter()
        .map(|c| format!("introspect.unit.{}", c.label))
        .collect();
    let mut unit_energy = vec![0.0f64; map.n_classes()];
    let q = opm.bits.len();
    let t = cfg.window_t;

    apollo_telemetry::emit_event(
        "introspect.start",
        &[
            ("design", FieldValue::from(model.design_name.as_str())),
            ("bench", FieldValue::from(bench.name.as_str())),
            ("q", FieldValue::from(q)),
            ("window_t", FieldValue::from(t)),
        ],
    );

    let pipeline_id = opts.pipeline_id().to_owned();
    let ckpt_file = opts
        .checkpoint
        .as_ref()
        .map(|p| (p.file(&pipeline_id), p.every_windows));

    // Durable state, possibly restored from a checkpoint below.
    let mut cycle = 0u64;
    let mut runs = 1u64;
    let mut cycle_in_run = 0u64;
    let mut throttle = 0u8;
    let mut energy = 0.0f64;
    let mut checkpoints = 0u64;
    let mut resumed_from: Option<u64> = None;
    let mut last_ckpt_window = 0u64;

    if opts.resume {
        if let Some((file, _)) = &ckpt_file {
            match load_snapshot(file).and_then(|snap| {
                check_compatible(
                    &snap,
                    &pipeline_id,
                    &model.design_name,
                    &bench.name,
                    cfg.window_t,
                    cfg.bits,
                )?;
                if snap.unit_energy.len() != map.n_classes() {
                    return Err(CheckpointError::Mismatch(format!(
                        "{} attribution classes != {}",
                        snap.unit_energy.len(),
                        map.n_classes()
                    )));
                }
                Ok(snap)
            }) {
                Ok(snap) => {
                    acc.resume_at(snap.windows);
                    quant_drift = snap.quant_drift;
                    truth_drift = snap.truth_drift;
                    if cfg.arm.is_some() {
                        if let Some(a) = snap.arm {
                            arm = Some(a);
                        }
                    }
                    history = History::resume(cfg.history, &snap.history);
                    energy = snap.energy;
                    unit_energy = snap.unit_energy;
                    cycle = snap.cycle;
                    runs = snap.runs;
                    cycle_in_run = snap.cycle_in_run;
                    throttle = snap.throttle;
                    resumed_from = Some(snap.windows);
                    last_ckpt_window = snap.windows;
                    apollo_telemetry::counter("introspect.checkpoint.resumes").inc();
                    apollo_telemetry::emit_event(
                        "introspect.checkpoint.resume",
                        &[
                            ("pipeline", FieldValue::from(pipeline_id.as_str())),
                            ("window", FieldValue::from(snap.windows)),
                            ("cycle", FieldValue::from(snap.cycle)),
                        ],
                    );
                }
                Err(CheckpointError::Missing) => {}
                Err(e) => {
                    // Corrupt or mismatched state is never trusted:
                    // count it, log it, start fresh.
                    apollo_telemetry::counter("introspect.checkpoint.rejected").inc();
                    apollo_telemetry::diag(&format!(
                        "pipeline `{pipeline_id}`: checkpoint rejected ({e}), starting fresh"
                    ));
                }
            }
        }
    }

    let mut sim = ctx.simulate(&bench.program, &bench.data);
    if cfg.arm.is_some() {
        sim.sim_mut().set_input(ctx.handles.throttle_override_en, 1);
        sim.sim_mut()
            .set_input(ctx.handles.throttle_override, throttle as u64);
    }
    // Reconstruct the simulator state at the checkpoint: the sim is
    // deterministic, so stepping `cycle_in_run` cycles of a fresh
    // workload replays the exact machine state the uninterrupted run
    // had. Replayed cycles feed no accumulators — their windows were
    // already accounted before the snapshot.
    for _ in 0..cycle_in_run {
        debug_assert!(!sim.halted(), "cycle_in_run spans a single workload run");
        if sim.halted() {
            sim = ctx.simulate(&bench.program, &bench.data);
            if cfg.arm.is_some() {
                sim.sim_mut().set_input(ctx.handles.throttle_override_en, 1);
                sim.sim_mut()
                    .set_input(ctx.handles.throttle_override, throttle as u64);
            }
        }
        sim.step();
    }

    let mut toggled = vec![false; q];
    let mut float_acc = 0.0f64;

    // Per-window latency attribution: wall-clock reads only while
    // timing is enabled (`None` marks keep the disabled path free of
    // `Instant` syscalls), accumulated per phase and observed into
    // `introspect.window.*_ns` histograms at window close. `_ns`
    // metrics are excluded from determinism comparisons by contract.
    fn mark() -> Option<Instant> {
        apollo_telemetry::timing_enabled().then(Instant::now)
    }
    let mut win_span: Option<apollo_telemetry::SpanGuard> = None;
    let mut sim_ns = 0u64;
    let mut opm_ns = 0u64;

    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if cfg.cycles > 0 && cycle >= cfg.cycles {
            break;
        }
        if sim.halted() {
            runs += 1;
            apollo_telemetry::emit_event(
                "introspect.restart",
                &[
                    ("cycle", FieldValue::from(cycle)),
                    ("runs", FieldValue::from(runs)),
                ],
            );
            apollo_telemetry::counter("introspect.restarts").inc();
            sim = ctx.simulate(&bench.program, &bench.data);
            cycle_in_run = 0;
            if cfg.arm.is_some() {
                sim.sim_mut().set_input(ctx.handles.throttle_override_en, 1);
                sim.sim_mut()
                    .set_input(ctx.handles.throttle_override, throttle as u64);
            }
        }
        // One span per OPM window, opened lazily at the window's first
        // cycle and closed after the window's effects are visible.
        if win_span.is_none() {
            win_span = Some(apollo_telemetry::span("introspect.window"));
        }
        let t0 = mark();
        sim.step();
        cycle += 1;
        cycle_in_run += 1;

        let power = sim.sim().power();
        {
            let s = sim.sim();
            for (k, slot) in toggled.iter_mut().enumerate() {
                *slot = taps.toggled(s, k);
            }
        }
        let t1 = mark();
        if let (Some(a), Some(b)) = (t0, t1) {
            sim_ns += b.duration_since(a).as_nanos() as u64;
        }
        // Float proxy model, in the exact FP order of
        // `ApolloModel::predict_full`: intercept first, then proxies
        // in model order.
        let mut pred = model.intercept;
        for (k, p) in model.proxies.iter().enumerate() {
            if toggled[k] {
                pred += p.weight;
            }
        }
        float_acc += pred;

        let window_attr = acc.cycle(|k| toggled[k]);
        let window_true = wtap.push(&power);
        let t2 = mark();
        if let (Some(a), Some(b)) = (t1, t2) {
            opm_ns += b.duration_since(a).as_nanos() as u64;
        }

        let Some(attr) = window_attr else {
            continue;
        };
        let truth = window_true.expect("attribution and power windows share T");
        let est = acc.est_power(&attr);
        let float_power = float_acc / t as f64;
        float_acc = 0.0;
        energy += est * t as f64;
        for (i, e) in unit_energy.iter_mut().enumerate() {
            *e += acc.unit_power(&attr, i) * t as f64;
        }

        // Model-health monitors.
        let qs = quant_drift.observe(est - float_power);
        let ts = truth_drift.observe(est - truth.mean.total);
        if let Some(arm) = arm.as_mut() {
            let monitor = if ts.alarm { "truth" } else { "quant" };
            let floor = arm.update(qs.alarm || ts.alarm, attr.window, monitor);
            if floor != throttle {
                throttle = floor;
                sim.sim_mut()
                    .set_input(ctx.handles.throttle_override, throttle as u64);
            }
        }

        // Registry metrics.
        apollo_telemetry::counter("introspect.windows").inc();
        apollo_telemetry::gauge("introspect.est_power").set(est);
        apollo_telemetry::gauge("introspect.float_power").set(float_power);
        apollo_telemetry::gauge("introspect.true_power").set(truth.mean.total);
        apollo_telemetry::gauge("introspect.energy").set(energy);
        apollo_telemetry::gauge("introspect.throttle").set(throttle as f64);
        apollo_telemetry::gauge("introspect.drift.quant.ewma").set(qs.ewma);
        apollo_telemetry::gauge("introspect.drift.truth.ewma").set(ts.ewma);
        apollo_telemetry::histogram("introspect.window_power_milli")
            .observe((est.max(0.0) * 1000.0) as u64);
        for (i, g) in unit_gauges.iter().enumerate() {
            apollo_telemetry::gauge(g).set(acc.unit_power(&attr, i));
        }

        // The typed window event: one body, shared by the global sink
        // and the serving hub. Supervised pipelines tag every body so
        // a fleet multiplexed onto one hub stays attributable.
        let mut fields: Vec<(String, FieldValue)> = vec![
            ("window".to_owned(), FieldValue::from(attr.window)),
            ("cycle".to_owned(), FieldValue::from(cycle)),
            ("raw".to_owned(), FieldValue::from(attr.total)),
            ("out".to_owned(), FieldValue::from(attr.output)),
            ("est_power".to_owned(), FieldValue::from(est)),
            ("float_power".to_owned(), FieldValue::from(float_power)),
            ("true_power".to_owned(), FieldValue::from(truth.mean.total)),
            ("energy".to_owned(), FieldValue::from(energy)),
            ("throttle".to_owned(), FieldValue::from(throttle)),
        ];
        for (i, name) in unit_fields.iter().enumerate() {
            fields.push((name.clone(), FieldValue::from(attr.raw[i])));
        }
        if let Some(tag) = &opts.pipeline {
            fields.push(("pipeline".to_owned(), FieldValue::from(tag.as_str())));
        }
        let t3 = mark();
        if apollo_telemetry::events_enabled() {
            let refs: Vec<(&str, FieldValue)> = fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            apollo_telemetry::emit_event("introspect.window", &refs);
        }
        if let Some(hub) = hub {
            hub.publish(&RecordBody::Event(Event {
                name: "introspect.window".to_owned(),
                fields: fields.clone(),
            }));
        }
        let t4 = mark();
        if let (Some(a), Some(b), Some(c)) = (t2, t3, t4) {
            apollo_telemetry::histogram("introspect.window.sim_ns").observe(sim_ns);
            apollo_telemetry::histogram("introspect.window.opm_ns").observe(opm_ns);
            apollo_telemetry::histogram("introspect.window.attrib_ns")
                .observe(b.duration_since(a).as_nanos() as u64);
            apollo_telemetry::histogram("introspect.window.publish_ns")
                .observe(c.duration_since(b).as_nanos() as u64);
        }
        sim_ns = 0;
        opm_ns = 0;

        history.push(WindowRecord {
            window: attr.window,
            cycle,
            raw: attr.total,
            out: attr.output,
            est_power: est,
            float_power,
            true_power: truth.mean.total,
            energy,
            throttle,
            unit_raw: attr.raw,
        });

        // Checkpoint at the configured window cadence. The window just
        // closed, so every per-window partial (attribution fill, float
        // accumulator, truth tap) is empty and the snapshot is a pure
        // window-boundary state.
        if let Some((file, every)) = &ckpt_file {
            if (attr.window + 1) % every == 0 {
                let snap = MonitorSnapshot {
                    v: CHECKPOINT_VERSION,
                    pipeline: pipeline_id.clone(),
                    design: model.design_name.clone(),
                    bench: bench.name.clone(),
                    window_t: cfg.window_t,
                    bits: cfg.bits,
                    windows: attr.window + 1,
                    cycle,
                    runs,
                    cycle_in_run,
                    throttle,
                    energy,
                    unit_energy: unit_energy.clone(),
                    history: history.aggregates(),
                    quant_drift: quant_drift.clone(),
                    truth_drift: truth_drift.clone(),
                    arm: arm.clone(),
                };
                match write_snapshot(file, &snap) {
                    Ok(bytes) => {
                        checkpoints += 1;
                        last_ckpt_window = attr.window + 1;
                        apollo_telemetry::counter("introspect.checkpoint.writes").inc();
                        apollo_telemetry::emit_event(
                            "introspect.checkpoint.write",
                            &[
                                ("pipeline", FieldValue::from(pipeline_id.as_str())),
                                ("window", FieldValue::from(attr.window + 1)),
                                ("bytes", FieldValue::from(bytes)),
                            ],
                        );
                    }
                    Err(e) => {
                        // Best-effort durability: a failed write skips
                        // this checkpoint, it never stops monitoring.
                        apollo_telemetry::counter("introspect.checkpoint.write_errors").inc();
                        apollo_telemetry::diag(&format!(
                            "pipeline `{pipeline_id}`: checkpoint write failed: {e}"
                        ));
                    }
                }
            }
        }

        if let Some(health) = &opts.health {
            health.report_window(
                &pipeline_id,
                attr.window + 1,
                (attr.window + 1).saturating_sub(last_ckpt_window),
                quant_drift.alarms() + truth_drift.alarms(),
                arm.as_ref().is_some_and(FailSafeArm::armed),
                u64::from(throttle),
            );
        }

        // The window's effects (publish, history, checkpoint, health)
        // are all visible: close its span.
        win_span = None;

        // Chaos hook: a seeded fault plan may demand a panic right
        // after this window's effects became visible (publish +
        // checkpoint), exercising the supervisor's recovery path at a
        // deterministic point.
        if opts.panic_at_windows.contains(&attr.window) {
            panic!("chaos: injected panic at window {}", attr.window);
        }
    }
    drop(win_span);

    let windows = history.total_windows();
    apollo_telemetry::emit_event(
        "introspect.shutdown",
        &[
            ("windows", FieldValue::from(windows)),
            ("cycles", FieldValue::from(cycle)),
        ],
    );

    Ok(MonitorReport {
        windows,
        cycles: cycle,
        runs,
        mean_est: history.mean_est(),
        peak_est: history.peak_est(),
        mean_true: history.mean_true(),
        energy,
        tail: history.tail_stats(64),
        unit_labels: map.classes.iter().map(|c| c.label.clone()).collect(),
        unit_energy,
        quant_alarms: quant_drift.alarms(),
        truth_alarms: truth_drift.alarms(),
        armed_windows: arm.as_ref().map_or(0, |a| a.armed_windows),
        final_throttle: throttle,
        history_dropped: history.dropped(),
        resumed_from,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{train_per_cycle, FeatureSpace, TrainOptions};
    use apollo_cpu::{benchmarks, CpuConfig};

    fn trained_model(ctx: &DesignContext) -> ApolloModel {
        let suite = vec![
            (benchmarks::dhrystone(), 200),
            (benchmarks::maxpwr_cpu(), 200),
        ];
        let trace = ctx.capture_suite(&suite, 50);
        let fs = FeatureSpace::build(&trace.toggles);
        train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 16,
                ..TrainOptions::default()
            },
        )
        .model
    }

    #[test]
    fn monitor_runs_and_attribution_sums_per_window() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let model = trained_model(&ctx);
        let cfg = MonitorConfig {
            cycles: 256,
            window_t: 32,
            ..MonitorConfig::default()
        };
        let stop = AtomicBool::new(false);
        let report =
            run_monitor(&ctx, &model, &benchmarks::dhrystone(), &cfg, None, &stop).unwrap();
        assert_eq!(report.cycles, 256);
        assert_eq!(report.windows, 8);
        assert_eq!(report.runs, 1);
        assert!(report.mean_est > 0.0, "{report:?}");
        assert!(report.mean_true > 0.0);
        assert!(report.energy > 0.0);
        assert_eq!(report.unit_labels.len(), report.unit_energy.len());
        assert!(!report.unit_labels.is_empty());
    }

    #[test]
    fn stop_flag_ends_an_unbounded_run() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let model = trained_model(&ctx);
        let cfg = MonitorConfig {
            cycles: 0,
            window_t: 16,
            ..MonitorConfig::default()
        };
        let stop = AtomicBool::new(true); // raised before the first cycle
        let report =
            run_monitor(&ctx, &model, &benchmarks::dhrystone(), &cfg, None, &stop).unwrap();
        assert_eq!(report.cycles, 0);
        assert_eq!(report.windows, 0);
        assert_eq!(report.mean_est, 0.0, "empty run is all zeros, no NaN");
    }

    #[test]
    fn short_workload_restarts_and_keeps_window_cadence() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let model = trained_model(&ctx);
        // A trivial program halts almost immediately, forcing restarts.
        let mut a = apollo_cpu::Asm::new();
        a.addi(apollo_cpu::Xr(1), apollo_cpu::Xr(0), 1);
        a.halt();
        let bench = Benchmark {
            name: "tiny_halt".into(),
            program: a.assemble(),
            data: vec![],
            cycles: 16,
        };
        let cfg = MonitorConfig {
            cycles: 128,
            window_t: 16,
            ..MonitorConfig::default()
        };
        let stop = AtomicBool::new(false);
        let report = run_monitor(&ctx, &model, &bench, &cfg, None, &stop).unwrap();
        assert!(report.runs > 1, "workload must restart: {report:?}");
        assert_eq!(report.windows, 8, "restarts must not skew window cadence");
    }
}
