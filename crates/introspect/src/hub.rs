//! Fan-out hub between the monitor loop and streaming subscribers.
//!
//! The monitor publishes one [`RecordBody`] per completed window (plus
//! lifecycle events); each `/events` subscriber owns a bounded queue.
//! Publishing **never blocks**: when a subscriber's queue is full the
//! oldest body is dropped and that subscriber's drop counter bumps —
//! a slow reader can lose history but can never stall the simulation
//! loop. Sequence numbers are assigned per subscriber *at send time*
//! (after any drops), so every delivered stream has dense `seq` and
//! passes `trace-lint` regardless of backpressure.
//!
//! # Adaptive downsampling
//!
//! Drop-oldest alone degrades a persistently slow subscriber into a
//! *random* subsample of the stream. With a [`DownsampleConfig`]
//! (see [`MonitorHub::with_downsample`]) the hub instead degrades
//! *gracefully*: once a subscriber's recent drops cross
//! `trigger_drops`, its delivery rate is halved (stride 1 → 2 → 4 …
//! up to `max_stride`) so it receives a regular 1-in-`stride`
//! thinning instead of bursty gaps. Hysteresis re-promotes: after
//! `promote_after` consecutive clean (drop-free) deliveries the
//! stride halves back. Every stride change emits a typed
//! `hub.downsample` event and bumps `introspect.hub.downsample`.

use crate::health::SubscriberStatus;
use crate::sync::plock;
use apollo_telemetry::{FieldValue, RecordBody};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A published body plus the causal identity of the window (or
/// lifecycle point) that produced it. The hub snapshots the
/// publishing thread's trace context at publish time, so delivery —
/// which happens on subscriber connection threads — can still parent
/// its records under the producing span.
#[derive(Clone, Debug, PartialEq)]
pub struct Traced {
    /// Trace of the producing pipeline (0 = untraced).
    pub trace_id: u64,
    /// Span open on the publishing thread at publish time (the window
    /// span for window bodies).
    pub parent_id: u64,
    /// The published record body.
    pub body: RecordBody,
}

/// Per-subscriber adaptive-downsampling policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DownsampleConfig {
    /// Drops since the last stride change that demote the subscriber
    /// (halve its delivery rate).
    pub trigger_drops: u64,
    /// Consecutive clean (drop-free) deliveries that re-promote the
    /// subscriber (double its delivery rate) — the hysteresis that
    /// keeps a borderline reader from flapping.
    pub promote_after: u64,
    /// Stride ceiling (power of two): at most 1 body in `max_stride`
    /// is delivered to a chronically slow subscriber.
    pub max_stride: u32,
}

impl Default for DownsampleConfig {
    fn default() -> Self {
        DownsampleConfig {
            trigger_drops: 32,
            promote_after: 64,
            max_stride: 16,
        }
    }
}

struct SubState {
    id: u64,
    queue: VecDeque<Traced>,
    dropped: u64,
    /// Deliver 1 body in `stride` (1 = full rate).
    stride: u32,
    /// Publish tick, for stride phase.
    tick: u64,
    /// Bodies withheld by downsampling (not counted as drops).
    downsampled: u64,
    drops_since_adjust: u64,
    clean_streak: u64,
}

struct HubInner {
    subs: Vec<SubState>,
    next_id: u64,
    closed: bool,
    total_dropped: u64,
    peak_subs: usize,
}

/// Broadcast hub with per-subscriber bounded queues.
pub struct MonitorHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
    queue_cap: usize,
    downsample: Option<DownsampleConfig>,
}

impl MonitorHub {
    /// New hub whose subscriber queues hold at most `queue_cap` bodies
    /// (drop-oldest only, no adaptive downsampling).
    ///
    /// # Panics
    /// Panics if `queue_cap` is zero.
    pub fn new(queue_cap: usize) -> Arc<Self> {
        Self::build(queue_cap, None)
    }

    /// New hub with per-subscriber adaptive downsampling on top of the
    /// drop-oldest queues.
    ///
    /// # Panics
    /// Panics if `queue_cap` is zero, or if the config's `max_stride`
    /// is not a power of two ≥ 2 or `promote_after`/`trigger_drops`
    /// is zero.
    pub fn with_downsample(queue_cap: usize, cfg: DownsampleConfig) -> Arc<Self> {
        assert!(
            cfg.max_stride >= 2 && cfg.max_stride.is_power_of_two(),
            "max_stride must be a power of two >= 2"
        );
        assert!(
            cfg.trigger_drops >= 1 && cfg.promote_after >= 1,
            "downsample thresholds must be >= 1"
        );
        Self::build(queue_cap, Some(cfg))
    }

    fn build(queue_cap: usize, downsample: Option<DownsampleConfig>) -> Arc<Self> {
        assert!(queue_cap >= 1, "queue capacity must be at least 1");
        Arc::new(MonitorHub {
            inner: Mutex::new(HubInner {
                subs: Vec::new(),
                next_id: 0,
                closed: false,
                total_dropped: 0,
                peak_subs: 0,
            }),
            cv: Condvar::new(),
            queue_cap,
            downsample,
        })
    }

    /// Publishes one body to every live subscriber (drop-oldest on a
    /// full queue, adaptive stride thinning when configured). Never
    /// blocks beyond the hub mutex. The calling thread's trace
    /// context is captured into the queued item, so deliveries stay
    /// attributable to the producing window.
    pub fn publish(&self, body: &RecordBody) {
        let ctx = apollo_telemetry::current();
        let item = Traced {
            trace_id: ctx.trace_id,
            parent_id: ctx.span_id,
            body: body.clone(),
        };
        let mut inner = plock(&self.inner);
        if inner.closed || inner.subs.is_empty() {
            return;
        }
        let cap = self.queue_cap;
        let mut dropped_now = 0u64;
        // Stride changes, reported after the lock drops.
        let mut adjusted: Vec<(u64, u32, u64)> = Vec::new();
        for sub in &mut inner.subs {
            let phase = sub.tick;
            sub.tick += 1;
            if sub.stride > 1 && phase % sub.stride as u64 != 0 {
                sub.downsampled += 1;
                continue;
            }
            if sub.queue.len() == cap {
                sub.queue.pop_front();
                sub.dropped += 1;
                dropped_now += 1;
                sub.drops_since_adjust += 1;
                sub.clean_streak = 0;
            } else {
                sub.clean_streak += 1;
            }
            sub.queue.push_back(item.clone());
            if let Some(ds) = &self.downsample {
                if sub.drops_since_adjust >= ds.trigger_drops && sub.stride < ds.max_stride {
                    sub.stride *= 2;
                    sub.drops_since_adjust = 0;
                    sub.clean_streak = 0;
                    adjusted.push((sub.id, sub.stride, sub.dropped));
                } else if sub.clean_streak >= ds.promote_after && sub.stride > 1 {
                    sub.stride /= 2;
                    sub.clean_streak = 0;
                    sub.drops_since_adjust = 0;
                    adjusted.push((sub.id, sub.stride, sub.dropped));
                }
            }
        }
        inner.total_dropped += dropped_now;
        drop(inner);
        if dropped_now > 0 {
            apollo_telemetry::counter("introspect.hub.dropped").add(dropped_now);
        }
        for (id, stride, dropped) in adjusted {
            apollo_telemetry::counter("introspect.hub.downsample").inc();
            apollo_telemetry::emit_event(
                "hub.downsample",
                &[
                    ("subscriber", FieldValue::from(id)),
                    ("stride", FieldValue::from(stride as u64)),
                    ("dropped", FieldValue::from(dropped)),
                ],
            );
        }
        self.cv.notify_all();
    }

    /// Registers a subscriber; returns its handle and the live count
    /// after the registration.
    pub fn subscribe(self: &Arc<Self>) -> (Subscriber, usize) {
        let mut inner = plock(&self.inner);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.push(SubState {
            id,
            queue: VecDeque::new(),
            dropped: 0,
            stride: 1,
            tick: 0,
            downsampled: 0,
            drops_since_adjust: 0,
            clean_streak: 0,
        });
        let active = inner.subs.len();
        inner.peak_subs = inner.peak_subs.max(active);
        (
            Subscriber {
                hub: Arc::clone(self),
                id,
            },
            active,
        )
    }

    /// Closes the hub: wakes every blocked subscriber, which then
    /// drains its queue and sees end-of-stream.
    pub fn close(&self) {
        plock(&self.inner).closed = true;
        self.cv.notify_all();
    }

    /// True once [`MonitorHub::close`] ran.
    pub fn closed(&self) -> bool {
        plock(&self.inner).closed
    }

    /// Live subscriber count.
    pub fn active(&self) -> usize {
        plock(&self.inner).subs.len()
    }

    /// Highest concurrent subscriber count seen.
    pub fn peak_subscribers(&self) -> usize {
        plock(&self.inner).peak_subs
    }

    /// Bodies dropped across all subscribers by backpressure.
    pub fn total_dropped(&self) -> u64 {
        plock(&self.inner).total_dropped
    }

    /// Per-subscriber queue state for the `/status` surface and the
    /// labeled `/metrics` gauges (one row per live subscriber, in
    /// registration order).
    pub fn subscriber_stats(&self) -> Vec<SubscriberStatus> {
        let inner = plock(&self.inner);
        inner
            .subs
            .iter()
            .map(|s| SubscriberStatus {
                id: s.id,
                depth: s.queue.len() as u64,
                dropped: s.dropped,
                stride: u64::from(s.stride),
                downsampled: s.downsampled,
            })
            .collect()
    }
}

/// What a subscriber poll returned.
pub enum Poll {
    /// One traced body, in publish order.
    Body(Box<Traced>),
    /// Nothing arrived within the timeout; the stream is still live.
    Timeout,
    /// The hub closed and the queue is drained: end of stream.
    Closed,
}

/// One `/events` consumer's handle onto the hub.
pub struct Subscriber {
    hub: Arc<MonitorHub>,
    id: u64,
}

impl Subscriber {
    /// Hub-assigned subscriber id (stable for the subscription's
    /// lifetime; used to label gauges and derive delivery-span ids).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Waits up to `timeout` for the next body.
    pub fn poll(&self, timeout: Duration) -> Poll {
        let mut inner = plock(&self.hub.inner);
        loop {
            let closed = inner.closed;
            if let Some(sub) = inner.subs.iter_mut().find(|s| s.id == self.id) {
                if let Some(body) = sub.queue.pop_front() {
                    return Poll::Body(Box::new(body));
                }
                if closed {
                    return Poll::Closed;
                }
            } else {
                return Poll::Closed;
            }
            let (guard, wait) = self
                .hub
                .cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                // One last drain check before reporting the timeout.
                if let Some(sub) = inner.subs.iter_mut().find(|s| s.id == self.id) {
                    if let Some(body) = sub.queue.pop_front() {
                        return Poll::Body(Box::new(body));
                    }
                    return if inner.closed {
                        Poll::Closed
                    } else {
                        Poll::Timeout
                    };
                }
                return Poll::Closed;
            }
        }
    }

    /// Bodies this subscriber lost to backpressure.
    pub fn dropped(&self) -> u64 {
        let inner = plock(&self.hub.inner);
        inner
            .subs
            .iter()
            .find(|s| s.id == self.id)
            .map_or(0, |s| s.dropped)
    }

    /// Current delivery stride (1 = full rate; 2ⁿ = 1 body in 2ⁿ).
    pub fn stride(&self) -> u32 {
        let inner = plock(&self.hub.inner);
        inner
            .subs
            .iter()
            .find(|s| s.id == self.id)
            .map_or(1, |s| s.stride)
    }

    /// Bodies withheld from this subscriber by adaptive downsampling
    /// (regular thinning — distinct from backpressure drops).
    pub fn downsampled(&self) -> u64 {
        let inner = plock(&self.hub.inner);
        inner
            .subs
            .iter()
            .find(|s| s.id == self.id)
            .map_or(0, |s| s.downsampled)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        let mut inner = plock(&self.hub.inner);
        inner.subs.retain(|s| s.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_telemetry::RecordBody;

    fn msg(i: u64) -> RecordBody {
        RecordBody::Message {
            level: "info".into(),
            text: format!("m{i}"),
        }
    }

    fn text_of(p: Poll) -> String {
        match p {
            Poll::Body(b) => match b.body {
                RecordBody::Message { text, .. } => text,
                other => panic!("unexpected body {other:?}"),
            },
            Poll::Timeout => "<timeout>".into(),
            Poll::Closed => "<closed>".into(),
        }
    }

    #[test]
    fn publish_without_subscribers_is_free() {
        let hub = MonitorHub::new(4);
        for i in 0..100 {
            hub.publish(&msg(i));
        }
        assert_eq!(hub.total_dropped(), 0);
        assert_eq!(hub.active(), 0);
    }

    #[test]
    fn slow_subscriber_drops_oldest_never_blocks() {
        let hub = MonitorHub::new(3);
        let (sub, active) = hub.subscribe();
        assert_eq!(active, 1);
        for i in 0..10 {
            hub.publish(&msg(i));
        }
        // Queue holds the newest 3; 7 dropped.
        assert_eq!(sub.dropped(), 7);
        assert_eq!(hub.total_dropped(), 7);
        for expect in 7..10 {
            assert_eq!(
                text_of(sub.poll(Duration::from_millis(10))),
                format!("m{expect}")
            );
        }
        assert!(matches!(sub.poll(Duration::from_millis(1)), Poll::Timeout));
    }

    #[test]
    fn close_drains_then_ends_stream() {
        let hub = MonitorHub::new(8);
        let (sub, _) = hub.subscribe();
        hub.publish(&msg(0));
        hub.close();
        assert_eq!(text_of(sub.poll(Duration::from_millis(10))), "m0");
        assert!(matches!(sub.poll(Duration::from_millis(10)), Poll::Closed));
    }

    #[test]
    fn dropped_subscriber_deregisters() {
        let hub = MonitorHub::new(2);
        {
            let (_sub, active) = hub.subscribe();
            assert_eq!(active, 1);
        }
        assert_eq!(hub.active(), 0);
        assert_eq!(hub.peak_subscribers(), 1);
    }

    #[test]
    fn stalled_subscriber_escalates_stride_to_cap() {
        let cfg = DownsampleConfig {
            trigger_drops: 2,
            promote_after: 4,
            max_stride: 4,
        };
        let hub = MonitorHub::with_downsample(1, cfg);
        let (sub, _) = hub.subscribe();
        // Never poll: every delivered publish past the first drops one.
        for i in 0..64 {
            hub.publish(&msg(i));
        }
        assert_eq!(sub.stride(), 4, "stride escalates to the cap");
        assert!(sub.downsampled() > 0, "thinning withheld some bodies");
        // At stride 4 only 1 in 4 publishes even reaches the queue, so
        // drops grow ~4x slower than without downsampling.
        assert!(
            sub.dropped() < 40,
            "downsampling curbed drops, got {}",
            sub.dropped()
        );
    }

    #[test]
    fn recovered_subscriber_repromotes_with_hysteresis() {
        let cfg = DownsampleConfig {
            trigger_drops: 2,
            promote_after: 3,
            max_stride: 8,
        };
        let hub = MonitorHub::with_downsample(1, cfg);
        let (sub, _) = hub.subscribe();
        for i in 0..32 {
            hub.publish(&msg(i));
        }
        assert!(sub.stride() > 1, "stalled reader was demoted");
        // Drain the backlog, then consume promptly after each publish:
        // every delivered body is clean, so hysteresis walks the stride
        // back down to 1.
        while matches!(sub.poll(Duration::from_millis(1)), Poll::Body(_)) {}
        let mut i = 32u64;
        while sub.stride() > 1 {
            hub.publish(&msg(i));
            i += 1;
            while matches!(sub.poll(Duration::from_millis(1)), Poll::Body(_)) {}
            assert!(i < 2048, "stride must re-promote, stuck at {}", sub.stride());
        }
        assert_eq!(sub.stride(), 1);
    }

    #[test]
    fn downsampled_delivery_is_regular_not_bursty() {
        let cfg = DownsampleConfig {
            trigger_drops: 1,
            promote_after: u64::MAX / 2, // never re-promote in this test
            max_stride: 2,
        };
        let hub = MonitorHub::with_downsample(1, cfg);
        let (sub, _) = hub.subscribe();
        // Force one drop to demote to stride 2.
        hub.publish(&msg(0));
        hub.publish(&msg(1));
        assert_eq!(sub.stride(), 2);
        while matches!(sub.poll(Duration::from_millis(1)), Poll::Body(_)) {}
        // Now consume promptly: exactly every other publish arrives.
        let mut got = Vec::new();
        for i in 2..12 {
            hub.publish(&msg(i));
            while let Poll::Body(b) = sub.poll(Duration::from_millis(1)) {
                if let RecordBody::Message { text, .. } = b.body {
                    got.push(text);
                }
            }
        }
        assert_eq!(got.len(), 5, "stride 2 delivers 1 in 2: {got:?}");
    }

    #[test]
    fn publish_captures_the_producing_trace_context() {
        let hub = MonitorHub::new(4);
        let (sub, _) = hub.subscribe();
        // Untraced publish: ids stay zero.
        hub.publish(&msg(0));
        // Traced publish: the queued item snapshots trace + open span.
        let root = apollo_telemetry::TraceCtx::root(apollo_telemetry::intern("hub-test"), 0);
        {
            let _ctx = apollo_telemetry::enter(root);
            hub.publish(&msg(1));
        }
        let a = match sub.poll(Duration::from_millis(10)) {
            Poll::Body(b) => *b,
            _ => panic!("expected first body"),
        };
        assert_eq!((a.trace_id, a.parent_id), (0, 0));
        let b = match sub.poll(Duration::from_millis(10)) {
            Poll::Body(b) => *b,
            _ => panic!("expected second body"),
        };
        assert_eq!((b.trace_id, b.parent_id), (root.trace_id, root.span_id));
    }

    #[test]
    fn subscriber_stats_reflect_queue_state() {
        let hub = MonitorHub::new(3);
        let (sub, _) = hub.subscribe();
        for i in 0..5 {
            hub.publish(&msg(i));
        }
        let stats = hub.subscriber_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].depth, 3, "queue holds the newest cap bodies");
        assert_eq!(stats[0].dropped, 2);
        assert_eq!(stats[0].stride, 1);
        drop(sub);
        assert!(hub.subscriber_stats().is_empty());
    }

    #[test]
    fn cross_thread_delivery_in_order() {
        let hub = MonitorHub::new(64);
        let (sub, _) = hub.subscribe();
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            for i in 0..50 {
                h2.publish(&msg(i));
            }
            h2.close();
        });
        let mut got = Vec::new();
        loop {
            match sub.poll(Duration::from_millis(200)) {
                Poll::Body(b) => {
                    if let RecordBody::Message { text, .. } = b.body {
                        got.push(text);
                    }
                }
                Poll::Timeout => continue,
                Poll::Closed => break,
            }
        }
        t.join().unwrap();
        assert_eq!(got.len(), 50, "fast reader loses nothing");
        assert_eq!(got[0], "m0");
        assert_eq!(got[49], "m49");
    }
}
