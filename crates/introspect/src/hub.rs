//! Fan-out hub between the monitor loop and streaming subscribers.
//!
//! The monitor publishes one [`RecordBody`] per completed window (plus
//! lifecycle events); each `/events` subscriber owns a bounded queue.
//! Publishing **never blocks**: when a subscriber's queue is full the
//! oldest body is dropped and that subscriber's drop counter bumps —
//! a slow reader can lose history but can never stall the simulation
//! loop. Sequence numbers are assigned per subscriber *at send time*
//! (after any drops), so every delivered stream has dense `seq` and
//! passes `trace-lint` regardless of backpressure.

use apollo_telemetry::RecordBody;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct SubState {
    id: u64,
    queue: VecDeque<RecordBody>,
    dropped: u64,
}

struct HubInner {
    subs: Vec<SubState>,
    next_id: u64,
    closed: bool,
    total_dropped: u64,
    peak_subs: usize,
}

/// Broadcast hub with per-subscriber bounded queues.
pub struct MonitorHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
    queue_cap: usize,
}

impl MonitorHub {
    /// New hub whose subscriber queues hold at most `queue_cap` bodies.
    ///
    /// # Panics
    /// Panics if `queue_cap` is zero.
    pub fn new(queue_cap: usize) -> Arc<Self> {
        assert!(queue_cap >= 1, "queue capacity must be at least 1");
        Arc::new(MonitorHub {
            inner: Mutex::new(HubInner {
                subs: Vec::new(),
                next_id: 0,
                closed: false,
                total_dropped: 0,
                peak_subs: 0,
            }),
            cv: Condvar::new(),
            queue_cap,
        })
    }

    /// Publishes one body to every live subscriber (drop-oldest on a
    /// full queue). Never blocks beyond the hub mutex.
    pub fn publish(&self, body: &RecordBody) {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.subs.is_empty() {
            return;
        }
        let cap = self.queue_cap;
        let mut dropped_now = 0u64;
        for sub in &mut inner.subs {
            if sub.queue.len() == cap {
                sub.queue.pop_front();
                sub.dropped += 1;
                dropped_now += 1;
            }
            sub.queue.push_back(body.clone());
        }
        inner.total_dropped += dropped_now;
        if dropped_now > 0 {
            apollo_telemetry::counter("introspect.hub.dropped").add(dropped_now);
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Registers a subscriber; returns its handle and the live count
    /// after the registration.
    pub fn subscribe(self: &Arc<Self>) -> (Subscriber, usize) {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.push(SubState {
            id,
            queue: VecDeque::new(),
            dropped: 0,
        });
        let active = inner.subs.len();
        inner.peak_subs = inner.peak_subs.max(active);
        (
            Subscriber {
                hub: Arc::clone(self),
                id,
            },
            active,
        )
    }

    /// Closes the hub: wakes every blocked subscriber, which then
    /// drains its queue and sees end-of-stream.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// True once [`MonitorHub::close`] ran.
    pub fn closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Live subscriber count.
    pub fn active(&self) -> usize {
        self.inner.lock().unwrap().subs.len()
    }

    /// Highest concurrent subscriber count seen.
    pub fn peak_subscribers(&self) -> usize {
        self.inner.lock().unwrap().peak_subs
    }

    /// Bodies dropped across all subscribers by backpressure.
    pub fn total_dropped(&self) -> u64 {
        self.inner.lock().unwrap().total_dropped
    }
}

/// What a subscriber poll returned.
pub enum Poll {
    /// One body, in publish order.
    Body(Box<RecordBody>),
    /// Nothing arrived within the timeout; the stream is still live.
    Timeout,
    /// The hub closed and the queue is drained: end of stream.
    Closed,
}

/// One `/events` consumer's handle onto the hub.
pub struct Subscriber {
    hub: Arc<MonitorHub>,
    id: u64,
}

impl Subscriber {
    /// Waits up to `timeout` for the next body.
    pub fn poll(&self, timeout: Duration) -> Poll {
        let mut inner = self.hub.inner.lock().unwrap();
        loop {
            let closed = inner.closed;
            if let Some(sub) = inner.subs.iter_mut().find(|s| s.id == self.id) {
                if let Some(body) = sub.queue.pop_front() {
                    return Poll::Body(Box::new(body));
                }
                if closed {
                    return Poll::Closed;
                }
            } else {
                return Poll::Closed;
            }
            let (guard, wait) = self.hub.cv.wait_timeout(inner, timeout).unwrap();
            inner = guard;
            if wait.timed_out() {
                // One last drain check before reporting the timeout.
                if let Some(sub) = inner.subs.iter_mut().find(|s| s.id == self.id) {
                    if let Some(body) = sub.queue.pop_front() {
                        return Poll::Body(Box::new(body));
                    }
                    return if inner.closed {
                        Poll::Closed
                    } else {
                        Poll::Timeout
                    };
                }
                return Poll::Closed;
            }
        }
    }

    /// Bodies this subscriber lost to backpressure.
    pub fn dropped(&self) -> u64 {
        let inner = self.hub.inner.lock().unwrap();
        inner
            .subs
            .iter()
            .find(|s| s.id == self.id)
            .map_or(0, |s| s.dropped)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        let mut inner = self.hub.inner.lock().unwrap();
        inner.subs.retain(|s| s.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_telemetry::RecordBody;

    fn msg(i: u64) -> RecordBody {
        RecordBody::Message {
            level: "info".into(),
            text: format!("m{i}"),
        }
    }

    fn text_of(p: Poll) -> String {
        match p {
            Poll::Body(b) => match *b {
                RecordBody::Message { text, .. } => text,
                other => panic!("unexpected body {other:?}"),
            },
            Poll::Timeout => "<timeout>".into(),
            Poll::Closed => "<closed>".into(),
        }
    }

    #[test]
    fn publish_without_subscribers_is_free() {
        let hub = MonitorHub::new(4);
        for i in 0..100 {
            hub.publish(&msg(i));
        }
        assert_eq!(hub.total_dropped(), 0);
        assert_eq!(hub.active(), 0);
    }

    #[test]
    fn slow_subscriber_drops_oldest_never_blocks() {
        let hub = MonitorHub::new(3);
        let (sub, active) = hub.subscribe();
        assert_eq!(active, 1);
        for i in 0..10 {
            hub.publish(&msg(i));
        }
        // Queue holds the newest 3; 7 dropped.
        assert_eq!(sub.dropped(), 7);
        assert_eq!(hub.total_dropped(), 7);
        for expect in 7..10 {
            assert_eq!(
                text_of(sub.poll(Duration::from_millis(10))),
                format!("m{expect}")
            );
        }
        assert!(matches!(sub.poll(Duration::from_millis(1)), Poll::Timeout));
    }

    #[test]
    fn close_drains_then_ends_stream() {
        let hub = MonitorHub::new(8);
        let (sub, _) = hub.subscribe();
        hub.publish(&msg(0));
        hub.close();
        assert_eq!(text_of(sub.poll(Duration::from_millis(10))), "m0");
        assert!(matches!(sub.poll(Duration::from_millis(10)), Poll::Closed));
    }

    #[test]
    fn dropped_subscriber_deregisters() {
        let hub = MonitorHub::new(2);
        {
            let (_sub, active) = hub.subscribe();
            assert_eq!(active, 1);
        }
        assert_eq!(hub.active(), 0);
        assert_eq!(hub.peak_subscribers(), 1);
    }

    #[test]
    fn cross_thread_delivery_in_order() {
        let hub = MonitorHub::new(64);
        let (sub, _) = hub.subscribe();
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            for i in 0..50 {
                h2.publish(&msg(i));
            }
            h2.close();
        });
        let mut got = Vec::new();
        loop {
            match sub.poll(Duration::from_millis(200)) {
                Poll::Body(b) => {
                    if let RecordBody::Message { text, .. } = *b {
                        got.push(text);
                    }
                }
                Poll::Timeout => continue,
                Poll::Closed => break,
            }
        }
        t.join().unwrap();
        assert_eq!(got.len(), 50, "fast reader loses nothing");
        assert_eq!(got[0], "m0");
        assert_eq!(got[49], "m49");
    }
}
