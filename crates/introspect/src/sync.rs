//! Poison-proof locking for the serving layer.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while
//! holding the guard, and every later `lock().unwrap()` then panics
//! too — so one panicking connection thread could cascade into the
//! accept loop and take the whole endpoint down. The serving layer's
//! shared state (connection registry, hub subscriber table) is always
//! valid at mutation boundaries: each critical section either fully
//! applies or the data it touched is still structurally sound, so the
//! right recovery is to take the guard anyway and keep serving.
//!
//! [`plock`] does exactly that: lock, and on poison recover the inner
//! guard instead of propagating the panic.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Use for serving-layer state where the invariant "structurally
/// valid at every await-free mutation boundary" holds; never for
/// state with multi-step invariants that a mid-section panic could
/// tear.
pub fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn plock_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        // Poison: panic while holding the guard.
        let t = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the mutex");
        });
        assert!(t.join().is_err());
        assert!(m.is_poisoned(), "mutex must actually be poisoned");
        // A plain unwrap would now panic; plock recovers the value.
        let mut g = plock(&m);
        assert_eq!(*g, 7);
        *g += 1;
        drop(g);
        assert_eq!(*plock(&m), 8, "lock keeps working after recovery");
    }
}
