//! Zero-dependency TCP serving layer.
//!
//! A small HTTP/1.1 server on `std::net` (no external crates, no
//! unsafe):
//!
//! * `GET /metrics` — Prometheus text exposition of the process-global
//!   telemetry registry ([`apollo_telemetry::prometheus_text`]).
//! * `GET /events`  — streaming schema-versioned JSONL: one
//!   [`apollo_telemetry::Record`] per line, fed from the
//!   [`MonitorHub`](crate::hub::MonitorHub) with per-subscriber dense
//!   `seq` (re-stamped at send time, after any backpressure drops, so
//!   every delivered stream passes `trace-lint`).
//! * `GET /shutdown` — requests a clean monitor shutdown by setting
//!   the shared stop flag.
//! * `GET /` — a short plain-text index.
//!
//! The accept loop is non-blocking and polls the stop flag, so the
//! server winds down without signal handlers; connection handlers are
//! joined on [`ServerHandle::stop`].
//!
//! # Hardening
//!
//! The server assumes hostile or broken peers and degrades instead of
//! failing:
//!
//! * **Bounded parsing** — request and header lines are read through a
//!   byte cap ([`ServerOptions::max_line_bytes`]); an oversized or
//!   structurally malformed request gets `400`, a zero-length read is
//!   a clean close. No input can panic a handler or grow memory
//!   unboundedly.
//! * **Timeouts both ways** — every served connection carries a read
//!   *and* a write timeout. A peer that stalls mid-request gets `408`;
//!   a `/events` client that stops draining its socket is evicted once
//!   a write times out (`introspect.http.slow_evicted`).
//! * **Connection cap** — at most [`ServerOptions::max_conns`] live
//!   handlers; excess connections are shed with `503`
//!   (`introspect.http.shed`). Finished handler threads are reaped on
//!   every accept.
//! * **Panic isolation** — shared serving state is locked through
//!   [`plock`](crate::sync::plock), so a panicking handler thread can
//!   never poison the accept loop or `stop()` into a cascade.

use crate::health::HealthRegistry;
use crate::hub::{MonitorHub, Poll};
use crate::sync::plock;
use apollo_telemetry::{FieldValue, Record, SCHEMA_VERSION};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-layer robustness knobs (see module docs).
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Per-connection read timeout (stalled request ⇒ `408`).
    pub read_timeout: Duration,
    /// Per-connection write timeout (stalled `/events` client ⇒
    /// eviction; stalled response write ⇒ drop).
    pub write_timeout: Duration,
    /// Maximum concurrent connection handlers; excess peers get `503`.
    pub max_conns: usize,
    /// Byte cap on any single request or header line (`400` beyond).
    pub max_line_bytes: usize,
    /// Test-only chaos hook: a GET on this exact path panics inside
    /// the handler thread, exercising panic isolation end to end.
    pub chaos_panic_path: Option<String>,
    /// Fleet health registry behind `/healthz` and `/status`. `None`
    /// gets a private empty registry at serve time: `/healthz` then
    /// answers pure liveness (`200 ok`) and `/status` reports an
    /// empty fleet plus live hub subscriber state.
    pub health: Option<Arc<HealthRegistry>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_conns: 64,
            max_line_bytes: 8 * 1024,
            chaos_panic_path: None,
            health: None,
        }
    }
}

/// Running server: bound address plus lifecycle control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hub: Arc<MonitorHub>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: sets the shared stop flag, closes the hub
    /// (ending every `/events` stream), and joins all server threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.hub.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *plock(&self.conns));
        for h in conns {
            let _ = h.join();
        }
    }
}

/// Binds `listen` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
/// and serves with default [`ServerOptions`] until `stop` becomes
/// true.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn serve(
    listen: &str,
    hub: Arc<MonitorHub>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<ServerHandle> {
    serve_with(listen, hub, stop, ServerOptions::default())
}

/// [`serve`] with explicit robustness options.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn serve_with(
    listen: &str,
    hub: Arc<MonitorHub>,
    stop: Arc<AtomicBool>,
    opts: ServerOptions,
) -> std::io::Result<ServerHandle> {
    let mut opts = opts;
    if opts.health.is_none() {
        opts.health = Some(Arc::new(HealthRegistry::new()));
    }
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = Arc::clone(&stop);
        let hub = Arc::clone(&hub);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            accept_loop(&listener, &hub, &stop, &conns, &opts);
        })
    };
    Ok(ServerHandle {
        addr,
        stop,
        hub,
        accept: Some(accept),
        conns,
    })
}

fn accept_loop(
    listener: &TcpListener,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    opts: &ServerOptions,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let live = {
                    let mut guard = plock(conns);
                    // Reap finished handler threads so the registry
                    // tracks *live* connections, not lifetime totals.
                    let (done, alive): (Vec<_>, Vec<_>) =
                        std::mem::take(&mut *guard).into_iter().partition(JoinHandle::is_finished);
                    *guard = alive;
                    drop(guard);
                    for h in done {
                        let _ = h.join();
                    }
                    plock(conns).len()
                };
                if live >= opts.max_conns {
                    // Shed load instead of queueing unboundedly.
                    apollo_telemetry::counter("introspect.http.shed").inc();
                    let _ = stream.set_write_timeout(Some(opts.write_timeout));
                    let _ = respond(
                        &mut stream,
                        "503 Service Unavailable",
                        "text/plain",
                        "connection limit reached\n",
                    );
                    continue;
                }
                let hub = Arc::clone(hub);
                let stop = Arc::clone(stop);
                let opts = opts.clone();
                let handle = std::thread::spawn(move || {
                    // Per-connection errors (reset peers, parse noise)
                    // must not take the server down.
                    let _ = handle_connection(stream, &hub, &stop, &opts);
                });
                plock(conns).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One line read through the byte cap.
pub enum LineRead {
    /// A complete line (terminator stripped, lossy UTF-8).
    Line(String),
    /// Peer closed before sending anything on this line.
    Eof,
    /// The line exceeded the cap without a terminating `\n`.
    Oversize,
}

/// Reads one `\n`-terminated line, never buffering more than
/// `cap + 1` bytes regardless of what the peer sends.
///
/// # Errors
/// Propagates socket read errors (including timeouts).
pub fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    cap: usize,
) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    let n = reader.take(cap as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if !buf.ends_with(b"\n") && buf.len() > cap {
        return Ok(LineRead::Oversize);
    }
    let text = String::from_utf8_lossy(&buf)
        .trim_end_matches(['\r', '\n'])
        .to_owned();
    Ok(LineRead::Line(text))
}

/// True for the error kinds a blocking socket read/write reports on
/// timeout (`WouldBlock` on Unix, `TimedOut` on Windows).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads and validates one HTTP request head (request line plus
/// headers, bounded by `max_line_bytes` per line), answering protocol
/// errors (`400`, `405`, `408`) on `out` directly. Returns
/// `Some(path)` for a well-formed `GET`, `None` when the request was
/// already answered or the peer went away cleanly.
///
/// Shared by this server and the `apollo-fleet` serving layer so both
/// present identical hardening behaviour at the protocol edge.
///
/// # Errors
/// Propagates non-timeout socket errors.
pub fn read_request_head(
    reader: &mut BufReader<TcpStream>,
    out: &mut TcpStream,
    max_line_bytes: usize,
) -> std::io::Result<Option<String>> {
    let request_line = match read_line_bounded(reader, max_line_bytes) {
        Ok(LineRead::Line(l)) => l,
        // Zero-length read: peer connected and went away. Clean drop.
        Ok(LineRead::Eof) => return Ok(None),
        Ok(LineRead::Oversize) => {
            apollo_telemetry::counter("introspect.http.bad_requests").inc();
            respond(out, "400 Bad Request", "text/plain", "request line too long\n")?;
            return Ok(None);
        }
        Err(e) if is_timeout(&e) => {
            apollo_telemetry::counter("introspect.http.timeouts").inc();
            respond(
                out,
                "408 Request Timeout",
                "text/plain",
                "request not received in time\n",
            )?;
            return Ok(None);
        }
        Err(e) => return Err(e),
    };
    // Drain headers up to the blank line; bodies are not supported.
    loop {
        match read_line_bounded(reader, max_line_bytes) {
            Ok(LineRead::Line(h)) if h.is_empty() => break,
            Ok(LineRead::Line(_)) => continue,
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversize) => {
                apollo_telemetry::counter("introspect.http.bad_requests").inc();
                respond(out, "400 Bad Request", "text/plain", "header line too long\n")?;
                return Ok(None);
            }
            Err(e) if is_timeout(&e) => {
                apollo_telemetry::counter("introspect.http.timeouts").inc();
                respond(
                    out,
                    "408 Request Timeout",
                    "text/plain",
                    "headers not received in time\n",
                )?;
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(path)) = (method, path) else {
        apollo_telemetry::counter("introspect.http.bad_requests").inc();
        respond(out, "400 Bad Request", "text/plain", "malformed request line\n")?;
        return Ok(None);
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase())
        || !path.starts_with('/')
        || !version.is_some_and(|v| v.starts_with("HTTP/"))
    {
        apollo_telemetry::counter("introspect.http.bad_requests").inc();
        respond(out, "400 Bad Request", "text/plain", "malformed request line\n")?;
        return Ok(None);
    }
    if method != "GET" {
        respond(out, "405 Method Not Allowed", "text/plain", "GET only\n")?;
        return Ok(None);
    }
    Ok(Some(path.to_owned()))
}

fn handle_connection(
    stream: TcpStream,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
    opts: &ServerOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let Some(path) = read_request_head(&mut reader, &mut out, opts.max_line_bytes)? else {
        return Ok(());
    };
    let path = path.as_str();
    if opts.chaos_panic_path.as_deref() == Some(path) {
        panic!("chaos: injected handler panic on {path}");
    }
    match path {
        "/" => respond(
            &mut out,
            "200 OK",
            "text/plain; charset=utf-8",
            "apollo monitor: /metrics (Prometheus), /events (JSONL stream), /healthz, /status, /shutdown\n",
        ),
        "/metrics" => {
            let mut body = apollo_telemetry::prometheus_text(&apollo_telemetry::snapshot());
            body.push_str(&subscriber_gauges(hub));
            counter_scrapes();
            respond(&mut out, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/events" => stream_events(&mut out, hub, stop),
        "/healthz" => {
            let healthy = opts.health.as_ref().is_none_or(|h| h.healthy());
            apollo_telemetry::counter("introspect.healthz.scrapes").inc();
            apollo_telemetry::emit_event(
                "introspect.healthz",
                &[("healthy", FieldValue::from(healthy))],
            );
            if healthy {
                respond(&mut out, "200 OK", "text/plain", "ok\n")
            } else {
                respond(&mut out, "503 Service Unavailable", "text/plain", "degraded\n")
            }
        }
        "/status" => {
            // `serve_with` guarantees a registry; handle the bare
            // default anyway (options built by hand in tests).
            let snap = match &opts.health {
                Some(h) => h.snapshot(hub.subscriber_stats()),
                None => HealthRegistry::new().snapshot(hub.subscriber_stats()),
            };
            apollo_telemetry::counter("introspect.status.scrapes").inc();
            apollo_telemetry::emit_event(
                "introspect.status",
                &[
                    ("healthy", FieldValue::from(snap.healthy)),
                    ("pipelines", FieldValue::from(snap.pipelines.len())),
                    ("subscribers", FieldValue::from(snap.subscribers.len())),
                ],
            );
            let status = if snap.healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            let body = format!("{}\n", snap.to_jsonl());
            respond(&mut out, status, "application/json", &body)
        }
        "/shutdown" => {
            stop.store(true, Ordering::Relaxed);
            respond(&mut out, "200 OK", "text/plain", "shutting down\n")
        }
        _ => respond(&mut out, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

fn counter_scrapes() {
    apollo_telemetry::counter("introspect.scrapes").inc();
}

/// Hand-rendered labeled gauges for per-subscriber hub state (the
/// registry's exposition is label-free, so the serving layer appends
/// these rows itself).
fn subscriber_gauges(hub: &Arc<MonitorHub>) -> String {
    use crate::health::SubscriberStatus;
    use std::fmt::Write as _;
    let stats = hub.subscriber_stats();
    if stats.is_empty() {
        return String::new();
    }
    type Field = (&'static str, fn(&SubscriberStatus) -> u64);
    let fields: [Field; 4] = [
        ("introspect_hub_subscriber_queue_depth", |s| s.depth),
        ("introspect_hub_subscriber_dropped", |s| s.dropped),
        ("introspect_hub_subscriber_stride", |s| s.stride),
        ("introspect_hub_subscriber_downsampled", |s| s.downsampled),
    ];
    let mut out = String::new();
    for (metric, value) in fields {
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for s in &stats {
            let _ = writeln!(out, "{metric}{{subscriber=\"{}\"}} {}", s.id, value(s));
        }
    }
    out
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
///
/// # Errors
/// Propagates socket write errors.
pub fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with_headers(stream, status, content_type, &[], body)
}

/// [`respond`] with extra response headers (e.g. `Retry-After` on a
/// load-shedding `503`). Each pair renders as `name: value`.
///
/// # Errors
/// Propagates socket write errors.
pub fn respond_with_headers(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut headers = String::new();
    for (name, value) in extra {
        use std::fmt::Write as _;
        let _ = write!(headers, "{name}: {value}\r\n");
    }
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Streams hub bodies as schema-versioned JSONL until the hub closes,
/// the stop flag rises, the client goes away, or a write times out
/// (slow-client eviction).
fn stream_events(
    stream: &mut TcpStream,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let (sub, active) = hub.subscribe();
    apollo_telemetry::gauge("introspect.subscribers").set(active as f64);
    apollo_telemetry::emit_event(
        "introspect.subscriber",
        &[
            ("action", FieldValue::from("connect")),
            ("active", FieldValue::from(active)),
        ],
    );
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    // Per-subscriber wire framing: dense seq from 0 and a local
    // timestamp epoch, assigned at send time (drops happen earlier, in
    // the hub queue, so delivered seq never has gaps).
    let epoch = Instant::now();
    let mut seq = 0u64;
    let result = loop {
        if stop.load(Ordering::Relaxed) && hub.closed() {
            break Ok(());
        }
        match sub.poll(Duration::from_millis(100)) {
            Poll::Body(item) => {
                // Delivered records keep the producing window's causal
                // identity (captured by the hub at publish time).
                let rec = Record {
                    v: SCHEMA_VERSION,
                    seq,
                    ts_ns: epoch.elapsed().as_nanos() as u64,
                    trace_id: item.trace_id,
                    span_id: 0,
                    parent_id: item.parent_id,
                    body: item.body,
                };
                seq += 1;
                let t0 = apollo_telemetry::timing_enabled().then(Instant::now);
                if let Err(e) = writeln!(stream, "{}", rec.to_jsonl()).and_then(|()| stream.flush())
                {
                    if is_timeout(&e) {
                        // The peer stopped draining: evict rather than
                        // let its socket backpressure pin this thread.
                        apollo_telemetry::counter("introspect.http.slow_evicted").inc();
                    }
                    break Ok(()); // client went away or stalled out
                }
                let dur_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                if t0.is_some() {
                    apollo_telemetry::histogram("introspect.window.deliver_ns").observe(dur_ns);
                }
                // One delivery span per traced delivery, parented
                // under the producing window's span. The id crosses
                // the thread boundary by value: a pure function of
                // (trace, window span, subscriber, delivery seq), so
                // the trace tree is identical on every rerun.
                if item.trace_id != 0 {
                    let raw = apollo_telemetry::mix3(
                        item.trace_id ^ item.parent_id,
                        apollo_telemetry::intern("introspect.deliver") ^ sub.id(),
                        rec.seq,
                    ) & apollo_telemetry::ID_MASK;
                    let span_id = if raw == 0 { 1 } else { raw };
                    apollo_telemetry::emit_span_ids(
                        "introspect.deliver",
                        dur_ns,
                        item.trace_id,
                        span_id,
                        item.parent_id,
                    );
                }
            }
            Poll::Timeout => continue,
            Poll::Closed => break Ok(()),
        }
    };
    drop(sub);
    let active = hub.active();
    apollo_telemetry::gauge("introspect.subscribers").set(active as f64);
    apollo_telemetry::emit_event(
        "introspect.subscriber",
        &[
            ("action", FieldValue::from("disconnect")),
            ("active", FieldValue::from(active)),
        ],
    );
    result
}

/// Minimal HTTP GET client for tests, CI smoke checks and the
/// `apollo scrape` subcommand: fetches `http://host:port/path` and
/// returns up to `max_lines` body lines (`None` = the whole body,
/// reading until the server closes the stream).
///
/// # Errors
/// Returns connection or read errors; non-2xx statuses are returned as
/// `InvalidData`.
pub fn http_get_lines(
    addr: &str,
    path: &str,
    max_lines: Option<usize>,
) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut out = stream.try_clone()?;
    write!(
        out,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    out.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("HTTP error: {}", status.trim()),
        ));
    }
    // Skip headers.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line.trim().is_empty() {
            break;
        }
    }
    let mut lines = Vec::new();
    loop {
        if let Some(cap) = max_lines {
            if lines.len() >= cap {
                break;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if !trimmed.is_empty() {
                    lines.push(trimmed.to_owned());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_telemetry::RecordBody;

    fn start(opts: ServerOptions) -> (ServerHandle, String, Arc<MonitorHub>, Arc<AtomicBool>) {
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server =
            serve_with("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop), opts).unwrap();
        let addr = server.addr().to_string();
        (server, addr, hub, stop)
    }

    fn raw_status(addr: &str, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(payload).unwrap();
        s.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut status = String::new();
        r.read_line(&mut status).unwrap();
        status
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        apollo_telemetry::counter("introspect.test.metric").add(3);
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();
        let lines = http_get_lines(&addr, "/metrics", None).unwrap();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("introspect_test_metric")
                    || l.contains("introspect.test.metric")),
            "metric missing from exposition: {lines:?}"
        );
        server.stop();
    }

    #[test]
    fn events_endpoint_streams_dense_seq_jsonl() {
        let hub = MonitorHub::new(64);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();

        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                // Give the client a moment to subscribe, then publish
                // and close.
                std::thread::sleep(Duration::from_millis(150));
                for i in 0..5u64 {
                    hub.publish(&RecordBody::Message {
                        level: "info".into(),
                        text: format!("w{i}"),
                    });
                }
                hub.close();
            })
        };
        let lines = http_get_lines(&addr, "/events", Some(5)).unwrap();
        publisher.join().unwrap();
        assert_eq!(lines.len(), 5, "{lines:?}");
        for (i, l) in lines.iter().enumerate() {
            let rec =
                apollo_telemetry::validate_line(l).unwrap_or_else(|e| panic!("line {i}: {e}"));
            assert_eq!(rec.seq, i as u64, "dense per-subscriber seq");
        }
        server.stop();
    }

    #[test]
    fn shutdown_endpoint_raises_stop_flag() {
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();
        let lines = http_get_lines(&addr, "/shutdown", None).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("shutting down")),
            "{lines:?}"
        );
        assert!(stop.load(Ordering::Relaxed));
        server.stop();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let (server, addr, _hub, _stop) = start(ServerOptions::default());
        let err = http_get_lines(&addr, "/nope", None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let resp = raw_status(&addr, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.contains("405"), "{resp}");
        server.stop();
    }

    #[test]
    fn oversized_request_line_gets_400() {
        let opts = ServerOptions {
            max_line_bytes: 256,
            ..ServerOptions::default()
        };
        let (server, addr, _hub, _stop) = start(opts);
        let mut payload = b"GET /".to_vec();
        payload.extend(vec![b'a'; 4096]);
        let resp = raw_status(&addr, &payload);
        assert!(resp.contains("400"), "{resp}");
        server.stop();
    }

    #[test]
    fn garbage_bytes_get_400_and_server_survives() {
        let (server, addr, _hub, _stop) = start(ServerOptions::default());
        let resp = raw_status(&addr, b"\x00\xff\xfe garbage \x01\x02\n\r\n");
        assert!(resp.contains("400"), "{resp}");
        // The server still answers well-formed requests afterwards.
        let lines = http_get_lines(&addr, "/", None).unwrap();
        assert!(!lines.is_empty());
        server.stop();
    }

    #[test]
    fn zero_length_read_is_a_clean_drop() {
        let (server, addr, _hub, _stop) = start(ServerOptions::default());
        // Connect and immediately close without sending a byte.
        for _ in 0..4 {
            let s = TcpStream::connect(&addr).unwrap();
            drop(s);
        }
        std::thread::sleep(Duration::from_millis(100));
        let lines = http_get_lines(&addr, "/", None).unwrap();
        assert!(!lines.is_empty(), "server alive after empty connections");
        server.stop();
    }

    #[test]
    fn stalled_request_gets_408() {
        let opts = ServerOptions {
            read_timeout: Duration::from_millis(150),
            ..ServerOptions::default()
        };
        let (server, addr, _hub, _stop) = start(opts);
        // Open, send half a request line, never finish it.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /met").unwrap();
        s.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut status = String::new();
        r.read_line(&mut status).unwrap();
        assert!(status.contains("408"), "{status}");
        server.stop();
    }

    #[test]
    fn connection_cap_sheds_with_503() {
        let opts = ServerOptions {
            max_conns: 1,
            ..ServerOptions::default()
        };
        let (server, addr, hub, _stop) = start(opts);
        // Occupy the single slot with a long-lived /events stream.
        let streamer = {
            let addr = addr.clone();
            std::thread::spawn(move || http_get_lines(&addr, "/events", Some(1)))
        };
        std::thread::sleep(Duration::from_millis(200));
        // Second connection must be shed.
        let resp = raw_status(&addr, b"GET / HTTP/1.1\r\n\r\n");
        assert!(resp.contains("503"), "{resp}");
        hub.publish(&RecordBody::Message {
            level: "info".into(),
            text: "unblock".into(),
        });
        hub.close();
        let _ = streamer.join().unwrap();
        server.stop();
    }

    #[test]
    fn handler_panic_does_not_poison_the_server() {
        let opts = ServerOptions {
            chaos_panic_path: Some("/chaos-panic".into()),
            ..ServerOptions::default()
        };
        let (server, addr, _hub, _stop) = start(opts);
        // The panicking handler drops the connection mid-flight …
        let res = http_get_lines(&addr, "/chaos-panic", None);
        assert!(res.is_err(), "panicking handler cannot answer");
        // … and the server keeps accepting, handling, and stopping
        // cleanly afterwards (regression: a poisoned conns mutex used
        // to cascade `lock().unwrap()` panics into the accept loop).
        for _ in 0..3 {
            let lines = http_get_lines(&addr, "/metrics", None).unwrap();
            assert!(!lines.is_empty());
        }
        server.stop();
    }
}
