//! Zero-dependency TCP serving layer.
//!
//! A small HTTP/1.1 server on `std::net` (no external crates, no
//! unsafe):
//!
//! * `GET /metrics` — Prometheus text exposition of the process-global
//!   telemetry registry ([`apollo_telemetry::prometheus_text`]).
//! * `GET /events`  — streaming schema-versioned JSONL: one
//!   [`apollo_telemetry::Record`] per line, fed from the
//!   [`MonitorHub`](crate::hub::MonitorHub) with per-subscriber dense
//!   `seq` (re-stamped at send time, after any backpressure drops, so
//!   every delivered stream passes `trace-lint`).
//! * `GET /shutdown` — requests a clean monitor shutdown by setting
//!   the shared stop flag.
//! * `GET /` — a short plain-text index.
//!
//! The accept loop is non-blocking and polls the stop flag, so the
//! server winds down without signal handlers; connection handlers are
//! joined on [`ServerHandle::stop`].

use crate::hub::{MonitorHub, Poll};
use apollo_telemetry::{FieldValue, Record, SCHEMA_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Running server: bound address plus lifecycle control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hub: Arc<MonitorHub>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: sets the shared stop flag, closes the hub
    /// (ending every `/events` stream), and joins all server threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.hub.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in conns {
            let _ = h.join();
        }
    }
}

/// Binds `listen` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
/// and serves until `stop` becomes true.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn serve(
    listen: &str,
    hub: Arc<MonitorHub>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = Arc::clone(&stop);
        let hub = Arc::clone(&hub);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            accept_loop(&listener, &hub, &stop, &conns);
        })
    };
    Ok(ServerHandle {
        addr,
        stop,
        hub,
        accept: Some(accept),
        conns,
    })
}

fn accept_loop(
    listener: &TcpListener,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let hub = Arc::clone(hub);
                let stop = Arc::clone(stop);
                let handle = std::thread::spawn(move || {
                    // Per-connection errors (reset peers, parse noise)
                    // must not take the server down.
                    let _ = handle_connection(stream, &hub, &stop);
                });
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; bodies are not supported.
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut out = stream;
    if method != "GET" {
        return respond(
            &mut out,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/" => respond(
            &mut out,
            "200 OK",
            "text/plain; charset=utf-8",
            "apollo monitor: /metrics (Prometheus), /events (JSONL stream), /shutdown\n",
        ),
        "/metrics" => {
            let body = apollo_telemetry::prometheus_text(&apollo_telemetry::snapshot());
            counter_scrapes();
            respond(&mut out, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/events" => stream_events(&mut out, hub, stop),
        "/shutdown" => {
            stop.store(true, Ordering::Relaxed);
            respond(&mut out, "200 OK", "text/plain", "shutting down\n")
        }
        _ => respond(&mut out, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

fn counter_scrapes() {
    apollo_telemetry::counter("introspect.scrapes").inc();
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Streams hub bodies as schema-versioned JSONL until the hub closes,
/// the stop flag rises, or the client goes away.
fn stream_events(
    stream: &mut TcpStream,
    hub: &Arc<MonitorHub>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let (sub, active) = hub.subscribe();
    apollo_telemetry::gauge("introspect.subscribers").set(active as f64);
    apollo_telemetry::emit_event(
        "introspect.subscriber",
        &[
            ("action", FieldValue::from("connect")),
            ("active", FieldValue::from(active)),
        ],
    );
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    // Per-subscriber wire framing: dense seq from 0 and a local
    // timestamp epoch, assigned at send time (drops happen earlier, in
    // the hub queue, so delivered seq never has gaps).
    let epoch = Instant::now();
    let mut seq = 0u64;
    let result = loop {
        if stop.load(Ordering::Relaxed) && hub.closed() {
            break Ok(());
        }
        match sub.poll(Duration::from_millis(100)) {
            Poll::Body(body) => {
                let rec = Record {
                    v: SCHEMA_VERSION,
                    seq,
                    ts_ns: epoch.elapsed().as_nanos() as u64,
                    body: *body,
                };
                seq += 1;
                if writeln!(stream, "{}", rec.to_jsonl())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break Ok(()); // client went away
                }
            }
            Poll::Timeout => continue,
            Poll::Closed => break Ok(()),
        }
    };
    drop(sub);
    let active = hub.active();
    apollo_telemetry::gauge("introspect.subscribers").set(active as f64);
    apollo_telemetry::emit_event(
        "introspect.subscriber",
        &[
            ("action", FieldValue::from("disconnect")),
            ("active", FieldValue::from(active)),
        ],
    );
    result
}

/// Minimal HTTP GET client for tests, CI smoke checks and the
/// `apollo scrape` subcommand: fetches `http://host:port/path` and
/// returns up to `max_lines` body lines (`None` = the whole body,
/// reading until the server closes the stream).
///
/// # Errors
/// Returns connection or read errors; non-2xx statuses are returned as
/// `InvalidData`.
pub fn http_get_lines(
    addr: &str,
    path: &str,
    max_lines: Option<usize>,
) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut out = stream.try_clone()?;
    write!(
        out,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    out.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("HTTP error: {}", status.trim()),
        ));
    }
    // Skip headers.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line.trim().is_empty() {
            break;
        }
    }
    let mut lines = Vec::new();
    loop {
        if let Some(cap) = max_lines {
            if lines.len() >= cap {
                break;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if !trimmed.is_empty() {
                    lines.push(trimmed.to_owned());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_telemetry::RecordBody;

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        apollo_telemetry::counter("introspect.test.metric").add(3);
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();
        let lines = http_get_lines(&addr, "/metrics", None).unwrap();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("introspect_test_metric")
                    || l.contains("introspect.test.metric")),
            "metric missing from exposition: {lines:?}"
        );
        server.stop();
    }

    #[test]
    fn events_endpoint_streams_dense_seq_jsonl() {
        let hub = MonitorHub::new(64);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();

        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                // Give the client a moment to subscribe, then publish
                // and close.
                std::thread::sleep(Duration::from_millis(150));
                for i in 0..5u64 {
                    hub.publish(&RecordBody::Message {
                        level: "info".into(),
                        text: format!("w{i}"),
                    });
                }
                hub.close();
            })
        };
        let lines = http_get_lines(&addr, "/events", Some(5)).unwrap();
        publisher.join().unwrap();
        assert_eq!(lines.len(), 5, "{lines:?}");
        for (i, l) in lines.iter().enumerate() {
            let rec =
                apollo_telemetry::validate_line(l).unwrap_or_else(|e| panic!("line {i}: {e}"));
            assert_eq!(rec.seq, i as u64, "dense per-subscriber seq");
        }
        server.stop();
    }

    #[test]
    fn shutdown_endpoint_raises_stop_flag() {
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();
        let lines = http_get_lines(&addr, "/shutdown", None).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("shutting down")),
            "{lines:?}"
        );
        assert!(stop.load(Ordering::Relaxed));
        server.stop();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let hub = MonitorHub::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let server = serve("127.0.0.1:0", Arc::clone(&hub), Arc::clone(&stop)).unwrap();
        let addr = server.addr().to_string();
        let err = http_get_lines(&addr, "/nope", None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let mut s = TcpStream::connect(&addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        let mut r = BufReader::new(s.try_clone().unwrap());
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("405"), "{resp}");
        server.stop();
    }
}
