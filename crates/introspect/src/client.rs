//! Retrying HTTP client with deterministic backoff.
//!
//! `apollo scrape` (and the fleet smoke harnesses) talk to endpoints
//! that shed load by design: a `503` + `Retry-After` is the serving
//! layer doing its job, not a scrape failure. This module wraps the
//! one-shot GET in a [`RetryPolicy`] mirroring the supervisor's
//! jitter-free exponential backoff: retry transient failures
//! (connection errors, timeouts, 5xx) up to `retries` times with
//! `backoff_ms * 2^(n-1)` delays, honour `Retry-After` when the server
//! names a longer wait, and fail fast on 4xx (the request itself is
//! wrong — repeating it cannot help). Delays are a pure function of
//! the attempt number, so scripted scrape schedules are replayable.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side retry knobs for [`http_get_lines_retry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = single shot).
    pub retries: u32,
    /// Base backoff delay; attempt `n` waits `backoff_ms * 2^(n-1)`.
    pub backoff_ms: u64,
    /// Per-attempt socket read/write timeout.
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 100,
            deadline_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Deterministic delay before retry `attempt` (1-based): pure
    /// doubling from `backoff_ms`, saturating instead of overflowing.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_ms.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
    }
}

/// One parsed HTTP response: status code, optional `Retry-After`
/// (converted to milliseconds), and non-empty body lines.
#[derive(Debug)]
pub struct HttpResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// `Retry-After` header in milliseconds, when present (the header
    /// carries whole seconds on the wire).
    pub retry_after_ms: Option<u64>,
    /// Non-empty body lines, CR/LF-trimmed (capped at `max_lines`).
    pub lines: Vec<String>,
}

/// One-shot GET returning the full parsed response instead of folding
/// non-200s into errors: the retry loop needs the status code and
/// `Retry-After` to classify the outcome.
///
/// # Errors
/// Returns connection and read errors; a malformed status line is
/// `InvalidData`.
pub fn http_get(
    addr: &str,
    path: &str,
    max_lines: Option<usize>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut out = stream.try_clone()?;
    // One write_all for the whole request: a formatted write would
    // issue one syscall per fragment, and a server that answers after
    // the first fragment (stub servers, aggressive shedders) would
    // reset the socket mid-request.
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    out.write_all(request.as_bytes())?;
    out.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line: {}", status_line.trim()),
            )
        })?;
    // Headers up to the blank line; capture Retry-After if present.
    let mut retry_after_ms = None;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        let trimmed = line.trim();
        if n == 0 || trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("retry-after") {
                retry_after_ms = value.trim().parse::<u64>().ok().map(|s| s * 1000);
            }
        }
    }
    let mut lines = Vec::new();
    loop {
        if let Some(cap) = max_lines {
            if lines.len() >= cap {
                break;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if !trimmed.is_empty() {
                    lines.push(trimmed.to_owned());
                }
            }
            Err(e) if crate::server::is_timeout(&e) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(HttpResponse {
        status,
        retry_after_ms,
        lines,
    })
}

/// Whether one attempt's outcome should be retried.
fn transient(res: &std::io::Result<HttpResponse>) -> bool {
    match res {
        // Connection refused/reset, timeouts, mid-stream errors: the
        // server may simply not be up yet (or be restarting a shard).
        Err(_) => true,
        // 5xx is the server telling us to come back later (load
        // shedding, degraded health). 4xx means the request is wrong.
        Ok(r) => r.status >= 500,
    }
}

/// [`crate::http_get_lines`] with client-side robustness: retries
/// transient failures per `policy`, sleeping the deterministic backoff
/// delay (or the server's `Retry-After`, whichever is longer) between
/// attempts. Fails only once every attempt is exhausted; 4xx responses
/// fail immediately.
///
/// # Errors
/// The terminal attempt's error; non-2xx terminal statuses surface as
/// `InvalidData` (matching `http_get_lines`).
pub fn http_get_lines_retry(
    addr: &str,
    path: &str,
    max_lines: Option<usize>,
    policy: &RetryPolicy,
) -> std::io::Result<Vec<String>> {
    let timeout = Duration::from_millis(policy.deadline_ms.max(1));
    let mut attempt = 0u32;
    loop {
        let res = http_get(addr, path, max_lines, timeout);
        let retryable = transient(&res);
        match res {
            Ok(r) if (200..300).contains(&r.status) => return Ok(r.lines),
            res if retryable && attempt < policy.retries => {
                attempt += 1;
                let server_wait = res
                    .as_ref()
                    .ok()
                    .and_then(|r| r.retry_after_ms)
                    .unwrap_or(0);
                let wait = policy.delay_ms(attempt).max(server_wait);
                apollo_telemetry::counter("introspect.client.retries").inc();
                std::thread::sleep(Duration::from_millis(wait));
            }
            Ok(r) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("HTTP error: status {} after {attempt} retries", r.status),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    #[test]
    fn backoff_is_pure_doubling_and_saturates() {
        let p = RetryPolicy {
            retries: 5,
            backoff_ms: 50,
            deadline_ms: 1000,
        };
        assert_eq!(p.delay_ms(1), 50);
        assert_eq!(p.delay_ms(2), 100);
        assert_eq!(p.delay_ms(3), 200);
        let big = RetryPolicy {
            retries: 200,
            backoff_ms: u64::MAX / 2,
            deadline_ms: 1000,
        };
        assert_eq!(big.delay_ms(100), u64::MAX, "saturates, never overflows");
        // Deterministic: same attempt, same delay.
        assert_eq!(p.delay_ms(3), p.delay_ms(3));
    }

    /// One-thread stub server: answers `replies` in order, then stops.
    fn stub_server(replies: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            for reply in replies {
                let (mut s, _) = listener.accept().unwrap();
                // Read the whole request head before answering, so
                // closing the socket never resets an in-flight request.
                let mut req = Vec::new();
                let mut buf = [0u8; 512];
                while !req.windows(4).any(|w| w == b"\r\n\r\n") {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => req.extend_from_slice(&buf[..n]),
                    }
                }
                let _ = s.write_all(reply.as_bytes());
            }
        });
        (addr, h)
    }

    fn resp(status: &str, extra: &str, body: &str) -> String {
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn retries_through_503_to_success() {
        let (addr, h) = stub_server(vec![
            resp("503 Service Unavailable", "Retry-After: 0\r\n", "busy\n"),
            resp("200 OK", "", "hello\n"),
        ]);
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 1,
            deadline_ms: 2000,
        };
        let lines = http_get_lines_retry(&addr, "/", None, &policy).unwrap();
        assert_eq!(lines, vec!["hello".to_string()]);
        h.join().unwrap();
    }

    #[test]
    fn fails_fast_on_4xx() {
        let (addr, h) = stub_server(vec![resp("404 Not Found", "", "nope\n")]);
        let policy = RetryPolicy {
            retries: 5,
            backoff_ms: 1,
            deadline_ms: 2000,
        };
        let err = http_get_lines_retry(&addr, "/nope", None, &policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("404"), "{err}");
        // Exactly one request was served; a second accept would hang,
        // so the join returning proves no retry happened.
        h.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        // Bind then drop: connecting to the freed port is refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 1,
            deadline_ms: 200,
        };
        assert!(http_get_lines_retry(&addr, "/", None, &policy).is_err());
    }

    #[test]
    fn retry_after_parses_to_millis() {
        let (addr, h) = stub_server(vec![resp("200 OK", "Retry-After: 7\r\n", "ok\n")]);
        let r = http_get(&addr, "/", None, Duration::from_secs(2)).unwrap();
        assert_eq!(r.retry_after_ms, Some(7000));
        assert_eq!(r.status, 200);
        h.join().unwrap();
    }
}
