//! Bounded window history with sliding-window aggregation.
//!
//! The monitor keeps the last `capacity` completed windows in a ring:
//! pushes never block and never grow the buffer — when full, the
//! oldest record is dropped and a drop counter bumps, mirroring the
//! serving layer's drop-oldest backpressure policy. Aggregations
//! (mean / peak / cumulative energy) run over the full stream, not
//! just the retained tail, so they are exact regardless of capacity.

use std::collections::VecDeque;

/// One completed OPM window as the serving layer publishes it.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct WindowRecord {
    /// Zero-based window index.
    pub window: u64,
    /// Cycle count at window close (monotonic across restarts).
    pub cycle: u64,
    /// Raw (pre-shift) OPM window accumulator.
    pub raw: u64,
    /// Hardware window output (`raw >> log2(T)`).
    pub out: u64,
    /// De-scaled OPM power estimate.
    pub est_power: f64,
    /// Float proxy-model mean power over the window.
    pub float_power: f64,
    /// Ground-truth simulated mean power over the window.
    pub true_power: f64,
    /// Cumulative estimated energy (power · cycles) through this
    /// window.
    pub energy: f64,
    /// Throttle level applied during the window.
    pub throttle: u8,
    /// Raw integer contribution per attribution class (sums to `raw`).
    pub unit_raw: Vec<u64>,
}

/// Aggregate statistics over the retained window history tail.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize)]
pub struct HistoryStats {
    /// Windows in the tail.
    pub windows: usize,
    /// Mean estimated power over the tail.
    pub mean_est: f64,
    /// Peak estimated power over the tail.
    pub peak_est: f64,
    /// Mean ground-truth power over the tail.
    pub mean_true: f64,
}

/// The exact full-stream aggregate state of a [`History`], detached
/// from the retained ring so a checkpointed pipeline can resume its
/// lifetime statistics without replaying the stream.
///
/// `peak_est` is stored as [`f64::NEG_INFINITY`]'s sentinel `None`
/// only implicitly: aggregates are only ever captured after at least
/// one window, when the peak is finite (JSON cannot carry ±inf).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistoryAggregates {
    /// Windows observed over the full stream.
    pub total_windows: u64,
    /// Sum of estimated power over the full stream.
    pub sum_est: f64,
    /// Sum of ground-truth power over the full stream.
    pub sum_true: f64,
    /// Full-stream peak estimated power.
    pub peak_est: f64,
    /// Cumulative estimated energy through the latest window.
    pub energy: f64,
    /// Windows evicted by the drop-oldest policy.
    pub dropped: u64,
}

/// Drop-oldest bounded ring of [`WindowRecord`]s plus exact
/// full-stream aggregates.
#[derive(Clone, Debug)]
pub struct History {
    buf: VecDeque<WindowRecord>,
    capacity: usize,
    dropped: u64,
    // Full-stream aggregates (exact, capacity-independent).
    total_windows: u64,
    sum_est: f64,
    sum_true: f64,
    peak_est: f64,
    energy: f64,
}

impl History {
    /// New history retaining at most `capacity` windows.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "history capacity must be at least 1");
        History {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            total_windows: 0,
            sum_est: 0.0,
            sum_true: 0.0,
            peak_est: f64::NEG_INFINITY,
            energy: 0.0,
        }
    }

    /// New history primed with the full-stream aggregates of an
    /// earlier run (the ring itself starts empty: retained records are
    /// volatile, aggregates are durable).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn resume(capacity: usize, agg: &HistoryAggregates) -> Self {
        let mut h = History::new(capacity);
        h.total_windows = agg.total_windows;
        h.sum_est = agg.sum_est;
        h.sum_true = agg.sum_true;
        h.peak_est = if agg.total_windows == 0 {
            f64::NEG_INFINITY
        } else {
            agg.peak_est
        };
        h.energy = agg.energy;
        h.dropped = agg.dropped;
        h
    }

    /// The exact full-stream aggregate state, for checkpointing.
    pub fn aggregates(&self) -> HistoryAggregates {
        HistoryAggregates {
            total_windows: self.total_windows,
            sum_est: self.sum_est,
            sum_true: self.sum_true,
            // Keep the serialized form finite; `resume` restores the
            // identity-element sentinel for an empty stream.
            peak_est: if self.total_windows == 0 {
                0.0
            } else {
                self.peak_est
            },
            energy: self.energy,
            dropped: self.dropped,
        }
    }

    /// Appends one window, dropping the oldest when full. Never
    /// blocks, never reallocates past capacity.
    pub fn push(&mut self, rec: WindowRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.total_windows += 1;
        self.sum_est += rec.est_power;
        self.sum_true += rec.true_power;
        self.peak_est = self.peak_est.max(rec.est_power);
        self.energy = rec.energy;
        self.buf.push_back(rec);
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowRecord> {
        self.buf.iter()
    }

    /// Most recent record, if any.
    pub fn latest(&self) -> Option<&WindowRecord> {
        self.buf.back()
    }

    /// Retained window count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Windows evicted by the drop-oldest policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Windows observed over the full stream.
    pub fn total_windows(&self) -> u64 {
        self.total_windows
    }

    /// Full-stream mean estimated power (0 before the first window).
    pub fn mean_est(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            self.sum_est / self.total_windows as f64
        }
    }

    /// Full-stream mean ground-truth power (0 before the first window).
    pub fn mean_true(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            self.sum_true / self.total_windows as f64
        }
    }

    /// Full-stream peak estimated power (0 before the first window).
    pub fn peak_est(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            self.peak_est
        }
    }

    /// Cumulative estimated energy through the latest window.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Aggregates over the last `n` retained windows (all retained
    /// windows when `n` exceeds the tail).
    pub fn tail_stats(&self, n: usize) -> HistoryStats {
        let take = n.min(self.buf.len());
        let tail = self.buf.iter().skip(self.buf.len() - take);
        let mut sum_est = 0.0;
        let mut sum_true = 0.0;
        let mut peak = f64::NEG_INFINITY;
        for r in tail {
            sum_est += r.est_power;
            sum_true += r.true_power;
            peak = peak.max(r.est_power);
        }
        if take == 0 {
            HistoryStats {
                windows: 0,
                mean_est: 0.0,
                peak_est: 0.0,
                mean_true: 0.0,
            }
        } else {
            HistoryStats {
                windows: take,
                mean_est: sum_est / take as f64,
                peak_est: peak,
                mean_true: sum_true / take as f64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(window: u64, est: f64) -> WindowRecord {
        WindowRecord {
            window,
            cycle: (window + 1) * 32,
            raw: 100,
            out: 3,
            est_power: est,
            float_power: est + 0.1,
            true_power: est + 0.2,
            energy: est * 32.0 * (window + 1) as f64,
            throttle: 0,
            unit_raw: vec![60, 40],
        }
    }

    #[test]
    fn ring_drops_oldest_and_keeps_exact_aggregates() {
        let mut h = History::new(3);
        for i in 0..5 {
            h.push(rec(i, i as f64));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.dropped(), 2);
        assert_eq!(h.total_windows(), 5);
        let windows: Vec<u64> = h.iter().map(|r| r.window).collect();
        assert_eq!(windows, vec![2, 3, 4], "oldest evicted first");
        // Aggregates cover all 5 pushes, not just the retained 3.
        assert!((h.mean_est() - 2.0).abs() < 1e-12);
        assert_eq!(h.peak_est(), 4.0);
        assert_eq!(h.latest().unwrap().window, 4);
    }

    #[test]
    fn tail_stats_cover_requested_span() {
        let mut h = History::new(8);
        for i in 0..6 {
            h.push(rec(i, i as f64));
        }
        let s = h.tail_stats(2);
        assert_eq!(s.windows, 2);
        assert!((s.mean_est - 4.5).abs() < 1e-12);
        assert_eq!(s.peak_est, 5.0);
        let all = h.tail_stats(100);
        assert_eq!(all.windows, 6);
        assert!((all.mean_est - 2.5).abs() < 1e-12);
    }

    #[test]
    fn aggregates_roundtrip_through_resume() {
        let mut h = History::new(3);
        for i in 0..5 {
            h.push(rec(i, i as f64));
        }
        let agg = h.aggregates();
        let mut r = History::resume(3, &agg);
        assert!(r.is_empty(), "retained records are volatile");
        assert_eq!(r.total_windows(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.mean_est(), h.mean_est());
        assert_eq!(r.peak_est(), h.peak_est());
        assert_eq!(r.energy(), h.energy());
        // Resumed pushes keep extending the same stream.
        r.push(rec(5, 10.0));
        assert_eq!(r.total_windows(), 6);
        assert_eq!(r.peak_est(), 10.0);
        // An empty-stream aggregate restores the peak sentinel.
        let empty = History::new(2).aggregates();
        let r2 = History::resume(2, &empty);
        assert_eq!(r2.peak_est(), 0.0);
    }

    #[test]
    fn empty_history_is_safe() {
        let h = History::new(4);
        assert!(h.is_empty());
        assert_eq!(h.mean_est(), 0.0);
        assert_eq!(h.peak_est(), 0.0);
        assert_eq!(h.tail_stats(10).windows, 0);
        assert!(h.latest().is_none());
    }
}
