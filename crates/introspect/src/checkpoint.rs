//! Versioned, CRC-guarded checkpoint/resume for monitor pipelines.
//!
//! Every `M` completed windows the monitor serializes its durable
//! state — window/cycle/run counters, the workload phase, drift
//! detector baselines and CUSUM state, fail-safe arm state, energy
//! accumulators and full-stream history aggregates — into a
//! [`MonitorSnapshot`] and writes it *atomically*: serialize to
//! `<file>.tmp`, `fsync`, then `rename` over the live file, so a kill
//! at any byte offset leaves either the previous checkpoint or the new
//! one, never a torn file. The on-disk format is one header line
//! (`APOLLO-CKPT v1 crc32=XXXXXXXX`) followed by the JSON body; the
//! CRC-32 of the body is verified on load, and a corrupt or
//! version-skewed file is rejected (the pipeline then starts fresh
//! instead of resuming from garbage).
//!
//! Restoring a snapshot does **not** re-warm the drift detectors: the
//! frozen baseline (μ, σ), EWMA and both CUSUM sides resume
//! bit-exactly, which is the point — a supervised restart keeps its
//! model-health memory. The simulator itself is *not* serialized;
//! instead the snapshot records how many cycles the current workload
//! run had executed (`cycle_in_run`), and the resuming pipeline
//! replays that many cycles from a fresh deterministic simulation to
//! reconstruct the exact machine state (see
//! [`run_monitor_with`](crate::monitor::run_monitor_with)).

use crate::ring::HistoryAggregates;
use apollo_opm::{DriftDetector, FailSafeArm};
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk snapshot format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Header magic for checkpoint files.
const MAGIC: &str = "APOLLO-CKPT";

/// Durable monitor-pipeline state, captured at a window boundary.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonitorSnapshot {
    /// Snapshot format version ([`CHECKPOINT_VERSION`]).
    pub v: u32,
    /// Pipeline id the snapshot belongs to.
    pub pipeline: String,
    /// Design name, matched on resume.
    pub design: String,
    /// Benchmark name, matched on resume.
    pub bench: String,
    /// OPM window length `T`, matched on resume.
    pub window_t: usize,
    /// Weight quantization bits `B`, matched on resume.
    pub bits: u8,
    /// Completed windows (the next window index).
    pub windows: u64,
    /// Cycles simulated (monotonic across workload restarts).
    pub cycle: u64,
    /// Workload runs (1 + restarts after halt).
    pub runs: u64,
    /// Cycles executed since the current workload run started — the
    /// deterministic replay distance needed to reconstruct the
    /// simulator state.
    pub cycle_in_run: u64,
    /// Throttle level at the snapshot point.
    pub throttle: u8,
    /// Cumulative estimated energy.
    pub energy: f64,
    /// Cumulative per-class attributed energy.
    pub unit_energy: Vec<f64>,
    /// Full-stream history aggregates (mean/peak/dropped).
    pub history: HistoryAggregates,
    /// Quantization-residual drift detector, whole state.
    pub quant_drift: DriftDetector,
    /// Model-residual drift detector, whole state.
    pub truth_drift: DriftDetector,
    /// Fail-safe arm state, when the pipeline arms the actuator.
    pub arm: Option<FailSafeArm>,
}

/// Why a checkpoint failed to load.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file does not exist (a fresh start, not a failure).
    Missing,
    /// I/O error reading the file.
    Io(String),
    /// Bad magic, header, version, or CRC mismatch.
    Corrupt(String),
    /// The snapshot parsed but belongs to a different pipeline
    /// configuration (design/bench/window/bits mismatch).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "no checkpoint file"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(e) => write!(f, "checkpoint corrupt: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the guard
/// on the snapshot body. Bitwise, dependency-free; checkpoint bodies
/// are small so table-driven speed is not needed.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Where and how often a pipeline checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory holding `<pipeline>.ckpt` files.
    pub dir: PathBuf,
    /// Snapshot cadence in completed windows (`M ≥ 1`).
    pub every_windows: u64,
}

impl CheckpointPolicy {
    /// Policy writing to `dir` every `every_windows` windows.
    ///
    /// # Panics
    /// Panics if `every_windows` is zero.
    pub fn new(dir: impl Into<PathBuf>, every_windows: u64) -> Self {
        assert!(every_windows >= 1, "checkpoint cadence must be >= 1");
        CheckpointPolicy {
            dir: dir.into(),
            every_windows,
        }
    }

    /// The checkpoint file for pipeline `id`.
    pub fn file(&self, id: &str) -> PathBuf {
        // Pipeline ids become file names; keep them path-safe.
        let safe: String = id
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.ckpt"))
    }
}

/// Serializes `snap` and writes it atomically to `path`
/// (write-tmp + fsync + rename). The directory is created if absent.
///
/// Returns the serialized body size in bytes.
///
/// # Errors
/// Returns I/O errors from any step; on error the previous checkpoint
/// (if any) is left untouched.
pub fn write_snapshot(path: &Path, snap: &MonitorSnapshot) -> std::io::Result<u64> {
    let body = serde_json::to_string(snap)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let header = format!("{MAGIC} v{} crc32={:08x}\n", snap.v, crc32(body.as_bytes()));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(body.len() as u64)
}

/// Loads and verifies a snapshot: header magic, version, CRC.
///
/// # Errors
/// [`CheckpointError::Missing`] when the file does not exist;
/// [`CheckpointError::Corrupt`] on any header/CRC/parse violation.
pub fn load_snapshot(path: &Path) -> Result<MonitorSnapshot, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CheckpointError::Missing),
        Err(e) => return Err(CheckpointError::Io(e.to_string())),
    };
    let Some((header, body)) = text.split_once('\n') else {
        return Err(CheckpointError::Corrupt("missing header line".into()));
    };
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| CheckpointError::Corrupt("bad version field".into()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "version {version} != supported {CHECKPOINT_VERSION}"
        )));
    }
    let stated = parts
        .next()
        .and_then(|v| v.strip_prefix("crc32="))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Corrupt("bad crc field".into()))?;
    let actual = crc32(body.as_bytes());
    if stated != actual {
        return Err(CheckpointError::Corrupt(format!(
            "crc mismatch: header {stated:08x}, body {actual:08x}"
        )));
    }
    let snap: MonitorSnapshot = serde_json::from_str(body)
        .map_err(|e| CheckpointError::Corrupt(format!("parse: {e}")))?;
    if snap.v != version {
        return Err(CheckpointError::Corrupt("body/header version skew".into()));
    }
    Ok(snap)
}

/// Validates that `snap` belongs to the pipeline configuration about
/// to resume; a mismatched snapshot must not seed a different design's
/// drift baselines.
///
/// # Errors
/// [`CheckpointError::Mismatch`] naming the first differing field.
pub fn check_compatible(
    snap: &MonitorSnapshot,
    pipeline: &str,
    design: &str,
    bench: &str,
    window_t: usize,
    bits: u8,
) -> Result<(), CheckpointError> {
    let want = [
        ("pipeline", snap.pipeline.as_str(), pipeline),
        ("design", snap.design.as_str(), design),
        ("bench", snap.bench.as_str(), bench),
    ];
    for (what, got, expect) in want {
        if got != expect {
            return Err(CheckpointError::Mismatch(format!(
                "{what} `{got}` != `{expect}`"
            )));
        }
    }
    if snap.window_t != window_t {
        return Err(CheckpointError::Mismatch(format!(
            "window_t {} != {window_t}",
            snap.window_t
        )));
    }
    if snap.bits != bits {
        return Err(CheckpointError::Mismatch(format!(
            "bits {} != {bits}",
            snap.bits
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_opm::{DriftConfig, DriftDetector};

    fn sample_snapshot() -> MonitorSnapshot {
        let mut quant = DriftDetector::new("quant", DriftConfig::default());
        let mut truth = DriftDetector::new("truth", DriftConfig::default());
        for i in 0..40 {
            quant.observe(0.01 * ((i % 7) as f64 - 3.0));
            truth.observe(0.02 * ((i % 5) as f64 - 2.0));
        }
        MonitorSnapshot {
            v: CHECKPOINT_VERSION,
            pipeline: "p0".into(),
            design: "tiny".into(),
            bench: "dhrystone".into(),
            window_t: 32,
            bits: 10,
            windows: 40,
            cycle: 1280,
            runs: 3,
            cycle_in_run: 117,
            throttle: 0,
            energy: 123.456_789_012_345,
            unit_energy: vec![1.5, 2.25, 0.125],
            history: HistoryAggregates {
                total_windows: 40,
                sum_est: 80.5,
                sum_true: 81.25,
                peak_est: 3.75,
                energy: 123.456_789_012_345,
                dropped: 8,
            },
            quant_drift: quant,
            truth_drift: truth,
            arm: None,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("apollo_ckpt_rt_{}", std::process::id()));
        let path = dir.join("p0.ckpt");
        let snap = sample_snapshot();
        write_snapshot(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back, snap, "whole snapshot, drift state included");
        // Bit-exact floats, not approximately-equal floats.
        assert_eq!(back.energy.to_bits(), snap.energy.to_bits());
        assert_eq!(
            back.quant_drift.baseline().0.to_bits(),
            snap.quant_drift.baseline().0.to_bits()
        );
        // The tmp file from the atomic protocol must not linger.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_body_is_rejected_by_crc() {
        let dir = std::env::temp_dir().join(format!("apollo_ckpt_crc_{}", std::process::id()));
        let path = dir.join("p0.ckpt");
        write_snapshot(&path, &sample_snapshot()).unwrap();
        // Flip one byte in the body (past the header line).
        let mut bytes = std::fs::read(&path).unwrap();
        let split = bytes.iter().position(|&b| b == b'\n').unwrap();
        let last = bytes.len() - 1;
        assert!(last > split);
        bytes[last - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match load_snapshot(&path) {
            Err(CheckpointError::Corrupt(e)) => assert!(e.contains("crc") || e.contains("parse")),
            other => panic!("corrupt file must not load: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wrong_magic_and_version_skew_are_distinct() {
        let dir = std::env::temp_dir().join(format!("apollo_ckpt_hdr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.ckpt");
        assert_eq!(load_snapshot(&missing), Err(CheckpointError::Missing));

        let bad_magic = dir.join("magic.ckpt");
        std::fs::write(&bad_magic, "NOT-A-CKPT v1 crc32=00000000\n{}").unwrap();
        assert!(matches!(
            load_snapshot(&bad_magic),
            Err(CheckpointError::Corrupt(_))
        ));

        let future = dir.join("future.ckpt");
        let body = "{}";
        std::fs::write(
            &future,
            format!("APOLLO-CKPT v999 crc32={:08x}\n{body}", crc32(body.as_bytes())),
        )
        .unwrap();
        match load_snapshot(&future) {
            Err(CheckpointError::Corrupt(e)) => assert!(e.contains("999"), "{e}"),
            other => panic!("future version must be rejected: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compatibility_check_names_the_differing_field() {
        let snap = sample_snapshot();
        assert!(check_compatible(&snap, "p0", "tiny", "dhrystone", 32, 10).is_ok());
        let err = check_compatible(&snap, "p0", "tiny", "dhrystone", 64, 10).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(ref e) if e.contains("window_t")));
        let err = check_compatible(&snap, "p0", "n1", "dhrystone", 32, 10).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(ref e) if e.contains("design")));
    }

    #[test]
    fn policy_sanitizes_pipeline_ids() {
        let p = CheckpointPolicy::new("/tmp/ckpts", 8);
        assert_eq!(
            p.file("core/0:alpha"),
            PathBuf::from("/tmp/ckpts/core_0_alpha.ckpt")
        );
    }
}
