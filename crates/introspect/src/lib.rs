//! # apollo-introspect
//!
//! Runtime power introspection service for the APOLLO reproduction:
//! the paper's motivating use case — "runtime power introspection in
//! high-volume commercial microprocessors" — turned into a long-lived
//! observable pipeline:
//!
//! * [`monitor`] — drives a workload through the simulator, reads the
//!   quantized OPM every `T`-cycle window, decomposes the estimate
//!   per functional unit ([`apollo_opm::attribution`]), tracks model
//!   health with EWMA/CUSUM drift detectors ([`apollo_opm::drift`]),
//!   and can arm the fail-safe throttle actuator on sustained drift;
//! * [`ring`] — bounded drop-oldest window history with exact
//!   full-stream aggregates (mean / peak / cumulative energy);
//! * [`hub`] — non-blocking fan-out to streaming subscribers with
//!   bounded per-subscriber queues (drop-oldest plus drop counters:
//!   a slow reader never stalls the simulation loop);
//! * [`server`] — zero-dependency TCP endpoint speaking Prometheus
//!   text on `/metrics` and schema-versioned JSONL on `/events`, with
//!   `/shutdown` for signal-free termination; hardened against
//!   malformed, stalled, and excess peers ([`server::ServerOptions`]);
//! * [`health`] — the fleet health surface behind the server's
//!   `/healthz` and `/status` endpoints: a shared registry the
//!   monitor and supervisor write into, snapshotted as a versioned,
//!   lintable [`health::StatusSnapshot`];
//! * [`supervisor`] — fleet supervision with panic isolation,
//!   deterministic exponential backoff, checkpoint-driven resume and
//!   a circuit breaker into a `Degraded` state exported on `/metrics`;
//! * [`checkpoint`] — versioned, CRC-guarded, atomically-written
//!   snapshots of the monitor's durable state;
//! * [`chaos`] — seeded, replayable fault plans plus the client-side
//!   drivers the chaos differential tests and `repro_chaos` share;
//! * [`client`] — retrying HTTP client with jitter-free deterministic
//!   backoff and `Retry-After` awareness, used by `apollo scrape` and
//!   the fleet smoke harnesses;
//! * [`sync`] — poison-proof locking for the serving layer.
//!
//! # Determinism contract
//!
//! All published *values* — attribution, drift state, window series,
//! the final [`MonitorReport`] — are computed in cycle order from the
//! serial monitor loop and are bit-identical across simulator thread
//! counts. Wall-clock data is confined to `ts_ns` record fields and
//! `_ns` metrics, exactly as in `apollo-telemetry`. With no
//! subscribers attached, the pipeline's outputs are bit-exact with an
//! offline capture + [`apollo_opm::QuantizedOpm::predict_windows`] /
//! [`apollo_core::windowed_eval`] over the same cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod health;
pub mod hub;
pub mod monitor;
pub mod ring;
pub mod server;
pub mod supervisor;
pub mod sync;

pub use chaos::{ChaosPlan, ChaosRng, MalformedKind, ServiceFault};
pub use checkpoint::{CheckpointError, CheckpointPolicy, MonitorSnapshot};
pub use client::{http_get, http_get_lines_retry, HttpResponse, RetryPolicy};
pub use health::{
    HealthRegistry, PipelineHealth, StatusSnapshot, SubscriberStatus, STATUS_VERSION,
};
pub use hub::{DownsampleConfig, MonitorHub, Poll, Subscriber, Traced};
pub use monitor::{run_monitor, run_monitor_with, MonitorConfig, MonitorReport, RunOptions};
pub use ring::{History, HistoryAggregates, HistoryStats, WindowRecord};
pub use server::{
    http_get_lines, is_timeout, read_line_bounded, read_request_head, respond,
    respond_with_headers, serve, serve_with, LineRead, ServerHandle, ServerOptions,
};
pub use supervisor::{
    fleet_specs, panic_text, run_supervised, BackoffPolicy, Decision, InjectedPanic,
    PipelineOutcome, PipelineSpec, PipelineState, SupervisorConfig, SupervisorReport,
};
