//! # apollo-introspect
//!
//! Runtime power introspection service for the APOLLO reproduction:
//! the paper's motivating use case — "runtime power introspection in
//! high-volume commercial microprocessors" — turned into a long-lived
//! observable pipeline:
//!
//! * [`monitor`] — drives a workload through the simulator, reads the
//!   quantized OPM every `T`-cycle window, decomposes the estimate
//!   per functional unit ([`apollo_opm::attribution`]), tracks model
//!   health with EWMA/CUSUM drift detectors ([`apollo_opm::drift`]),
//!   and can arm the fail-safe throttle actuator on sustained drift;
//! * [`ring`] — bounded drop-oldest window history with exact
//!   full-stream aggregates (mean / peak / cumulative energy);
//! * [`hub`] — non-blocking fan-out to streaming subscribers with
//!   bounded per-subscriber queues (drop-oldest plus drop counters:
//!   a slow reader never stalls the simulation loop);
//! * [`server`] — zero-dependency TCP endpoint speaking Prometheus
//!   text on `/metrics` and schema-versioned JSONL on `/events`, with
//!   `/shutdown` for signal-free termination.
//!
//! # Determinism contract
//!
//! All published *values* — attribution, drift state, window series,
//! the final [`MonitorReport`] — are computed in cycle order from the
//! serial monitor loop and are bit-identical across simulator thread
//! counts. Wall-clock data is confined to `ts_ns` record fields and
//! `_ns` metrics, exactly as in `apollo-telemetry`. With no
//! subscribers attached, the pipeline's outputs are bit-exact with an
//! offline capture + [`apollo_opm::QuantizedOpm::predict_windows`] /
//! [`apollo_core::windowed_eval`] over the same cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hub;
pub mod monitor;
pub mod ring;
pub mod server;

pub use hub::{MonitorHub, Poll, Subscriber};
pub use monitor::{run_monitor, MonitorConfig, MonitorReport};
pub use ring::{History, HistoryStats, WindowRecord};
pub use server::{http_get_lines, serve, ServerHandle};
