//! Pipeline supervision: panic isolation, deterministic backoff,
//! circuit breaking, and checkpoint-driven recovery.
//!
//! A [`Supervisor`]-style run ([`run_supervised`]) owns a fleet of
//! monitor pipelines (one OS thread each, mixed [`MonitorConfig`]
//! presets over different workloads — the registry shape for
//! fleet-scale serving). Each pipeline executes
//! [`run_monitor_with`](crate::monitor::run_monitor_with) inside
//! `catch_unwind`, so a panicking pipeline is *isolated*: its thread
//! survives, siblings and the serving layer never notice.
//!
//! Recovery policy, in order:
//!
//! 1. **Restart with deterministic backoff.** After the `n`-th
//!    consecutive failure the pipeline waits
//!    [`BackoffPolicy::delay_ms`]`(n)` — a pure function of `n` (no
//!    wall-clock sampling, no jitter), so supervision *decisions* are
//!    byte-identical across reruns of the same fault plan. Restarts
//!    resume from the pipeline's checkpoint when one exists.
//! 2. **Circuit-break to `Degraded`.** After
//!    [`BackoffPolicy::give_up`] consecutive failures the pipeline
//!    stops retrying, emits `introspect.supervisor.degraded`, and
//!    raises the `introspect.supervisor.degraded` gauge exported on
//!    `/metrics` — a scrape sees partial-fleet operation directly.
//!
//! Every supervision step is recorded as a typed [`Decision`]; the
//! per-pipeline decision log serializes to JSON and is the object the
//! chaos differential tests compare byte-for-byte.

use crate::checkpoint::CheckpointPolicy;
use crate::health::HealthRegistry;
use crate::hub::MonitorHub;
use crate::monitor::{run_monitor_with, MonitorConfig, MonitorReport, RunOptions};
use crate::sync::plock;
use apollo_core::{ApolloModel, DesignContext};
use apollo_cpu::benchmarks::{self, Benchmark};
use apollo_telemetry::FieldValue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic exponential backoff + circuit breaker.
///
/// The delay before restart attempt `n` (1-based consecutive failure
/// count) is `min(base_ms · factor^(n−1), max_ms)` — a pure function
/// of `n` with no randomness, so two supervisors replaying the same
/// fault plan produce identical decision logs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first restart, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per additional consecutive failure.
    pub factor: u64,
    /// Delay ceiling in milliseconds.
    pub max_ms: u64,
    /// Consecutive failures that trip the circuit breaker into
    /// [`PipelineState::Degraded`].
    pub give_up: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 50,
            factor: 2,
            max_ms: 2_000,
            give_up: 4,
        }
    }
}

impl BackoffPolicy {
    /// Delay before restart after the `n`-th consecutive failure
    /// (`n ≥ 1`). Pure and total: saturates at `max_ms`.
    pub fn delay_ms(&self, n: u32) -> u64 {
        let mut d = self.base_ms;
        for _ in 1..n {
            d = d.saturating_mul(self.factor);
            if d >= self.max_ms {
                return self.max_ms;
            }
        }
        d.min(self.max_ms)
    }
}

/// A deterministic fault to inject into one pipeline: panic right
/// after window `window` completes, but only during run attempt
/// `attempt` (0-based). Attempt scoping is what lets the *resumed* run
/// sail past the window that killed its predecessor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InjectedPanic {
    /// 0-based run attempt the fault applies to.
    pub attempt: u32,
    /// Global window index after which the pipeline panics.
    pub window: u64,
}

/// One pipeline in the supervised fleet.
#[derive(Clone, Debug)]
pub struct PipelineSpec {
    /// Stable pipeline id (also names the checkpoint file).
    pub id: String,
    /// Workload this pipeline monitors.
    pub bench: Benchmark,
    /// Monitor preset (window, bits, cycles, drift, arm).
    pub cfg: MonitorConfig,
    /// Deterministic chaos faults, attempt-scoped; empty in
    /// production.
    pub faults: Vec<InjectedPanic>,
}

/// Supervisor-level options shared by the whole fleet.
#[derive(Clone, Debug, Default)]
pub struct SupervisorConfig {
    /// Restart/backoff/circuit-breaker policy.
    pub backoff: BackoffPolicy,
    /// Checkpoint cadence; `None` disables durability (every restart
    /// is then a fresh start).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Fleet health registry: when set, every supervision transition
    /// (start, backoff, degraded, completed) and every monitored
    /// window is reported for the `/healthz` + `/status` surface.
    pub health: Option<Arc<HealthRegistry>>,
}

/// Lifecycle state a pipeline ended in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PipelineState {
    /// The monitor run returned normally.
    Completed,
    /// The circuit breaker tripped: failures reached
    /// [`BackoffPolicy::give_up`].
    Degraded,
}

/// One supervision decision, in per-pipeline program order. The
/// decision log is deterministic for a fixed spec + fault plan; the
/// chaos harness compares its JSON serialization byte-for-byte across
/// reruns.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Decision {
    /// Run attempt `attempt` started (`resume` = from checkpoint).
    Start {
        /// 0-based run attempt.
        attempt: u32,
        /// Whether this attempt asked to resume from a checkpoint.
        resume: bool,
    },
    /// Attempt `attempt` failed (panic or error).
    Failed {
        /// 0-based run attempt.
        attempt: u32,
        /// Normalized failure reason (panic payload or error text).
        reason: String,
    },
    /// Backoff of `delay_ms` before the next attempt.
    Backoff {
        /// Consecutive failure count driving the delay.
        failures: u32,
        /// The deterministic delay.
        delay_ms: u64,
    },
    /// The circuit breaker tripped.
    Degraded {
        /// Consecutive failures at the trip point.
        failures: u32,
    },
    /// The run returned normally after `attempt` attempts.
    Completed {
        /// 0-based run attempt that succeeded.
        attempt: u32,
        /// Total completed windows reported by the monitor.
        windows: u64,
    },
}

/// Final outcome of one supervised pipeline.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PipelineOutcome {
    /// Pipeline id.
    pub id: String,
    /// Terminal state.
    pub state: PipelineState,
    /// Run attempts (1 = no failures).
    pub attempts: u32,
    /// The successful run's report, if the pipeline completed.
    pub report: Option<MonitorReport>,
    /// Full supervision decision log, in order.
    pub decisions: Vec<Decision>,
}

/// Final outcome of a supervised fleet run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SupervisorReport {
    /// Per-pipeline outcomes, in spec order (deterministic).
    pub pipelines: Vec<PipelineOutcome>,
}

impl SupervisorReport {
    /// Pipelines that ended [`PipelineState::Degraded`].
    pub fn degraded(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|p| p.state == PipelineState::Degraded)
            .count()
    }

    /// The concatenated decision logs in spec order, serialized to
    /// JSON — the byte-comparable supervision transcript.
    pub fn decision_transcript(&self) -> String {
        let logs: Vec<(&str, &Vec<Decision>)> = self
            .pipelines
            .iter()
            .map(|p| (p.id.as_str(), &p.decisions))
            .collect();
        serde_json::to_string(&logs).expect("decision log serializes")
    }
}

/// A mixed-preset fleet over the built-in workloads: `n` pipelines
/// cycling through the four benchmarks with varied window/bit presets
/// derived from `base`. This is the registry shape fleet-scale serving
/// will load from configuration; tests and the CLI use it directly.
pub fn fleet_specs(n: usize, base: &MonitorConfig) -> Vec<PipelineSpec> {
    let benches = [
        benchmarks::dhrystone(),
        benchmarks::maxpwr_cpu(),
        benchmarks::saxpy_simd(),
        benchmarks::daxpy(),
    ];
    (0..n)
        .map(|i| {
            let bench = benches[i % benches.len()].clone();
            let mut cfg = base.clone();
            // Mixed presets: alternate window length and quantization
            // width so the fleet exercises heterogeneous configs.
            if i % 2 == 1 {
                cfg.window_t = (base.window_t * 2).max(4);
            }
            if i % 3 == 2 {
                cfg.bits = base.bits.saturating_sub(2).max(4);
            }
            PipelineSpec {
                id: format!("p{}-{}", i, bench.name),
                bench,
                cfg,
                faults: Vec::new(),
            }
        })
        .collect()
}

/// Runs `specs` as a supervised fleet: one thread per pipeline, panic
/// isolation, deterministic backoff, checkpoint-driven resume, and
/// circuit breaking (see module docs). Blocks until every pipeline
/// completes or degrades; `stop` requests a cooperative early stop.
///
/// All pipelines publish into the same `hub` (bodies are tagged with
/// their pipeline id) and the same global telemetry registry.
pub fn run_supervised(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    specs: &[PipelineSpec],
    sup: &SupervisorConfig,
    hub: Option<&Arc<MonitorHub>>,
    stop: &Arc<AtomicBool>,
) -> SupervisorReport {
    let degraded_count = Arc::new(AtomicU64::new(0));
    apollo_telemetry::gauge("introspect.supervisor.degraded").set(0.0);
    apollo_telemetry::gauge("introspect.supervisor.pipelines").set(specs.len() as f64);
    let outcomes: Arc<Mutex<Vec<Option<PipelineOutcome>>>> =
        Arc::new(Mutex::new(vec![None; specs.len()]));
    let mut threads = Vec::with_capacity(specs.len());
    for (slot, spec) in specs.iter().enumerate() {
        let ctx = Arc::clone(ctx);
        let model = Arc::clone(model);
        let spec = spec.clone();
        let sup = sup.clone();
        let hub = hub.map(Arc::clone);
        let stop = Arc::clone(stop);
        let degraded_count = Arc::clone(&degraded_count);
        let outcomes = Arc::clone(&outcomes);
        threads.push(std::thread::spawn(move || {
            let outcome = supervise_one(&ctx, &model, &spec, &sup, hub.as_deref(), &stop, &degraded_count);
            plock(&outcomes)[slot] = Some(outcome);
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    let pipelines = plock(&outcomes)
        .iter_mut()
        .map(|o| o.take().expect("every pipeline reports an outcome"))
        .collect();
    SupervisorReport { pipelines }
}

fn supervise_one(
    ctx: &DesignContext,
    model: &ApolloModel,
    spec: &PipelineSpec,
    sup: &SupervisorConfig,
    hub: Option<&MonitorHub>,
    stop: &Arc<AtomicBool>,
    degraded_count: &AtomicU64,
) -> PipelineOutcome {
    let mut decisions = Vec::new();
    let mut failures = 0u32;
    let mut attempt = 0u32;
    loop {
        let faults: Vec<u64> = spec
            .faults
            .iter()
            .filter(|f| f.attempt == attempt)
            .map(|f| f.window)
            .collect();
        let opts = RunOptions {
            pipeline: Some(spec.id.clone()),
            checkpoint: sup.checkpoint.clone(),
            // Attempt 0 also resumes when a checkpoint file exists —
            // that is exactly the kill-the-process recovery path. A
            // missing file is a silent fresh start.
            resume: sup.checkpoint.is_some(),
            panic_at_windows: faults,
            health: sup.health.clone(),
        };
        decisions.push(Decision::Start {
            attempt,
            resume: opts.resume,
        });
        if let Some(h) = &sup.health {
            h.report_state(&spec.id, "starting", u64::from(attempt), 0);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Each attempt is one trace: root ids are pure functions
            // of (pipeline id, attempt), so a rerun of the same fault
            // plan produces byte-identical per-pipeline trace streams.
            let _trace = apollo_telemetry::enter(apollo_telemetry::TraceCtx::root(
                apollo_telemetry::intern(&spec.id),
                u64::from(attempt),
            ));
            run_monitor_with(ctx, model, &spec.bench, &spec.cfg, hub, stop, &opts)
        }));
        let reason = match result {
            Ok(Ok(report)) => {
                decisions.push(Decision::Completed {
                    attempt,
                    windows: report.windows,
                });
                if let Some(h) = &sup.health {
                    h.report_state(&spec.id, "completed", u64::from(attempt), 0);
                }
                return PipelineOutcome {
                    id: spec.id.clone(),
                    state: PipelineState::Completed,
                    attempts: attempt + 1,
                    report: Some(report),
                    decisions,
                };
            }
            Ok(Err(e)) => format!("error: {e}"),
            Err(payload) => format!("panic: {}", panic_text(payload.as_ref())),
        };
        failures += 1;
        decisions.push(Decision::Failed {
            attempt,
            reason: reason.clone(),
        });
        if failures >= sup.backoff.give_up {
            decisions.push(Decision::Degraded { failures });
            if let Some(h) = &sup.health {
                h.report_state(&spec.id, "degraded", u64::from(attempt), 0);
            }
            let now = degraded_count.fetch_add(1, Ordering::Relaxed) + 1;
            apollo_telemetry::gauge("introspect.supervisor.degraded").set(now as f64);
            apollo_telemetry::counter("introspect.supervisor.degradations").inc();
            apollo_telemetry::emit_event(
                "introspect.supervisor.degraded",
                &[
                    ("pipeline", FieldValue::from(spec.id.as_str())),
                    ("failures", FieldValue::from(u64::from(failures))),
                ],
            );
            return PipelineOutcome {
                id: spec.id.clone(),
                state: PipelineState::Degraded,
                attempts: attempt + 1,
                report: None,
                decisions,
            };
        }
        let delay_ms = sup.backoff.delay_ms(failures);
        decisions.push(Decision::Backoff {
            failures,
            delay_ms,
        });
        if let Some(h) = &sup.health {
            h.report_state(&spec.id, "backoff", u64::from(attempt + 1), u64::from(failures));
        }
        apollo_telemetry::counter("introspect.supervisor.restarts").inc();
        apollo_telemetry::emit_event(
            "introspect.supervisor.restart",
            &[
                ("pipeline", FieldValue::from(spec.id.as_str())),
                ("attempt", FieldValue::from(u64::from(attempt + 1))),
                ("delay_ms", FieldValue::from(delay_ms)),
                ("reason", FieldValue::from(reason.as_str())),
            ],
        );
        // Sleep in short slices so a stop request cuts the backoff.
        let mut left = delay_ms;
        while left > 0 && !stop.load(Ordering::Relaxed) {
            let slice = left.min(20);
            std::thread::sleep(Duration::from_millis(slice));
            left -= slice;
        }
        attempt += 1;
    }
}

/// Extracts a stable text from a panic payload (`&str` / `String`
/// payloads; anything else gets a fixed placeholder so decision logs
/// stay deterministic). Shared with the `apollo-fleet` shard bulkheads.
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_saturates() {
        let b = BackoffPolicy {
            base_ms: 10,
            factor: 3,
            max_ms: 200,
            give_up: 5,
        };
        assert_eq!(b.delay_ms(1), 10);
        assert_eq!(b.delay_ms(2), 30);
        assert_eq!(b.delay_ms(3), 90);
        assert_eq!(b.delay_ms(4), 200, "capped");
        assert_eq!(b.delay_ms(40), 200, "no overflow at large n");
        // Pure: same input, same output.
        assert_eq!(b.delay_ms(3), b.delay_ms(3));
    }

    #[test]
    fn fleet_specs_mix_presets_over_all_benchmarks() {
        let specs = fleet_specs(4, &MonitorConfig::default());
        assert_eq!(specs.len(), 4);
        let names: std::collections::HashSet<&str> =
            specs.iter().map(|s| s.bench.name.as_str()).collect();
        assert_eq!(names.len(), 4, "four distinct workloads");
        let ids: std::collections::HashSet<&String> = specs.iter().map(|s| &s.id).collect();
        assert_eq!(ids.len(), 4, "unique pipeline ids");
        assert_ne!(
            specs[0].cfg.window_t, specs[1].cfg.window_t,
            "presets are heterogeneous"
        );
    }

    #[test]
    fn panic_text_normalizes_payloads() {
        assert_eq!(panic_text(&"boom"), "boom");
        assert_eq!(panic_text(&String::from("boom")), "boom");
        assert_eq!(panic_text(&42u32), "<non-string panic payload>");
    }
}
