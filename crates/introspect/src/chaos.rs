//! Seeded, replayable chaos plans for the introspection service.
//!
//! A [`ChaosPlan`] is a deterministic function of its seed: the same
//! seed always yields the same fault sequence, so a chaos run that
//! exposes a bug is *replayable* by quoting one integer. Faults cover
//! the service's failure surfaces:
//!
//! * [`ServiceFault::PipelinePanic`] — a monitor pipeline panics right
//!   after a chosen window, on a chosen run attempt (attempt-scoped so
//!   the checkpoint-resumed successor survives the same window);
//! * [`ServiceFault::SubscriberStall`] — an `/events` client stops
//!   draining its socket, exercising slow-client eviction and
//!   adaptive downsampling;
//! * [`ServiceFault::ConnChurn`] — a burst of connect/disconnect
//!   cycles against the endpoint, exercising the accept loop's reaping
//!   and shedding;
//! * [`ServiceFault::MalformedRequest`] — protocol garbage on the
//!   wire, exercising the bounded parser.
//!
//! The client-side drivers ([`send_malformed`], [`churn_connections`])
//! live here so the differential tests and the `repro_chaos` bench
//! binary share one implementation.

use crate::supervisor::InjectedPanic;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal deterministic PRNG (splitmix64): good enough for fault
/// placement, zero dependencies, stable across platforms.
#[derive(Clone, Debug)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// New generator for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n ≥ 1`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n >= 1, "below(0) is meaningless");
        self.next_u64() % n
    }
}

/// The shape of one malformed request.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MalformedKind {
    /// A request line far beyond the server's line cap, no terminator.
    OversizedLine,
    /// Non-UTF-8 garbage bytes.
    GarbageBytes,
    /// Connect, send nothing, close (zero-length read).
    ZeroLength,
    /// A request line with bare `\n` framing and no header terminator.
    MissingCrlf,
}

impl MalformedKind {
    /// All kinds, in stable order.
    pub const ALL: [MalformedKind; 4] = [
        MalformedKind::OversizedLine,
        MalformedKind::GarbageBytes,
        MalformedKind::ZeroLength,
        MalformedKind::MissingCrlf,
    ];

    /// The bytes this fault puts on the wire (empty = close
    /// immediately).
    pub fn payload(self) -> Vec<u8> {
        match self {
            MalformedKind::OversizedLine => {
                let mut p = b"GET /".to_vec();
                p.extend(vec![b'x'; 64 * 1024]);
                p
            }
            MalformedKind::GarbageBytes => b"\x00\xff\xfe\x01\x80 \x9c garbage \x02\n\r\n".to_vec(),
            MalformedKind::ZeroLength => Vec::new(),
            MalformedKind::MissingCrlf => b"GET / HTTP/1.1\nHost: x\n\n".to_vec(),
        }
    }
}

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServiceFault {
    /// Pipeline `pipeline` (index into the fleet spec) panics after
    /// `window`, on run attempt `attempt`.
    PipelinePanic {
        /// Fleet index of the victim pipeline.
        pipeline: usize,
        /// Global window index after which it panics.
        window: u64,
        /// 0-based run attempt the fault applies to.
        attempt: u32,
    },
    /// An `/events` subscriber connects and stops draining.
    SubscriberStall {
        /// How long the stalled client holds its socket, ms.
        hold_ms: u64,
    },
    /// A burst of `count` connect/close cycles.
    ConnChurn {
        /// Connections in the burst.
        count: u32,
    },
    /// One malformed request.
    MalformedRequest {
        /// Payload shape.
        kind: MalformedKind,
    },
}

/// A seeded, replayable fault plan.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChaosPlan {
    /// The seed that generated (and replays) this plan.
    pub seed: u64,
    /// Faults in injection order.
    pub faults: Vec<ServiceFault>,
}

impl ChaosPlan {
    /// Deterministically generates a plan: `n_faults` faults against a
    /// fleet of `n_pipelines` pipelines whose runs complete about
    /// `windows` windows. Same arguments ⇒ identical plan, always.
    pub fn generate(seed: u64, n_pipelines: usize, windows: u64, n_faults: usize) -> ChaosPlan {
        assert!(n_pipelines >= 1 && windows >= 2);
        let mut rng = ChaosRng::new(seed);
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let fault = match rng.below(4) {
                0 => ServiceFault::PipelinePanic {
                    pipeline: rng.below(n_pipelines as u64) as usize,
                    // Never the final window: leave room to recover.
                    window: rng.below(windows - 1),
                    // Scope panics to the first attempts so the
                    // circuit breaker is reachable but not guaranteed.
                    attempt: rng.below(2) as u32,
                },
                1 => ServiceFault::SubscriberStall {
                    hold_ms: 50 + rng.below(200),
                },
                2 => ServiceFault::ConnChurn {
                    count: 2 + rng.below(6) as u32,
                },
                _ => ServiceFault::MalformedRequest {
                    kind: MalformedKind::ALL[rng.below(4) as usize],
                },
            };
            faults.push(fault);
        }
        ChaosPlan { seed, faults }
    }

    /// The attempt-scoped panic schedule for fleet pipeline `index`,
    /// ready for
    /// [`PipelineSpec::faults`](crate::supervisor::PipelineSpec).
    pub fn panics_for(&self, index: usize) -> Vec<InjectedPanic> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServiceFault::PipelinePanic {
                    pipeline,
                    window,
                    attempt,
                } if *pipeline == index => Some(InjectedPanic {
                    attempt: *attempt,
                    window: *window,
                }),
                _ => None,
            })
            .collect()
    }
}

/// Sends one malformed payload to `addr`, drains whatever status line
/// comes back (if any), and returns it. Never panics on peer
/// behaviour.
pub fn send_malformed(addr: &str, kind: MalformedKind) -> Option<String> {
    let mut s = TcpStream::connect(addr).ok()?;
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = s.set_write_timeout(Some(Duration::from_secs(2)));
    let payload = kind.payload();
    if payload.is_empty() {
        return None; // ZeroLength: connect-and-close
    }
    let _ = s.write_all(&payload);
    let _ = s.flush();
    if matches!(kind, MalformedKind::OversizedLine) {
        // The server may answer 400 before draining our oversized
        // line; stop sending and just read.
        let _ = s.shutdown(std::net::Shutdown::Write);
    }
    let mut r = BufReader::new(s);
    let mut status = String::new();
    match r.read_line(&mut status) {
        Ok(n) if n > 0 => Some(status.trim().to_owned()),
        _ => None,
    }
}

/// Opens and immediately closes `count` connections against `addr`.
pub fn churn_connections(addr: &str, count: u32) {
    for _ in 0..count {
        if let Ok(s) = TcpStream::connect(addr) {
            drop(s);
        }
    }
}

/// Connects to `/events` and deliberately stops draining for
/// `hold_ms`, then reads whatever is left until the server closes or
/// evicts. Returns the number of body lines ultimately received.
pub fn stall_subscriber(addr: &str, hold_ms: u64) -> usize {
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut out = match stream.try_clone() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    if write!(
        out,
        "GET /events HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| out.flush())
    .is_err()
    {
        return 0;
    }
    // Stall: hold the socket without reading.
    std::thread::sleep(Duration::from_millis(hold_ms));
    // Then drain what's left (possibly nothing if we were evicted).
    let mut r = BufReader::new(stream);
    let mut lines = 0usize;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match r.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => lines += 1,
            Err(_) => break,
        }
    }
    lines
}

/// Drains a socket fully (helper for drivers that only care that the
/// server answered *something* without hanging).
pub fn drain(stream: TcpStream) -> usize {
    let mut r = BufReader::new(stream);
    let mut total = 0usize;
    let mut buf = [0u8; 4096];
    while let Ok(n) = r.read(&mut buf) {
        if n == 0 {
            break;
        }
        total += n;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let a = ChaosPlan::generate(42, 4, 32, 16);
        let b = ChaosPlan::generate(42, 4, 32, 16);
        assert_eq!(a, b, "plans are pure functions of the seed");
        let c = ChaosPlan::generate(43, 4, 32, 16);
        assert_ne!(a, c, "seed actually matters");
        assert_eq!(a.faults.len(), 16);
    }

    #[test]
    fn plan_respects_bounds() {
        let plan = ChaosPlan::generate(7, 3, 16, 64);
        for f in &plan.faults {
            match f {
                ServiceFault::PipelinePanic {
                    pipeline,
                    window,
                    attempt,
                } => {
                    assert!(*pipeline < 3);
                    assert!(*window < 15, "never the final window");
                    assert!(*attempt < 2);
                }
                ServiceFault::SubscriberStall { hold_ms } => {
                    assert!((50..250).contains(hold_ms));
                }
                ServiceFault::ConnChurn { count } => assert!((2..8).contains(count)),
                ServiceFault::MalformedRequest { .. } => {}
            }
        }
    }

    #[test]
    fn panics_for_scopes_to_one_pipeline() {
        let plan = ChaosPlan {
            seed: 0,
            faults: vec![
                ServiceFault::PipelinePanic {
                    pipeline: 0,
                    window: 3,
                    attempt: 0,
                },
                ServiceFault::PipelinePanic {
                    pipeline: 1,
                    window: 5,
                    attempt: 1,
                },
                ServiceFault::ConnChurn { count: 2 },
            ],
        };
        assert_eq!(
            plan.panics_for(0),
            vec![InjectedPanic {
                attempt: 0,
                window: 3
            }]
        );
        assert_eq!(
            plan.panics_for(1),
            vec![InjectedPanic {
                attempt: 1,
                window: 5
            }]
        );
        assert!(plan.panics_for(2).is_empty());
    }

    #[test]
    fn malformed_payloads_have_expected_shapes() {
        assert!(MalformedKind::OversizedLine.payload().len() > 32 * 1024);
        assert!(MalformedKind::ZeroLength.payload().is_empty());
        assert!(!MalformedKind::GarbageBytes.payload().is_empty());
        let crlf = MalformedKind::MissingCrlf.payload();
        assert!(
            !crlf.windows(2).any(|w| w == b"\r\n"),
            "MissingCrlf must contain no CRLF framing"
        );
    }
}
