//! Chaos differential tests: the supervision/recovery subsystem's
//! determinism and robustness contract.
//!
//! * **Decision determinism** — rerunning the same seeded fault plan
//!   produces a byte-identical supervision decision transcript
//!   (deterministic backoff, attempt-scoped faults, no wall-clock
//!   randomness in any decision).
//! * **Kill/resume differential** — a pipeline killed at window `W`
//!   and resumed from its checkpoint converges to the *uninterrupted*
//!   run: identical final report values (windows, energy, attribution,
//!   drift-alarm counts) and a bit-identical post-resume window
//!   stream.
//! * **Σ attribution invariant** — every published window decomposes
//!   exactly (`Σ unit.* == raw`) across restarts, resumes, and fleet
//!   multiplexing.
//! * **Corrupt checkpoints** are rejected and fall back to a fresh
//!   start (never resumed from garbage).
//! * **Wire chaos** — the live endpoint survives the malformed-input
//!   battery, connection churn, and stalled subscribers while serving
//!   lint-clean, dense-`seq` `/events` streams.

use apollo_core::{train_per_cycle, ApolloModel, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{
    chaos, fleet_specs, run_monitor_with, run_supervised, serve_with, ChaosPlan, CheckpointPolicy,
    DownsampleConfig, InjectedPanic, MonitorConfig, MonitorHub, PipelineState, Poll, RunOptions,
    ServerOptions, ServiceFault, SupervisorConfig,
};
use apollo_telemetry::{FieldValue, RecordBody};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn trained_model(ctx: &DesignContext) -> ApolloModel {
    let suite = vec![
        (benchmarks::dhrystone(), 200),
        (benchmarks::maxpwr_cpu(), 200),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apollo_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One published window, fully decoded for bit-exact comparison.
#[derive(Debug, Clone, PartialEq)]
struct Window {
    pipeline: Option<String>,
    window: u64,
    cycle: u64,
    raw: u64,
    out: u64,
    est: f64,
    float: f64,
    truth: f64,
    energy: f64,
    unit_raw: Vec<u64>,
}

fn decode_windows(sub: &apollo_introspect::Subscriber) -> Vec<Window> {
    let mut out = Vec::new();
    loop {
        match sub.poll(Duration::from_millis(300)) {
            Poll::Body(body) => {
                let RecordBody::Event(ev) = body.body else {
                    continue;
                };
                if ev.name != "introspect.window" {
                    continue;
                }
                let u64_of = |key: &str| -> u64 {
                    match ev.fields.iter().find(|(k, _)| k == key) {
                        Some((_, FieldValue::U64(v))) => *v,
                        other => panic!("missing u64 field {key}: {other:?}"),
                    }
                };
                let f64_of = |key: &str| -> f64 {
                    match ev.fields.iter().find(|(k, _)| k == key) {
                        Some((_, FieldValue::F64(v))) => *v,
                        other => panic!("missing f64 field {key}: {other:?}"),
                    }
                };
                let pipeline = ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("pipeline", FieldValue::Str(s)) => Some(s.clone()),
                    _ => None,
                });
                let unit_raw: Vec<u64> = ev
                    .fields
                    .iter()
                    .filter(|(k, _)| k.starts_with("unit."))
                    .map(|(k, v)| match v {
                        FieldValue::U64(v) => *v,
                        other => panic!("unit field {k} must be u64, got {other:?}"),
                    })
                    .collect();
                out.push(Window {
                    pipeline,
                    window: u64_of("window"),
                    cycle: u64_of("cycle"),
                    raw: u64_of("raw"),
                    out: u64_of("out"),
                    est: f64_of("est_power"),
                    float: f64_of("float_power"),
                    truth: f64_of("true_power"),
                    energy: f64_of("energy"),
                    unit_raw,
                });
            }
            Poll::Closed => break,
            Poll::Timeout => panic!("hub closed before draining"),
        }
    }
    out
}

fn assert_sum_invariant(windows: &[Window]) {
    for w in windows {
        assert_eq!(
            w.unit_raw.iter().sum::<u64>(),
            w.raw,
            "window {} of {:?}: Σ unit attribution must equal raw",
            w.window,
            w.pipeline
        );
    }
}

#[test]
fn supervisor_decisions_are_byte_identical_across_reruns() {
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));
    let base = MonitorConfig {
        cycles: 256,
        window_t: 16,
        ..MonitorConfig::default()
    };
    // Seeded plan over the 4-pipeline fleet; the shortest preset
    // completes 8 windows, so cap fault windows below that.
    let plan = ChaosPlan::generate(0xC0FFEE, 4, 8, 12);
    assert!(
        plan.faults
            .iter()
            .any(|f| matches!(f, ServiceFault::PipelinePanic { .. })),
        "seed must inject at least one pipeline panic: {plan:?}"
    );
    let mut transcripts = Vec::new();
    let mut restarts = 0usize;
    for rerun in 0..2 {
        let dir = scratch_dir(&format!("decisions_{rerun}"));
        let mut specs = fleet_specs(4, &base);
        for (i, spec) in specs.iter_mut().enumerate() {
            spec.faults = plan.panics_for(i);
        }
        let sup = SupervisorConfig {
            checkpoint: Some(CheckpointPolicy::new(&dir, 4)),
            ..SupervisorConfig::default()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let report = run_supervised(&ctx, &model, &specs, &sup, None, &stop);
        assert_eq!(report.pipelines.len(), 4);
        for p in &report.pipelines {
            assert_eq!(
                p.state,
                PipelineState::Completed,
                "attempt-scoped faults must not trip the breaker: {p:?}"
            );
        }
        restarts = report
            .pipelines
            .iter()
            .map(|p| p.attempts as usize - 1)
            .sum();
        transcripts.push(report.decision_transcript());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(restarts > 0, "the plan must actually force restarts");
    assert_eq!(
        transcripts[0], transcripts[1],
        "supervision decisions must be byte-identical across reruns"
    );
}

#[test]
fn kill_and_resume_converges_to_the_uninterrupted_run() {
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));
    let cfg = MonitorConfig {
        cycles: 512,
        window_t: 32,
        ..MonitorConfig::default()
    };
    // 16 windows, checkpoint every 4 → snapshots at windows 4/8/12/16.
    const KILL_AT: u64 = 9; // between the window-8 and window-12 snapshots
    const RESUME_FROM: u64 = 8;

    // Uninterrupted reference run.
    let hub_u = MonitorHub::new(2048);
    let (sub_u, _) = hub_u.subscribe();
    let dir_u = scratch_dir("uninterrupted");
    let stop = AtomicBool::new(false);
    let opts_u = RunOptions {
        pipeline: Some("diff".into()),
        checkpoint: Some(CheckpointPolicy::new(&dir_u, 4)),
        resume: false,
        panic_at_windows: vec![],
        health: None,
    };
    let report_u = run_monitor_with(
        &ctx,
        &model,
        &benchmarks::dhrystone(),
        &cfg,
        Some(&hub_u),
        &stop,
        &opts_u,
    )
    .unwrap();
    hub_u.close();
    let windows_u = decode_windows(&sub_u);
    assert_eq!(windows_u.len(), 16);
    assert_sum_invariant(&windows_u);

    // Killed-and-resumed run, same config, own checkpoint dir.
    let hub_k = MonitorHub::new(2048);
    let (sub_k, _) = hub_k.subscribe();
    let dir_k = scratch_dir("killed");
    let spec = apollo_introspect::PipelineSpec {
        id: "diff".into(),
        bench: benchmarks::dhrystone(),
        cfg: cfg.clone(),
        faults: vec![InjectedPanic {
            attempt: 0,
            window: KILL_AT,
        }],
    };
    let sup = SupervisorConfig {
        checkpoint: Some(CheckpointPolicy::new(&dir_k, 4)),
        ..SupervisorConfig::default()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let report_k = run_supervised(&ctx, &model, &[spec], &sup, Some(&hub_k), &stop);
    hub_k.close();
    let windows_k = decode_windows(&sub_k);
    assert_sum_invariant(&windows_k);

    let outcome = &report_k.pipelines[0];
    assert_eq!(outcome.state, PipelineState::Completed);
    assert_eq!(outcome.attempts, 2, "one panic, one successful resume");
    let final_k = outcome.report.as_ref().unwrap();
    assert_eq!(final_k.resumed_from, Some(RESUME_FROM));

    // The killed run streamed: windows 0..=KILL_AT (attempt 0), then
    // windows RESUME_FROM..16 again (attempt 1).
    assert_eq!(
        windows_k.len() as u64,
        (KILL_AT + 1) + (16 - RESUME_FROM),
        "{windows_k:?}"
    );
    // Post-resume stream is bit-identical to the uninterrupted run's
    // stream from the checkpoint window onward — every field.
    let resumed = &windows_k[(KILL_AT + 1) as usize..];
    let reference = &windows_u[RESUME_FROM as usize..];
    assert_eq!(resumed.len(), reference.len());
    for (r, u) in resumed.iter().zip(reference) {
        assert_eq!(r, u, "post-resume window must be bit-identical");
    }

    // And the terminal decisions converge: same windows, cycles,
    // energy, attribution, and drift-alarm counts as never failing.
    assert_eq!(final_k.windows, report_u.windows);
    assert_eq!(final_k.cycles, report_u.cycles);
    assert_eq!(final_k.energy, report_u.energy, "energy bit-exact");
    assert_eq!(final_k.mean_est, report_u.mean_est);
    assert_eq!(final_k.unit_energy, report_u.unit_energy);
    assert_eq!(
        final_k.quant_alarms, report_u.quant_alarms,
        "drift decisions must survive kill/resume"
    );
    assert_eq!(final_k.truth_alarms, report_u.truth_alarms);
    assert_eq!(final_k.final_throttle, report_u.final_throttle);

    let _ = std::fs::remove_dir_all(&dir_u);
    let _ = std::fs::remove_dir_all(&dir_k);
}

#[test]
fn corrupt_checkpoint_falls_back_to_a_fresh_start() {
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));
    let cfg = MonitorConfig {
        cycles: 256,
        window_t: 32,
        ..MonitorConfig::default()
    };
    let dir = scratch_dir("corrupt");
    let policy = CheckpointPolicy::new(&dir, 4);
    let opts = RunOptions {
        pipeline: Some("corrupt-me".into()),
        checkpoint: Some(policy.clone()),
        resume: false,
        panic_at_windows: vec![],
        health: None,
    };
    let stop = AtomicBool::new(false);
    let first = run_monitor_with(
        &ctx,
        &model,
        &benchmarks::dhrystone(),
        &cfg,
        None,
        &stop,
        &opts,
    )
    .unwrap();
    assert!(first.checkpoints >= 1);

    // Flip one byte in the middle of the checkpoint body.
    let file = policy.file("corrupt-me");
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x41;
    std::fs::write(&file, &bytes).unwrap();

    let stop = AtomicBool::new(false);
    let resumed = run_monitor_with(
        &ctx,
        &model,
        &benchmarks::dhrystone(),
        &cfg,
        None,
        &stop,
        &RunOptions {
            resume: true,
            ..opts.clone()
        },
    )
    .unwrap();
    assert_eq!(
        resumed.resumed_from, None,
        "corrupt state must never be resumed from"
    );
    // The fresh run still reaches the same final state.
    assert_eq!(resumed.windows, first.windows);
    assert_eq!(resumed.energy, first.energy);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_battery_never_kills_the_endpoint() {
    let hub = MonitorHub::new(64);
    let stop = Arc::new(AtomicBool::new(false));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&hub),
        Arc::clone(&stop),
        ServerOptions::default(),
    )
    .unwrap();
    let addr = server.addr().to_string();
    for kind in chaos::MalformedKind::ALL {
        // Several rounds of each payload, interleaved with churn.
        for _ in 0..3 {
            let status = chaos::send_malformed(&addr, kind);
            match kind {
                chaos::MalformedKind::OversizedLine | chaos::MalformedKind::GarbageBytes => {
                    let s = status.unwrap_or_default();
                    assert!(s.contains("400"), "{kind:?} must get 400, got {s:?}");
                }
                // ZeroLength gets no response by construction; bare-\n
                // framing is tolerated (lenient parse) — the only
                // contract is a sane response or a clean drop.
                chaos::MalformedKind::ZeroLength | chaos::MalformedKind::MissingCrlf => {}
            }
        }
        chaos::churn_connections(&addr, 4);
        // The endpoint keeps answering well-formed requests.
        let lines = apollo_introspect::http_get_lines(&addr, "/metrics", None).unwrap();
        assert!(!lines.is_empty(), "endpoint dead after {kind:?}");
    }
    server.stop();
}

#[test]
fn chaos_storm_streams_stay_lint_clean_and_decomposed() {
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));
    let base = MonitorConfig {
        cycles: 256,
        window_t: 16,
        ..MonitorConfig::default()
    };
    let plan = ChaosPlan::generate(0xDEAD_BEEF, 4, 8, 10);
    let dir = scratch_dir("storm");
    let mut specs = fleet_specs(4, &base);
    for (i, spec) in specs.iter_mut().enumerate() {
        spec.faults = plan.panics_for(i);
    }
    let sup = SupervisorConfig {
        checkpoint: Some(CheckpointPolicy::new(&dir, 4)),
        ..SupervisorConfig::default()
    };
    let hub = MonitorHub::with_downsample(4096, DownsampleConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&hub),
        Arc::clone(&stop),
        ServerOptions {
            max_conns: 16,
            write_timeout: Duration::from_millis(500),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // A clean subscriber collects the full stream over HTTP.
    let clean = {
        let addr = addr.clone();
        std::thread::spawn(move || apollo_introspect::http_get_lines(&addr, "/events", None))
    };
    // Chaos drivers replay the wire faults from the plan.
    let wire_chaos = {
        let addr = addr.clone();
        let faults = plan.faults.clone();
        std::thread::spawn(move || {
            for f in faults {
                match f {
                    ServiceFault::SubscriberStall { hold_ms } => {
                        let _ = chaos::stall_subscriber(&addr, hold_ms);
                    }
                    ServiceFault::ConnChurn { count } => chaos::churn_connections(&addr, count),
                    ServiceFault::MalformedRequest { kind } => {
                        let _ = chaos::send_malformed(&addr, kind);
                    }
                    ServiceFault::PipelinePanic { .. } => {} // injected in-spec
                }
            }
        })
    };
    std::thread::sleep(Duration::from_millis(100)); // let the clean client attach
    let report = run_supervised(&ctx, &model, &specs, &sup, Some(&hub), &stop);
    wire_chaos.join().unwrap();
    hub.close();
    let lines = clean.join().unwrap().unwrap();
    server.stop();

    for p in &report.pipelines {
        assert_eq!(p.state, PipelineState::Completed, "{p:?}");
    }
    // The clean stream is lint-clean: schema-valid lines, dense seq,
    // known-event bodies, exact attribution decomposition.
    assert!(!lines.is_empty(), "clean subscriber saw the stream");
    for (i, line) in lines.iter().enumerate() {
        let rec = apollo_telemetry::validate_line(line)
            .unwrap_or_else(|e| panic!("line {i} invalid under chaos: {e}"));
        assert_eq!(rec.seq, i as u64, "seq must stay dense under chaos");
        if let RecordBody::Event(ev) = &rec.body {
            apollo_telemetry::validate_known(ev)
                .unwrap_or_else(|e| panic!("line {i} fails known-event lint: {e}"));
            if ev.name == "introspect.window" {
                let raw = ev
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k.as_str(), v) {
                        ("raw", FieldValue::U64(n)) => Some(*n),
                        _ => None,
                    })
                    .expect("window has raw");
                let unit_sum: u64 = ev
                    .fields
                    .iter()
                    .filter(|(k, _)| k.starts_with("unit."))
                    .map(|(_, v)| match v {
                        FieldValue::U64(n) => *n,
                        other => panic!("unit field must be u64: {other:?}"),
                    })
                    .sum();
                assert_eq!(unit_sum, raw, "line {i}: Σ unit == raw under chaos");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
