//! Differential tests for the introspection pipeline's determinism
//! contract:
//!
//! * the [`MonitorReport`] — attribution, drift state, aggregates —
//!   is bit-identical across simulator thread counts 1/2/4/8;
//! * every published `introspect.window` event decomposes exactly:
//!   the per-unit raw fields sum to the OPM raw accumulator;
//! * with no subscribers, the online pipeline is bit-exact with the
//!   offline path: a proxy-only capture of the same cycles pushed
//!   through [`QuantizedOpm::window_outputs_proxy`] and
//!   [`apollo_core::windowed_eval_proxy`].

use apollo_core::{
    train_per_cycle, windowed_eval_proxy, ApolloModel, DesignContext, FeatureSpace, TrainOptions,
};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{run_monitor, MonitorConfig, MonitorHub, Poll};
use apollo_opm::QuantizedOpm;
use apollo_telemetry::{FieldValue, RecordBody};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

const CYCLES: u64 = 256;
const WINDOW_T: usize = 32;

fn trained_model(ctx: &DesignContext) -> ApolloModel {
    let suite = vec![
        (benchmarks::dhrystone(), 200),
        (benchmarks::maxpwr_cpu(), 200),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model
}

fn monitor_cfg(arm: bool) -> MonitorConfig {
    MonitorConfig {
        cycles: CYCLES,
        window_t: WINDOW_T,
        // Arming drives the throttle-override inputs, which the plain
        // offline capture does not — only the thread-differential run
        // exercises it.
        arm: arm.then(apollo_opm::ArmConfig::default),
        ..MonitorConfig::default()
    }
}

/// One published window, decoded from an `introspect.window` body.
#[derive(Debug, PartialEq)]
struct Window {
    out: u64,
    raw: u64,
    est: f64,
    float: f64,
    truth: f64,
    unit_raw_sum: u64,
}

fn decode_windows(sub: &mut apollo_introspect::Subscriber) -> Vec<Window> {
    let mut out = Vec::new();
    loop {
        match sub.poll(Duration::from_millis(200)) {
            Poll::Body(body) => {
                let RecordBody::Event(ev) = body.body else {
                    continue;
                };
                if ev.name != "introspect.window" {
                    continue;
                }
                let u64_of = |key: &str| -> u64 {
                    match ev.fields.iter().find(|(k, _)| k == key) {
                        Some((_, FieldValue::U64(v))) => *v,
                        other => panic!("missing u64 field {key}: {other:?}"),
                    }
                };
                let f64_of = |key: &str| -> f64 {
                    match ev.fields.iter().find(|(k, _)| k == key) {
                        Some((_, FieldValue::F64(v))) => *v,
                        other => panic!("missing f64 field {key}: {other:?}"),
                    }
                };
                let unit_raw_sum = ev
                    .fields
                    .iter()
                    .filter(|(k, _)| k.starts_with("unit."))
                    .map(|(k, v)| match v {
                        FieldValue::U64(v) => *v,
                        other => panic!("unit field {k} must be u64, got {other:?}"),
                    })
                    .sum();
                out.push(Window {
                    out: u64_of("out"),
                    raw: u64_of("raw"),
                    est: f64_of("est_power"),
                    float: f64_of("float_power"),
                    truth: f64_of("true_power"),
                    unit_raw_sum,
                });
            }
            Poll::Closed => break,
            Poll::Timeout => panic!("hub closed before draining"),
        }
    }
    out
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let base = DesignContext::new(&CpuConfig::tiny());
    let model = trained_model(&base);
    let bench = benchmarks::dhrystone();
    let cfg = monitor_cfg(true);

    let mut reports = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let ctx = DesignContext::with_threads(&CpuConfig::tiny(), threads);
        let stop = AtomicBool::new(false);
        let report = run_monitor(&ctx, &model, &bench, &cfg, None, &stop).unwrap();
        assert_eq!(report.cycles, CYCLES);
        assert_eq!(report.windows, CYCLES / WINDOW_T as u64);
        reports.push((threads, report));
    }
    let (_, reference) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report, reference,
            "MonitorReport must be bit-identical at {threads} threads"
        );
    }
}

#[test]
fn published_windows_decompose_exactly_and_match_offline_capture() {
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let model = trained_model(&ctx);
    let bench = benchmarks::dhrystone();
    let cfg = monitor_cfg(false);

    // Online run with one streaming subscriber.
    let hub = MonitorHub::new(1024);
    let (mut sub, _) = hub.subscribe();
    let stop = AtomicBool::new(false);
    let streamed = run_monitor(&ctx, &model, &bench, &cfg, Some(&hub), &stop).unwrap();
    hub.close();
    let windows = decode_windows(&mut sub);
    assert_eq!(windows.len() as u64, streamed.windows);

    // 1. Exact decomposition: per-unit raw fields sum to the total.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(
            w.unit_raw_sum, w.raw,
            "window {i}: unit fields must sum to raw"
        );
        assert_eq!(
            w.out,
            w.raw >> WINDOW_T.trailing_zeros(),
            "window {i} shift-divide"
        );
    }

    // 2. The subscriber must not perturb the pipeline: a second run
    //    with no hub yields the identical report.
    let stop = AtomicBool::new(false);
    let silent = run_monitor(&ctx, &model, &bench, &cfg, None, &stop).unwrap();
    assert_eq!(silent, streamed, "no-subscriber path must be bit-exact");

    // 3. Offline mirror: capture the proxies over the same cycles and
    //    push them through the reference OPM + windowed evaluator.
    let opm = QuantizedOpm::from_model(&model, cfg.bits, cfg.window_t).unwrap();
    let trace = ctx.capture_bits(&bench, &model.bits(), CYCLES as usize, 0);
    let outs = opm.window_outputs_proxy(&trace.toggles);
    let eval = windowed_eval_proxy(&model, &trace, WINDOW_T);
    assert_eq!(outs.len(), windows.len());
    assert_eq!(eval.windows.len(), windows.len());
    let mut energy = 0.0f64;
    let mut sum_est = 0.0f64;
    for ((w, &out), ew) in windows.iter().zip(&outs).zip(&eval.windows) {
        assert_eq!(w.out, out, "window output bit-exact with offline capture");
        let est = opm.intercept + out as f64 / opm.scale;
        assert_eq!(w.est, est, "descaled estimate bit-exact");
        assert_eq!(
            w.float, ew.predicted,
            "float model bit-exact with windowed_eval"
        );
        assert_eq!(
            w.truth, ew.truth,
            "ground truth bit-exact with windowed_eval"
        );
        energy += est * WINDOW_T as f64;
        sum_est += est;
    }
    assert_eq!(streamed.energy, energy, "cumulative energy bit-exact");
    assert_eq!(
        streamed.mean_est,
        sum_est / windows.len() as f64,
        "mean bit-exact"
    );
}
