//! Integration tests for the causal-tracing and fleet-health surface:
//!
//! * the id triple (`trace_id`/`span_id`/`parent_id`) stamped on every
//!   record is bit-identical across simulator thread counts — trace
//!   identity is a pure function of (pipeline, attempt, structure),
//!   never of scheduling;
//! * a supervised fleet under fault injection produces byte-identical
//!   per-pipeline record streams across reruns, including the restart
//!   attempt's fresh trace root;
//! * the Chrome trace export of a traced run is structurally valid:
//!   every `introspect.window` span walks its `parent_id` links back
//!   to an `introspect.pipeline` root;
//! * `/healthz` and `/status` reflect registry state end to end, and
//!   `/status` bodies survive the `Framed` lint round trip.

use apollo_core::{train_per_cycle, ApolloModel, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_introspect::{
    fleet_specs, run_monitor_with, run_supervised, serve_with, HealthRegistry, InjectedPanic,
    MonitorConfig, MonitorHub, PipelineState, RunOptions, ServerOptions, StatusSnapshot,
    SupervisorConfig,
};
use apollo_telemetry::{clear_sink, install_sink, Record, RecordBody, VecSink};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, OnceLock};

const CYCLES: u64 = 256;
const WINDOW_T: usize = 32;

/// The event sink is process-global; tests that install one must not
/// run concurrently with each other.
fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn trained_model(ctx: &DesignContext) -> ApolloModel {
    let suite = vec![
        (benchmarks::dhrystone(), 200),
        (benchmarks::maxpwr_cpu(), 200),
    ];
    let trace = ctx.capture_suite(&suite, 50);
    let fs = FeatureSpace::build(&trace.toggles);
    train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        },
    )
    .model
}

fn monitor_cfg() -> MonitorConfig {
    MonitorConfig {
        cycles: CYCLES,
        window_t: WINDOW_T,
        ..MonitorConfig::default()
    }
}

/// Strips wall-clock data (ids are kept — they are part of the
/// determinism contract) and the global emission seq, which encodes
/// cross-thread interleaving rather than per-pipeline causality.
fn cleaned(records: Vec<Record>) -> Vec<Record> {
    records
        .into_iter()
        .map(|r| {
            let mut r = r.strip_timing();
            r.seq = 0;
            r
        })
        .collect()
}

/// Groups a multi-pipeline capture by trace id, preserving emission
/// order within each trace.
fn by_trace(records: Vec<Record>) -> BTreeMap<u64, Vec<Record>> {
    let mut groups: BTreeMap<u64, Vec<Record>> = BTreeMap::new();
    for r in cleaned(records) {
        groups.entry(r.trace_id).or_default().push(r);
    }
    groups
}

#[test]
fn trace_ids_are_bit_identical_across_thread_counts() {
    let _guard = sink_lock();
    let model = trained_model(&DesignContext::new(&CpuConfig::tiny()));
    let cfg = monitor_cfg();

    let mut streams = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let ctx = DesignContext::with_threads(&CpuConfig::tiny(), threads);
        let sink = Arc::new(VecSink::new());
        install_sink(sink.clone());
        let stop = AtomicBool::new(false);
        let opts = RunOptions {
            pipeline: Some("traced".into()),
            ..RunOptions::default()
        };
        run_monitor_with(
            &ctx,
            &model,
            &benchmarks::dhrystone(),
            &cfg,
            None,
            &stop,
            &opts,
        )
        .unwrap();
        clear_sink();
        streams.push((threads, cleaned(sink.take())));
    }

    let (_, reference) = &streams[0];
    assert!(!reference.is_empty(), "a traced run must emit records");
    let root_trace = reference[0].trace_id;
    assert_ne!(root_trace, 0, "monitor must derive a trace root");
    assert!(
        reference.iter().all(|r| r.trace_id == root_trace),
        "single-pipeline run must stay in one trace"
    );
    assert!(
        reference
            .iter()
            .any(|r| matches!(&r.body, RecordBody::Span { path, .. } if path.ends_with("introspect.window"))),
        "window spans must be emitted"
    );
    for (threads, stream) in &streams[1..] {
        assert_eq!(
            stream, reference,
            "record stream (incl. id triple) must be bit-identical at {threads} threads"
        );
    }
}

#[test]
fn supervised_fleet_traces_are_identical_across_reruns() {
    let _guard = sink_lock();
    let base = monitor_cfg();
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));

    let mut captures = Vec::new();
    for _rerun in 0..2 {
        let mut specs = fleet_specs(3, &base);
        // Fault-inject the middle pipeline: panic once on attempt 0,
        // forcing a backoff + restart whose second attempt must open a
        // fresh (but deterministic) trace root.
        specs[1].faults = vec![InjectedPanic {
            attempt: 0,
            window: 2,
        }];
        let sink = Arc::new(VecSink::new());
        install_sink(sink.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let report = run_supervised(&ctx, &model, &specs, &SupervisorConfig::default(), None, &stop);
        clear_sink();
        for p in &report.pipelines {
            assert_eq!(p.state, PipelineState::Completed, "{p:?}");
        }
        assert_eq!(report.pipelines[1].attempts, 2, "the fault must fire");
        captures.push(by_trace(sink.take()));
    }

    let (a, b) = (&captures[0], &captures[1]);
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "the set of trace roots must be identical across reruns"
    );
    // 3 pipelines + one extra attempt for the faulted one.
    assert_eq!(
        a.keys().filter(|&&t| t != 0).count(),
        4,
        "each (pipeline, attempt) gets its own trace"
    );
    for (trace, stream) in a {
        if *trace == 0 {
            // Supervisor-level records (emitted outside any attempt
            // context) interleave across pipeline threads: compare as
            // a multiset, not a sequence.
            let sorted = |s: &[Record]| {
                let mut v: Vec<String> = s.iter().map(Record::to_jsonl).collect();
                v.sort();
                v
            };
            assert_eq!(sorted(stream), sorted(&b[trace]), "untraced multiset");
        } else {
            assert_eq!(
                stream, &b[trace],
                "per-pipeline stream for trace {trace:#x} must be byte-identical"
            );
        }
    }
}

#[test]
fn chrome_export_links_every_window_to_its_pipeline_root() {
    let _guard = sink_lock();
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let model = Arc::new(trained_model(&ctx));

    let sink = Arc::new(VecSink::new());
    install_sink(sink.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let specs = fleet_specs(2, &monitor_cfg());
    run_supervised(&ctx, &model, &specs, &SupervisorConfig::default(), None, &stop);
    clear_sink();
    let records = sink.take();

    let json = apollo_telemetry::chrome_trace(&records);
    let stats = apollo_telemetry::validate_chrome(&json).expect("export must validate");
    assert!(stats.window_spans >= CYCLES as usize / WINDOW_T);
    assert_eq!(stats.processes, 2, "one trace lane per pipeline");

    let folded = apollo_telemetry::flamegraph_folded(&records);
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("introspect.pipeline;introspect.window ")),
        "flamegraph must contain the pipeline/window stack: {folded}"
    );
}

#[test]
fn health_endpoints_reflect_registry_state() {
    // The /status handler emits telemetry events: hold the sink lock
    // so those never leak into a concurrent capture test's VecSink.
    let _guard = sink_lock();
    let health = Arc::new(HealthRegistry::new());
    let hub = Arc::new(MonitorHub::new(64));
    let stop = Arc::new(AtomicBool::new(false));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&hub),
        Arc::clone(&stop),
        ServerOptions {
            health: Some(Arc::clone(&health)),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Healthy fleet: both endpoints answer 200 and /status lints.
    health.report_state("p0", "starting", 0, 0);
    health.report_window("p0", 4, 1, 0, false, 0);
    let ok = apollo_introspect::http_get_lines(&addr, "/healthz", None).unwrap();
    assert_eq!(ok, vec!["ok".to_owned()]);
    let status = apollo_introspect::http_get_lines(&addr, "/status", None).unwrap();
    assert_eq!(status.len(), 1, "one JSONL snapshot: {status:?}");
    let snap = StatusSnapshot::validate_line(&status[0]).expect("snapshot must lint");
    assert!(snap.healthy);
    assert_eq!(snap.pipelines.len(), 1);
    assert_eq!(snap.pipelines[0].state, "running");
    assert_eq!(snap.pipelines[0].windows, 4);

    // Snapshot seqs are dense across scrapes.
    let again = apollo_introspect::http_get_lines(&addr, "/status", None).unwrap();
    let snap2 = StatusSnapshot::validate_line(&again[0]).unwrap();
    assert_eq!(snap2.seq, snap.seq + 1, "status seq must be dense");

    // Degraded fleet: both endpoints flip to 503 (surfaced by
    // http_get_lines as InvalidData — the same signal `apollo scrape`
    // turns into a nonzero exit).
    health.report_state("p0", "degraded", 3, 0);
    let err = apollo_introspect::http_get_lines(&addr, "/healthz", None).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("503"), "{err}");
    let err = apollo_introspect::http_get_lines(&addr, "/status", None).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    server.stop();
}

#[test]
fn status_lines_pass_the_generic_framed_lint() {
    let health = HealthRegistry::new();
    health.report_state("a", "starting", 0, 0);
    health.report_window("a", 2, 0, 0, false, 0);
    health.report_state("b", "backoff", 1, 2);
    let mut seqs = apollo_telemetry::SeqCheck::new();
    for _ in 0..3 {
        let line = health.snapshot(Vec::new()).to_jsonl();
        let snap = apollo_telemetry::validate_framed::<StatusSnapshot>(&line)
            .expect("every snapshot line must pass the generic lint");
        seqs.check(snap.seq).expect("snapshot seqs must be dense");
        assert_eq!(snap.pipelines.len(), 2);
    }
}
