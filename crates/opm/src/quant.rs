//! Fixed-point quantization of APOLLO models and the bit-exact software
//! reference OPM.

use apollo_core::{ApolloError, ApolloModel};
use apollo_sim::ToggleMatrix;

/// OPM configuration: number of proxies, weight bit-width and the
/// measurement-window size.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OpmSpec {
    /// Number of monitored proxies `Q`.
    pub q: usize,
    /// Weight bit-width `B`.
    pub b: u8,
    /// Measurement window `T` (power of two; 1 = per-cycle output).
    pub t: usize,
}

impl OpmSpec {
    /// Validates the specification.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] if `q` or `t` is zero, `t` is not a
    /// power of two, or `b` is outside `2..=16`.
    pub fn validate(&self) -> Result<(), ApolloError> {
        if self.q < 1 {
            return Err(ApolloError::spec("OPM needs at least one proxy (Q >= 1)"));
        }
        if self.t < 1 || !self.t.is_power_of_two() {
            return Err(ApolloError::spec(format!(
                "window T = {} must be a power of two",
                self.t
            )));
        }
        if !(2..=16).contains(&self.b) {
            return Err(ApolloError::spec(format!(
                "weight width B = {} out of range 2..=16",
                self.b
            )));
        }
        Ok(())
    }

    /// Accumulator bit-width: `B + ⌈log₂Q⌉ + ⌈log₂T⌉` (paper §6).
    pub fn accumulator_bits(&self) -> u8 {
        self.b + ceil_log2(self.q) + ceil_log2(self.t)
    }

    /// Adder-tree output width: `B + ⌈log₂Q⌉`.
    pub fn sum_bits(&self) -> u8 {
        self.b + ceil_log2(self.q)
    }
}

/// `⌈log₂(x)⌉` for positive x, as u8.
pub(crate) fn ceil_log2(x: usize) -> u8 {
    let mut bits = 0u8;
    let mut v = 1usize;
    while v < x {
        v <<= 1;
        bits += 1;
    }
    bits
}

/// A quantized APOLLO model ready for hardware implementation.
///
/// Weights are unsigned `B`-bit integers (the float model is trained
/// non-negative); the intercept is folded in digitally after the
/// accumulator, as the paper's OPM reports current *demand* relative to
/// the idle baseline.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantizedOpm {
    /// The specification.
    pub spec: OpmSpec,
    /// Proxy signal bits (flat indices into the host design).
    pub bits: Vec<usize>,
    /// Which proxies are gated clocks (latched enables, no toggle
    /// detector).
    pub is_clock_gate: Vec<bool>,
    /// Quantized weights, one per proxy, each `< 2^B`.
    pub weights: Vec<u32>,
    /// Scale factor: `power ≈ intercept + raw_sum / scale`.
    pub scale: f64,
    /// Float intercept added after de-scaling.
    pub intercept: f64,
}

impl QuantizedOpm {
    /// Quantizes a trained model to `b`-bit weights with window `t`.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] if the derived specification is
    /// invalid (e.g. the model is empty) and [`ApolloError::Quantization`]
    /// if a weight is negative, non-finite, or does not fit in the
    /// hardware's `u32` weight ROM after scaling.
    pub fn from_model(model: &ApolloModel, b: u8, t: usize) -> Result<QuantizedOpm, ApolloError> {
        let spec = OpmSpec { q: model.q(), b, t };
        spec.validate()?;
        let mut max_w = 0.0f64;
        for p in &model.proxies {
            if !p.weight.is_finite() || p.weight < 0.0 {
                return Err(ApolloError::quantization(format!(
                    "proxy `{}` has weight {} — unsigned quantization needs finite, \
                     non-negative weights",
                    p.name, p.weight
                )));
            }
            max_w = max_w.max(p.weight);
        }
        let levels = ((1u64 << b) - 1) as f64;
        let scale = if max_w > 0.0 { levels / max_w } else { 1.0 };
        let weights = model
            .proxies
            .iter()
            .map(|p| {
                let q = (p.weight * scale).round();
                if !(0.0..=u32::MAX as f64).contains(&q) {
                    return Err(ApolloError::quantization(format!(
                        "scaled weight {q} for proxy `{}` does not fit in u32",
                        p.name
                    )));
                }
                Ok(q as u32)
            })
            .collect::<Result<Vec<u32>, ApolloError>>()?;
        Ok(QuantizedOpm {
            spec,
            bits: model.bits(),
            is_clock_gate: model.proxies.iter().map(|p| p.is_clock_gate).collect(),
            weights,
            scale,
            intercept: model.intercept,
        })
    }

    fn raw_sums_with(&self, matrix: &ToggleMatrix, col_of: impl Fn(usize) -> usize) -> Vec<u64> {
        let mut out = vec![0u64; matrix.n_cycles()];
        for k in 0..self.bits.len() {
            let w = self.weights[k] as u64;
            if w == 0 {
                continue;
            }
            for (wi, &word) in matrix.column(col_of(k)).iter().enumerate() {
                let mut bits = word;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out[base + b] += w;
                }
            }
        }
        out
    }

    /// Integer per-cycle weighted sums (adder-tree values) from a
    /// *full-design* toggle matrix (columns indexed by flat signal bit).
    pub fn raw_sums(&self, matrix: &ToggleMatrix) -> Vec<u64> {
        self.raw_sums_with(matrix, |k| self.bits[k])
    }

    /// Integer per-cycle weighted sums from a *proxy-only* capture whose
    /// column `k` is proxy `k` (model order), as produced by capturing
    /// with [`ApolloModel::bits`](apollo_core::ApolloModel::bits).
    pub fn raw_sums_proxy(&self, matrix: &ToggleMatrix) -> Vec<u64> {
        assert_eq!(
            matrix.m_bits(),
            self.bits.len(),
            "column count must equal Q"
        );
        self.raw_sums_with(matrix, |k| k)
    }

    fn windows_of(&self, sums: Vec<u64>) -> Vec<u64> {
        let t = self.spec.t;
        let shift = ceil_log2(t);
        sums.chunks_exact(t)
            .map(|w| w.iter().sum::<u64>() >> shift)
            .collect()
    }

    /// The hardware's per-window integer outputs from a full-design
    /// matrix: accumulate `T` raw sums, then drop the low `log₂T` bits
    /// (the paper's shift-divide).
    pub fn window_outputs(&self, matrix: &ToggleMatrix) -> Vec<u64> {
        self.windows_of(self.raw_sums(matrix))
    }

    /// Per-window integer outputs from a proxy-only capture.
    pub fn window_outputs_proxy(&self, matrix: &ToggleMatrix) -> Vec<u64> {
        self.windows_of(self.raw_sums_proxy(matrix))
    }

    /// De-scaled power estimate per window (software units).
    pub fn predict_windows(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        self.window_outputs(matrix)
            .iter()
            .map(|&v| self.intercept + v as f64 / self.scale)
            .collect()
    }

    /// De-scaled per-cycle power estimate (for `T = 1` style use) from a
    /// full-design matrix.
    pub fn predict_cycles(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        self.raw_sums(matrix)
            .iter()
            .map(|&v| self.intercept + v as f64 / self.scale)
            .collect()
    }

    /// De-scaled per-cycle power estimate from a proxy-only capture.
    pub fn predict_cycles_proxy(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        self.raw_sums_proxy(matrix)
            .iter()
            .map(|&v| self.intercept + v as f64 / self.scale)
            .collect()
    }

    /// Worst-case absolute quantization error of a single weight, in
    /// power units.
    pub fn weight_quant_error(&self) -> f64 {
        0.5 / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{ApolloModel, Proxy, SelectionPenalty};
    use apollo_rtl::Unit;

    fn fake_model(weights: &[f64]) -> ApolloModel {
        ApolloModel {
            design_name: "t".into(),
            proxies: weights
                .iter()
                .enumerate()
                .map(|(i, &w)| Proxy {
                    bit: i,
                    weight: w,
                    name: format!("s{i}"),
                    unit: Unit::Alu,
                    is_clock_gate: false,
                })
                .collect(),
            intercept: 10.0,
            selection_lambda: 1.0,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            candidates: 100,
            m_bits: 1000,
        }
    }

    #[test]
    fn spec_widths() {
        let spec = OpmSpec {
            q: 159,
            b: 10,
            t: 64,
        };
        spec.validate().unwrap();
        assert_eq!(spec.sum_bits(), 10 + 8);
        assert_eq!(spec.accumulator_bits(), 10 + 8 + 6);
    }

    #[test]
    fn quantization_scales_to_full_range() {
        let model = fake_model(&[1.0, 2.0, 4.0]);
        let q = QuantizedOpm::from_model(&model, 8, 1).unwrap();
        assert_eq!(q.weights[2], 255);
        assert_eq!(q.weights[1], 128);
        assert_eq!(q.weights[0], 64);
        assert!((q.intercept - 10.0).abs() < 1e-12);
    }

    #[test]
    fn windows_accumulate_and_shift() {
        let model = fake_model(&[3.0]);
        let q = QuantizedOpm::from_model(&model, 4, 4).unwrap();
        // Proxy toggles in cycles 0, 1, 2 of a 4-cycle window.
        let mut m = ToggleMatrix::new(1, 8);
        m.set(0, 0);
        m.set(0, 1);
        m.set(0, 2);
        let w15 = q.weights[0] as u64; // 15 at 4 bits
        let outs = q.window_outputs(&m);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], (3 * w15) >> 2);
        assert_eq!(outs[1], 0);
    }

    #[test]
    fn high_b_matches_float_model_closely() {
        let model = fake_model(&[0.5, 1.5, 2.5, 3.5]);
        let q = QuantizedOpm::from_model(&model, 12, 1).unwrap();
        let mut m = ToggleMatrix::new(4, 16);
        for c in 0..16 {
            for bit in 0..4 {
                if (c * (bit + 2)) % 3 == 0 {
                    m.set(bit, c);
                }
            }
        }
        let approx = q.predict_cycles(&m);
        // Float reference.
        for (c, a) in approx.iter().enumerate() {
            let mut exact = 10.0;
            for bit in 0..4 {
                if m.get(bit, c) {
                    exact += model.proxies[bit].weight;
                }
            }
            assert!((a - exact).abs() < 0.01, "cycle {c}: {a} vs {exact}");
        }
    }

    #[test]
    fn bad_t_rejected() {
        let err = OpmSpec { q: 4, b: 8, t: 3 }.validate().unwrap_err();
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn negative_weight_rejected() {
        let model = fake_model(&[1.0, -0.25]);
        let err = QuantizedOpm::from_model(&model, 8, 1).unwrap_err();
        assert!(
            matches!(err, ApolloError::Quantization { .. }),
            "wrong variant: {err:?}"
        );
    }

    #[test]
    fn empty_model_rejected() {
        let model = fake_model(&[]);
        let err = QuantizedOpm::from_model(&model, 8, 1).unwrap_err();
        assert!(
            matches!(err, ApolloError::Spec { .. }),
            "wrong variant: {err:?}"
        );
    }
}
