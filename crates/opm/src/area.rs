//! Gate-area and power-overhead estimation (paper §7.5, Figure 15b,
//! Table 1).
//!
//! Both the OPM and its host CPU are reduced to NAND2-gate-equivalents
//! (GE) with per-operator costs typical of standard-cell mappings, so
//! the reported overhead is a ratio of consistent quantities. The OPM's
//! *power* overhead is measured by actually simulating the generated
//! OPM netlist with the same power engine as the CPU, plus the paper's
//! input-routing buffer surcharge.

use crate::hardware::OpmHardware;
use apollo_rtl::{Netlist, Op};

/// Gate-equivalent cost per bit of each operator (NAND2 = 1.0).
fn ge_per_bit(op: &Op) -> f64 {
    match op {
        Op::Input | Op::Const(_) => 0.0,
        Op::Not(_) => 0.6,
        Op::And(..) | Op::Or(..) => 1.0,
        Op::Xor(..) => 2.2,
        Op::Add(..) | Op::Sub(..) => 5.5, // full adder per bit
        Op::Mul(..) => 28.0,              // array multiplier per output bit
        Op::Udiv(..) => 40.0,
        Op::Eq(..) | Op::Ult(..) => 3.0,
        Op::Shl(..) | Op::Shr(..) => 6.0, // barrel shifter stage cost
        Op::Mux { .. } => 2.0,
        Op::Slice { .. } | Op::Concat { .. } => 0.0, // wiring only
        Op::ReduceOr(_) | Op::ReduceAnd(_) | Op::ReduceXor(_) => 1.2,
        Op::Reg { .. } => 4.5,        // DFF
        Op::GatedClock { .. } => 2.5, // ICG cell
        Op::MemRead { .. } => 0.5,    // port mux share
    }
}

/// For comparison-like ops, the *input* width drives the cost.
fn effective_bits(netlist: &Netlist, idx: usize) -> f64 {
    let node = &netlist.nodes()[idx];
    match node.op {
        Op::Eq(a, _) | Op::Ult(a, _) => netlist.node(a).width as f64,
        Op::ReduceOr(a) | Op::ReduceAnd(a) | Op::ReduceXor(a) => netlist.node(a).width as f64,
        _ => node.width as f64,
    }
}

/// Total gate-equivalents of a netlist, including SRAM macros at a
/// bit-cell rate typical of compiled memories.
pub fn gate_area(netlist: &Netlist) -> f64 {
    let logic: f64 = (0..netlist.len())
        .map(|i| ge_per_bit(&netlist.nodes()[i].op) * effective_bits(netlist, i))
        .sum();
    let macros: f64 = netlist
        .memories()
        .iter()
        .map(|m| m.words as f64 * m.width as f64 * 0.35)
        .sum();
    logic + macros
}

/// Gate-equivalents of a host CPU netlist.
pub fn cpu_gate_area(netlist: &Netlist) -> f64 {
    gate_area(netlist)
}

/// Gate-equivalents of an OPM, including the input-routing buffers the
/// paper budgets for driving proxies to the centralized meter
/// (one buffer pair per proxy, weighted by an average route length).
pub fn opm_gate_area(hw: &OpmHardware) -> f64 {
    let logic = gate_area(&hw.netlist);
    let routing_buffers = hw.inputs.len() as f64 * 3.0;
    logic + routing_buffers
}

/// Combined area/power overhead report for an OPM on a host design.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct AreaReport {
    /// Proxy count.
    pub q: usize,
    /// Weight bit-width.
    pub b: u8,
    /// OPM gate-equivalents (with routing buffers).
    pub opm_ge: f64,
    /// Host CPU gate-equivalents.
    pub cpu_ge: f64,
    /// Area overhead fraction (`opm_ge / cpu_ge`).
    pub area_overhead: f64,
    /// OPM mean power in engine units (if measured).
    pub opm_power: Option<f64>,
    /// Host mean power over the same workload (if measured).
    pub cpu_power: Option<f64>,
    /// Power overhead fraction including the paper's 0.4%-class routing
    /// buffer surcharge (if measured).
    pub power_overhead: Option<f64>,
}

impl AreaReport {
    /// Builds a report from areas alone.
    pub fn from_areas(hw: &OpmHardware, cpu: &Netlist) -> AreaReport {
        let opm_ge = opm_gate_area(hw);
        let cpu_ge = cpu_gate_area(cpu);
        AreaReport {
            q: hw.inputs.len(),
            b: hw.model.spec.b,
            opm_ge,
            cpu_ge,
            area_overhead: opm_ge / cpu_ge,
            opm_power: None,
            cpu_power: None,
            power_overhead: None,
        }
    }

    /// Adds measured power numbers. `buffer_factor` models the
    /// high-strength buffers that drive proxies across the floorplan
    /// (the paper attributes 0.4% of CPU power to them; expressed here
    /// as a fraction of OPM power added on top).
    pub fn with_power(
        mut self,
        opm_power: f64,
        cpu_power: f64,
        buffer_overhead_of_cpu: f64,
    ) -> Self {
        self.opm_power = Some(opm_power);
        self.cpu_power = Some(cpu_power);
        self.power_overhead = Some(opm_power / cpu_power + buffer_overhead_of_cpu);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::build_opm;
    use crate::quant::{OpmSpec, QuantizedOpm};

    fn opm(q: usize, b: u8) -> OpmHardware {
        let model = QuantizedOpm {
            spec: OpmSpec { q, b, t: 8 },
            bits: (0..q).collect(),
            is_clock_gate: vec![false; q],
            weights: (0..q).map(|k| (k % (1 << b)) as u32).collect(),
            scale: 1.0,
            intercept: 0.0,
        };
        build_opm(&model).unwrap()
    }

    #[test]
    fn area_grows_with_q_and_b() {
        let a_small = opm_gate_area(&opm(32, 8));
        let a_more_q = opm_gate_area(&opm(128, 8));
        let a_more_b = opm_gate_area(&opm(32, 12));
        assert!(a_more_q > 2.0 * a_small);
        assert!(a_more_b > a_small);
    }

    #[test]
    fn overhead_is_sub_percent_on_real_cpu() {
        use apollo_cpu::{build_cpu, CpuConfig};
        let cpu = build_cpu(&CpuConfig::neoverse_like()).unwrap();
        let hw = opm(159, 10);
        let report = AreaReport::from_areas(&hw, &cpu.netlist);
        // Our host CPU is two orders of magnitude smaller than a real
        // Neoverse N1, so the same OPM is a proportionally larger
        // fraction; the shape claim is "small versus the host and
        // dominated by the adder tree".
        assert!(
            report.area_overhead < 0.1,
            "area overhead {:.4}",
            report.area_overhead
        );
        assert!(report.area_overhead > 0.0001);
    }

    #[test]
    fn power_report_math() {
        let cpu = apollo_cpu::build_cpu(&apollo_cpu::CpuConfig::tiny()).unwrap();
        let hw = opm(16, 8);
        let report = AreaReport::from_areas(&hw, &cpu.netlist).with_power(5.0, 1000.0, 0.004);
        assert!((report.power_overhead.unwrap() - 0.009).abs() < 1e-12);
    }
}
