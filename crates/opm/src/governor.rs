//! A closed-loop power-cap governor driven by the OPM.
//!
//! The paper's introduction motivates runtime power introspection with
//! DVFS-style management orchestrated from power telemetry. This module
//! closes that loop in simulation: every `T`-cycle OPM window the
//! governor compares the meter's reading against a power cap and steps
//! the core's issue-throttle level up or down (the same duty-cycling
//! actuator the `throttling_{1,2,3}` benchmarks exercise).
//!
//! The governor reads *only* what the hardware OPM would expose — the
//! quantized weighted toggle sums of the proxy set — never the
//! ground-truth power.

use crate::quant::QuantizedOpm;
use apollo_cpu::{CpuHandles, CpuSim, Inst};
use apollo_rtl::{CapAnnotation, NodeId};
use apollo_sim::PowerConfig;

/// Governor configuration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GovernorConfig {
    /// Epoch length in cycles (the OPM's `T`).
    pub epoch: usize,
    /// Power cap in model units.
    pub cap: f64,
    /// Hysteresis: un-throttle when the reading drops below
    /// `cap * low_watermark`.
    pub low_watermark: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            epoch: 32,
            cap: 0.0,
            low_watermark: 0.85,
        }
    }
}

/// Result of a governed run.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GovernorReport {
    /// Cycles simulated.
    pub cycles: usize,
    /// Mean true power with the governor active.
    pub mean_power_governed: f64,
    /// Mean true power of the same workload without the governor.
    pub mean_power_free: f64,
    /// Instructions retired with the governor.
    pub retired_governed: u64,
    /// Instructions retired without the governor.
    pub retired_free: u64,
    /// Fraction of epochs whose *true* average power exceeded the cap
    /// while governed.
    pub epochs_over_cap: f64,
    /// Same fraction without the governor.
    pub epochs_over_cap_free: f64,
    /// Throttle level per epoch (the governor's trajectory).
    pub throttle_trace: Vec<u8>,
}

/// Per-cycle OPM reading accumulated in software exactly as the
/// hardware accumulates it: weighted toggles of the proxy bits.
struct OpmShadow<'a> {
    opm: &'a QuantizedOpm,
    /// (node index, bit-within-node, weight) per proxy.
    taps: Vec<(NodeId, u8, u64)>,
}

impl<'a> OpmShadow<'a> {
    fn new(opm: &'a QuantizedOpm, netlist: &apollo_rtl::Netlist) -> Self {
        let taps = opm
            .bits
            .iter()
            .zip(&opm.weights)
            .map(|(&bit, &w)| {
                let (node, sub) = netlist.bit_owner(bit);
                (node, sub, w as u64)
            })
            .collect();
        OpmShadow { opm, taps }
    }

    fn sample(&self, sim: &apollo_sim::Simulator<'_>) -> u64 {
        let mut sum = 0u64;
        for &(node, sub, w) in &self.taps {
            if (sim.toggle_word(node) >> sub) & 1 == 1 {
                sum += w;
            }
        }
        sum
    }

    fn descale(&self, raw_mean: f64) -> f64 {
        self.opm.intercept + raw_mean / self.opm.scale
    }
}

/// Runs `program` for `cycles` cycles twice — free-running and governed
/// — and reports the cap compliance and performance cost.
///
/// # Panics
/// Panics if `cycles` is not a multiple of the epoch length.
pub fn run_governed(
    handles: &CpuHandles,
    cap_annotation: &CapAnnotation,
    opm: &QuantizedOpm,
    program: &[Inst],
    data: &[u64],
    cycles: usize,
    config: &GovernorConfig,
) -> GovernorReport {
    assert!(config.epoch >= 4, "epoch too short");
    assert_eq!(cycles % config.epoch, 0, "cycles must be a multiple of the epoch");
    let shadow = OpmShadow::new(opm, &handles.netlist);

    // Free-running reference.
    let mut free = CpuSim::new(handles, cap_annotation, PowerConfig::default(), program, data);
    let mut free_epoch_power = Vec::with_capacity(cycles / config.epoch);
    let mut free_total = 0.0;
    let mut acc = 0.0;
    for c in 0..cycles {
        free.step();
        let p = free.sim().power().total;
        free_total += p;
        acc += p;
        if (c + 1) % config.epoch == 0 {
            free_epoch_power.push(acc / config.epoch as f64);
            acc = 0.0;
        }
    }
    let retired_free = free.retired();

    // Governed run.
    let mut gov = CpuSim::new(handles, cap_annotation, PowerConfig::default(), program, data);
    gov.sim_mut().set_input(handles.throttle_override_en, 1);
    gov.sim_mut().set_input(handles.throttle_override, 0);
    let mut level = 0u8;
    let mut throttle_trace = Vec::with_capacity(cycles / config.epoch);
    let mut gov_epoch_power = Vec::with_capacity(cycles / config.epoch);
    let mut gov_total = 0.0;
    let mut true_acc = 0.0;
    let mut raw_acc = 0u64;
    for c in 0..cycles {
        gov.step();
        let p = gov.sim().power().total;
        gov_total += p;
        true_acc += p;
        raw_acc += shadow.sample(gov.sim());
        if (c + 1) % config.epoch == 0 {
            let reading = shadow.descale(raw_acc as f64 / config.epoch as f64);
            // Bang-bang with hysteresis on the *meter* reading.
            if reading > config.cap && level < 3 {
                level += 1;
            } else if reading < config.cap * config.low_watermark && level > 0 {
                level -= 1;
            }
            gov.sim_mut().set_input(handles.throttle_override, level as u64);
            throttle_trace.push(level);
            gov_epoch_power.push(true_acc / config.epoch as f64);
            true_acc = 0.0;
            raw_acc = 0;
        }
    }
    let retired_governed = gov.retired();

    let over = |epochs: &[f64]| {
        epochs.iter().filter(|&&p| p > config.cap).count() as f64 / epochs.len().max(1) as f64
    };
    GovernorReport {
        cycles,
        mean_power_governed: gov_total / cycles as f64,
        mean_power_free: free_total / cycles as f64,
        retired_governed,
        retired_free,
        epochs_over_cap: over(&gov_epoch_power),
        epochs_over_cap_free: over(&free_epoch_power),
        throttle_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
    use apollo_cpu::{benchmarks, CpuConfig};

    #[test]
    fn governor_brings_power_under_cap_at_a_performance_cost() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        // Train a small model on hot workloads.
        let suite = vec![
            (benchmarks::maxpwr_cpu(), 400),
            (benchmarks::saxpy_simd(), 400),
            (benchmarks::dhrystone(), 300),
        ];
        let trace = ctx.capture_suite(&suite, 150);
        let fs = FeatureSpace::build(&trace.toggles);
        let model = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions { q_target: 20, ..TrainOptions::default() },
        )
        .model;
        let opm = QuantizedOpm::from_model(&model, 10, 32);

        // Cap well below the virus's free-running power.
        let bench = benchmarks::maxpwr_cpu();
        let free_power = ctx.mean_power(&bench.program, &bench.data, 100, 400);
        let cap = free_power * 0.75;
        let report = run_governed(
            &ctx.handles,
            &ctx.cap,
            &opm,
            &bench.program,
            &bench.data,
            1024,
            &GovernorConfig { epoch: 32, cap, ..GovernorConfig::default() },
        );
        assert!(
            report.mean_power_governed < report.mean_power_free,
            "{report:?}"
        );
        assert!(
            report.epochs_over_cap < report.epochs_over_cap_free,
            "cap compliance should improve: {report:?}"
        );
        assert!(
            report.retired_governed <= report.retired_free,
            "throttling cannot speed the core up"
        );
        assert!(report.throttle_trace.iter().any(|&l| l > 0), "governor engaged");
    }
}
