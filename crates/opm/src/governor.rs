//! A closed-loop power-cap governor driven by the OPM.
//!
//! The paper's introduction motivates runtime power introspection with
//! DVFS-style management orchestrated from power telemetry. This module
//! closes that loop in simulation: every `T`-cycle OPM window the
//! governor compares the meter's reading against a power cap and steps
//! the core's issue-throttle level up or down (the same duty-cycling
//! actuator the `throttling_{1,2,3}` benchmarks exercise).
//!
//! The governor reads *only* what the hardware OPM would expose — the
//! quantized weighted toggle sums of the proxy set — never the
//! ground-truth power.

use crate::attribution::ProxyTaps;
use crate::quant::QuantizedOpm;
use crate::resilience::{HardenedMeter, HardenedOpm, MeterFaultPlan, MeterFaultReport};
use apollo_core::ApolloError;
use apollo_cpu::{CpuHandles, CpuSim, Inst};
use apollo_rtl::CapAnnotation;
use apollo_sim::{FaultPlan, FaultReport, PowerConfig};

/// Emits a typed `governor.throttle` transition event (no-op without a
/// sink). Governed runs are serial, so emission order is the epoch
/// order and deterministic.
fn emit_throttle_event(epoch: u64, from: u8, to: u8, reading: f64) {
    apollo_telemetry::emit_event(
        "governor.throttle",
        &[
            ("epoch", apollo_telemetry::FieldValue::from(epoch)),
            ("from", apollo_telemetry::FieldValue::from(from)),
            ("to", apollo_telemetry::FieldValue::from(to)),
            ("reading", apollo_telemetry::FieldValue::from(reading)),
        ],
    );
    apollo_telemetry::counter("governor.throttle_changes").inc();
}

/// Governor configuration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GovernorConfig {
    /// Epoch length in cycles (the OPM's `T`).
    pub epoch: usize,
    /// Power cap in model units.
    pub cap: f64,
    /// Hysteresis: un-throttle when the reading drops below
    /// `cap * low_watermark`.
    pub low_watermark: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            epoch: 32,
            cap: 0.0,
            low_watermark: 0.85,
        }
    }
}

/// Result of a governed run.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GovernorReport {
    /// Cycles simulated.
    pub cycles: usize,
    /// Mean true power with the governor active.
    pub mean_power_governed: f64,
    /// Mean true power of the same workload without the governor.
    pub mean_power_free: f64,
    /// Instructions retired with the governor.
    pub retired_governed: u64,
    /// Instructions retired without the governor.
    pub retired_free: u64,
    /// Fraction of epochs whose *true* average power exceeded the cap
    /// while governed.
    pub epochs_over_cap: f64,
    /// Same fraction without the governor.
    pub epochs_over_cap_free: f64,
    /// Throttle level per epoch (the governor's trajectory).
    pub throttle_trace: Vec<u8>,
}

/// Per-cycle OPM reading accumulated in software exactly as the
/// hardware accumulates it: weighted toggles of the proxy bits.
struct OpmShadow<'a> {
    opm: &'a QuantizedOpm,
    taps: ProxyTaps,
}

impl<'a> OpmShadow<'a> {
    fn new(opm: &'a QuantizedOpm, netlist: &apollo_rtl::Netlist) -> Self {
        OpmShadow {
            opm,
            taps: ProxyTaps::new(netlist, &opm.bits),
        }
    }

    fn sample(&self, sim: &apollo_sim::Simulator<'_>) -> u64 {
        let mut sum = 0u64;
        for (k, &w) in self.opm.weights.iter().enumerate() {
            if w != 0 && self.taps.toggled(sim, k) {
                sum += w as u64;
            }
        }
        sum
    }

    fn descale(&self, raw_mean: f64) -> f64 {
        self.opm.intercept + raw_mean / self.opm.scale
    }
}

/// Runs `program` for `cycles` cycles twice — free-running and governed
/// — and reports the cap compliance and performance cost.
///
/// # Panics
/// Panics if `cycles` is not a multiple of the epoch length.
pub fn run_governed(
    handles: &CpuHandles,
    cap_annotation: &CapAnnotation,
    opm: &QuantizedOpm,
    program: &[Inst],
    data: &[u64],
    cycles: usize,
    config: &GovernorConfig,
) -> GovernorReport {
    assert!(config.epoch >= 4, "epoch too short");
    assert_eq!(
        cycles % config.epoch,
        0,
        "cycles must be a multiple of the epoch"
    );
    let shadow = OpmShadow::new(opm, &handles.netlist);

    // Free-running reference.
    let mut free = CpuSim::new(
        handles,
        cap_annotation,
        PowerConfig::default(),
        program,
        data,
    );
    let mut free_epoch_power = Vec::with_capacity(cycles / config.epoch);
    let mut free_total = 0.0;
    let mut acc = 0.0;
    for c in 0..cycles {
        free.step();
        let p = free.sim().power().total;
        free_total += p;
        acc += p;
        if (c + 1) % config.epoch == 0 {
            free_epoch_power.push(acc / config.epoch as f64);
            acc = 0.0;
        }
    }
    let retired_free = free.retired();

    // Governed run.
    let mut gov = CpuSim::new(
        handles,
        cap_annotation,
        PowerConfig::default(),
        program,
        data,
    );
    gov.sim_mut().set_input(handles.throttle_override_en, 1);
    gov.sim_mut().set_input(handles.throttle_override, 0);
    let mut level = 0u8;
    let mut throttle_trace = Vec::with_capacity(cycles / config.epoch);
    let mut gov_epoch_power = Vec::with_capacity(cycles / config.epoch);
    let mut gov_total = 0.0;
    let mut true_acc = 0.0;
    let mut raw_acc = 0u64;
    for c in 0..cycles {
        gov.step();
        let p = gov.sim().power().total;
        gov_total += p;
        true_acc += p;
        raw_acc += shadow.sample(gov.sim());
        if (c + 1) % config.epoch == 0 {
            let reading = shadow.descale(raw_acc as f64 / config.epoch as f64);
            // Bang-bang with hysteresis on the *meter* reading.
            let prev_level = level;
            if reading > config.cap && level < 3 {
                level += 1;
            } else if reading < config.cap * config.low_watermark && level > 0 {
                level -= 1;
            }
            if level != prev_level {
                emit_throttle_event(throttle_trace.len() as u64, prev_level, level, reading);
            }
            gov.sim_mut()
                .set_input(handles.throttle_override, level as u64);
            throttle_trace.push(level);
            gov_epoch_power.push(true_acc / config.epoch as f64);
            true_acc = 0.0;
            raw_acc = 0;
        }
    }
    apollo_telemetry::counter("governor.epochs").add(throttle_trace.len() as u64);
    let retired_governed = gov.retired();

    let over = |epochs: &[f64]| {
        epochs.iter().filter(|&&p| p > config.cap).count() as f64 / epochs.len().max(1) as f64
    };
    GovernorReport {
        cycles,
        mean_power_governed: gov_total / cycles as f64,
        mean_power_free: free_total / cycles as f64,
        retired_governed,
        retired_free,
        epochs_over_cap: over(&gov_epoch_power),
        epochs_over_cap_free: over(&free_epoch_power),
        throttle_trace,
    }
}

/// Configuration of the fail-safe governor.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResilientGovernorConfig {
    /// The underlying bang-bang governor settings (epoch, cap,
    /// hysteresis watermark).
    pub base: GovernorConfig,
    /// Throttle floor while the meter is distrusted (fail-safe mode).
    pub conservative_level: u8,
    /// Consecutive trusted epochs required before leaving fail-safe
    /// mode (hysteresis on recovery).
    pub recovery_epochs: usize,
    /// A reading repeated this many consecutive epochs is treated as a
    /// stuck meter and distrusted.
    pub stuck_epochs: usize,
}

impl Default for ResilientGovernorConfig {
    fn default() -> Self {
        ResilientGovernorConfig {
            base: GovernorConfig::default(),
            conservative_level: 3,
            recovery_epochs: 3,
            stuck_epochs: 8,
        }
    }
}

/// Result of a fail-safe governed run: the base report plus everything
/// the fault layers injected and how the governor responded.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ResilientGovernorReport {
    /// The base governed-vs-free comparison.
    pub base: GovernorReport,
    /// Epoch indices whose reading was distrusted (flagged implausible,
    /// all lanes dropped, or stuck).
    pub flagged_epochs: Vec<u64>,
    /// Epochs spent in fail-safe mode (throttle held at or above the
    /// conservative level).
    pub failsafe_epochs: u64,
    /// Stuck-meter detections (distinct epochs the stuck heuristic
    /// fired).
    pub stuck_detections: u64,
    /// Every meter-local fault the plan injected.
    pub meter_faults: MeterFaultReport,
    /// Every netlist-level fault injected into the governed silicon,
    /// if a sim plan was attached.
    pub sim_faults: Option<FaultReport>,
}

/// Runs `program` free (clean silicon, ungoverned) and governed (with
/// optional netlist faults and meter faults), steering from *hardened*
/// meter readings with a fail-safe state machine:
///
/// - A distrusted reading — flagged by the envelope, all lanes
///   dropped, or stuck for [`ResilientGovernorConfig::stuck_epochs`] —
///   immediately raises the throttle to at least
///   [`ResilientGovernorConfig::conservative_level`] and enters
///   fail-safe mode. The core is **never** left unthrottled while the
///   meter cannot be trusted.
/// - Fail-safe mode persists until
///   [`ResilientGovernorConfig::recovery_epochs`] consecutive trusted
///   readings arrive; only then does ordinary bang-bang control (with
///   its own hysteresis) resume and gradually unwind the throttle.
///
/// # Errors
/// Returns [`ApolloError::FaultPlan`] if the sim plan does not compile
/// against the design and [`ApolloError::Spec`] if the meter plan or
/// OPM spec is invalid, or if the OPM window does not match the
/// governor epoch.
///
/// # Panics
/// Panics if `cycles` is not a multiple of the epoch length (same
/// contract as [`run_governed`]).
#[allow(clippy::too_many_arguments)]
pub fn run_governed_resilient(
    handles: &CpuHandles,
    cap_annotation: &CapAnnotation,
    opm: &HardenedOpm,
    program: &[Inst],
    data: &[u64],
    cycles: usize,
    config: &ResilientGovernorConfig,
    sim_plan: Option<&FaultPlan>,
    meter_plan: &MeterFaultPlan,
) -> Result<ResilientGovernorReport, ApolloError> {
    let epoch = config.base.epoch;
    assert!(epoch >= 4, "epoch too short");
    assert_eq!(cycles % epoch, 0, "cycles must be a multiple of the epoch");
    if opm.quant.spec.t != epoch {
        return Err(ApolloError::spec(format!(
            "OPM window T = {} must equal the governor epoch {epoch}",
            opm.quant.spec.t
        )));
    }
    // (node, bit-within-node) per proxy; the hardened meter holds the
    // weights (per lane, so ROM corruption stays lane-local).
    let taps = ProxyTaps::new(&handles.netlist, &opm.quant.bits);
    let mut meter = HardenedMeter::new(&opm.quant, opm.envelope, opm.redundancy, meter_plan)?;

    // Free-running clean reference.
    let mut free = CpuSim::new(
        handles,
        cap_annotation,
        PowerConfig::default(),
        program,
        data,
    );
    let mut free_epoch_power = Vec::with_capacity(cycles / epoch);
    let mut free_total = 0.0;
    let mut acc = 0.0;
    for c in 0..cycles {
        free.step();
        let p = free.sim().power().total;
        free_total += p;
        acc += p;
        if (c + 1) % epoch == 0 {
            free_epoch_power.push(acc / epoch as f64);
            acc = 0.0;
        }
    }
    let retired_free = free.retired();

    // Governed run, optionally on faulted silicon.
    let mut gov = CpuSim::with_faults(
        handles,
        cap_annotation,
        PowerConfig::default(),
        program,
        data,
        1,
        sim_plan,
    )
    .map_err(ApolloError::from)?;
    gov.sim_mut().set_input(handles.throttle_override_en, 1);
    gov.sim_mut().set_input(handles.throttle_override, 0);

    let mut level = 0u8;
    let mut in_failsafe = false;
    let mut clean_streak = 0usize;
    let mut last_value = u64::MAX;
    let mut same_count = 0usize;
    let mut flagged_epochs = Vec::new();
    let mut failsafe_epochs = 0u64;
    let mut stuck_detections = 0u64;
    let mut throttle_trace = Vec::with_capacity(cycles / epoch);
    let mut gov_epoch_power = Vec::with_capacity(cycles / epoch);
    let mut gov_total = 0.0;
    let mut true_acc = 0.0;
    for _ in 0..cycles {
        gov.step();
        let p = gov.sim().power().total;
        gov_total += p;
        true_acc += p;
        let reading = {
            let sim = gov.sim();
            meter.step(|k| taps.toggled(sim, k))
        };
        if let Some(r) = reading {
            if r.value == last_value {
                same_count += 1;
            } else {
                last_value = r.value;
                same_count = 1;
            }
            let stuck = same_count >= config.stuck_epochs;
            if stuck {
                stuck_detections += 1;
            }
            let prev_level = level;
            let was_failsafe = in_failsafe;
            if r.flagged || stuck {
                // Fail-safe: the meter cannot be trusted, so throttle
                // conservatively no matter what it reads.
                flagged_epochs.push(r.epoch);
                in_failsafe = true;
                clean_streak = 0;
                level = level.max(config.conservative_level);
                apollo_telemetry::emit_event(
                    "governor.flagged",
                    &[
                        ("epoch", apollo_telemetry::FieldValue::from(r.epoch)),
                        ("value", apollo_telemetry::FieldValue::from(r.value)),
                        ("stuck", apollo_telemetry::FieldValue::from(stuck)),
                    ],
                );
            } else if in_failsafe {
                // Hold the conservative level until enough consecutive
                // trusted readings accumulate.
                clean_streak += 1;
                if clean_streak >= config.recovery_epochs {
                    in_failsafe = false;
                }
            } else {
                let descaled = opm.descale(r.value);
                if descaled > config.base.cap && level < 3 {
                    level += 1;
                } else if descaled < config.base.cap * config.base.low_watermark && level > 0 {
                    level -= 1;
                }
            }
            if in_failsafe != was_failsafe {
                apollo_telemetry::emit_event(
                    if in_failsafe {
                        "governor.failsafe_enter"
                    } else {
                        "governor.failsafe_exit"
                    },
                    &[("epoch", apollo_telemetry::FieldValue::from(r.epoch))],
                );
                apollo_telemetry::counter("governor.failsafe_transitions").inc();
            }
            if level != prev_level {
                emit_throttle_event(r.epoch, prev_level, level, opm.descale(r.value));
            }
            if in_failsafe {
                failsafe_epochs += 1;
            }
            gov.sim_mut()
                .set_input(handles.throttle_override, level as u64);
            throttle_trace.push(level);
            gov_epoch_power.push(true_acc / epoch as f64);
            true_acc = 0.0;
        }
    }
    apollo_telemetry::counter("governor.epochs").add(throttle_trace.len() as u64);
    let retired_governed = gov.retired();
    let sim_faults = gov.sim().fault_report();

    let over = |epochs: &[f64]| {
        epochs.iter().filter(|&&p| p > config.base.cap).count() as f64 / epochs.len().max(1) as f64
    };
    Ok(ResilientGovernorReport {
        base: GovernorReport {
            cycles,
            mean_power_governed: gov_total / cycles as f64,
            mean_power_free: free_total / cycles as f64,
            retired_governed,
            retired_free,
            epochs_over_cap: over(&gov_epoch_power),
            epochs_over_cap_free: over(&free_epoch_power),
            throttle_trace,
        },
        flagged_epochs,
        failsafe_epochs,
        stuck_detections,
        meter_faults: meter.report(),
        sim_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{train_per_cycle, DesignContext, FeatureSpace, TrainOptions};
    use apollo_cpu::{benchmarks, CpuConfig};

    #[test]
    fn governor_brings_power_under_cap_at_a_performance_cost() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        // Train a small model on hot workloads.
        let suite = vec![
            (benchmarks::maxpwr_cpu(), 400),
            (benchmarks::saxpy_simd(), 400),
            (benchmarks::dhrystone(), 300),
        ];
        let trace = ctx.capture_suite(&suite, 150);
        let fs = FeatureSpace::build(&trace.toggles);
        let model = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 20,
                ..TrainOptions::default()
            },
        )
        .model;
        let opm = QuantizedOpm::from_model(&model, 10, 32).unwrap();

        // Cap well below the virus's free-running power.
        let bench = benchmarks::maxpwr_cpu();
        let free_power = ctx.mean_power(&bench.program, &bench.data, 100, 400);
        let cap = free_power * 0.75;
        let report = run_governed(
            &ctx.handles,
            &ctx.cap,
            &opm,
            &bench.program,
            &bench.data,
            1024,
            &GovernorConfig {
                epoch: 32,
                cap,
                ..GovernorConfig::default()
            },
        );
        assert!(
            report.mean_power_governed < report.mean_power_free,
            "{report:?}"
        );
        assert!(
            report.epochs_over_cap < report.epochs_over_cap_free,
            "cap compliance should improve: {report:?}"
        );
        assert!(
            report.retired_governed <= report.retired_free,
            "throttling cannot speed the core up"
        );
        assert!(
            report.throttle_trace.iter().any(|&l| l > 0),
            "governor engaged"
        );
    }

    fn synthetic_opm_for(ctx: &DesignContext, q: usize, t: usize) -> QuantizedOpm {
        QuantizedOpm {
            spec: crate::quant::OpmSpec { q, b: 8, t },
            bits: (0..q).collect(),
            is_clock_gate: vec![false; q],
            weights: (0..q).map(|k| (k as u32 * 13 + 7) % 256).collect(),
            scale: 1.0,
            intercept: ctx.power.leakage,
        }
    }

    #[test]
    fn failsafe_governor_never_trusts_a_dead_meter() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let opm = HardenedOpm::new(synthetic_opm_for(&ctx, 8, 32));
        let bench = benchmarks::maxpwr_cpu();
        let config = ResilientGovernorConfig {
            base: GovernorConfig {
                epoch: 32,
                cap: 1e9,
                ..GovernorConfig::default()
            },
            ..ResilientGovernorConfig::default()
        };
        // Every epoch readout dropped: the meter is dead. Despite the
        // absurdly high cap (an un-governed run would never throttle),
        // the fail-safe must keep the core at the conservative level.
        let meter_plan = MeterFaultPlan {
            seed: 5,
            counter_flip_rate: 0.0,
            rom_flip_rate: 0.0,
            drop_rate: 1.0,
        };
        let report = run_governed_resilient(
            &ctx.handles,
            &ctx.cap,
            &opm,
            &bench.program,
            &bench.data,
            1024,
            &config,
            None,
            &meter_plan,
        )
        .unwrap();
        let epochs = 1024 / 32;
        assert_eq!(report.base.throttle_trace.len(), epochs);
        assert_eq!(report.flagged_epochs.len(), epochs, "{report:?}");
        assert_eq!(report.failsafe_epochs, epochs as u64);
        // Invariant: a flagged reading never leaves the core
        // unthrottled.
        for &e in &report.flagged_epochs {
            assert!(
                report.base.throttle_trace[e as usize] >= config.conservative_level,
                "epoch {e} flagged but throttle {} < {}",
                report.base.throttle_trace[e as usize],
                config.conservative_level
            );
        }
        assert_eq!(
            report.meter_faults.dropped_epochs, epochs as u64,
            "single lane, every epoch dropped"
        );
        assert!(
            report.base.retired_governed < report.base.retired_free,
            "fail-safe throttling must cost performance: {report:?}"
        );
    }

    #[test]
    fn failsafe_governor_recovers_after_transient_distrust() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let opm = HardenedOpm::new(synthetic_opm_for(&ctx, 8, 32));
        let bench = benchmarks::maxpwr_cpu();
        let config = ResilientGovernorConfig {
            base: GovernorConfig {
                epoch: 32,
                cap: 1e9,
                ..GovernorConfig::default()
            },
            recovery_epochs: 2,
            stuck_epochs: 1000,
            ..ResilientGovernorConfig::default()
        };
        // Occasional drops: single-lane drops flag their epoch, then a
        // busy workload's varying readings recover trust and the huge
        // cap unwinds the throttle.
        let meter_plan = MeterFaultPlan {
            seed: 21,
            counter_flip_rate: 0.0,
            rom_flip_rate: 0.0,
            drop_rate: 0.2,
        };
        let report = run_governed_resilient(
            &ctx.handles,
            &ctx.cap,
            &opm,
            &bench.program,
            &bench.data,
            2048,
            &config,
            None,
            &meter_plan,
        )
        .unwrap();
        assert!(
            !report.flagged_epochs.is_empty(),
            "drops must flag: {report:?}"
        );
        assert!(
            (report.failsafe_epochs as usize) < report.base.throttle_trace.len(),
            "governor must leave fail-safe mode between faults: {report:?}"
        );
        for &e in &report.flagged_epochs {
            assert!(
                report.base.throttle_trace[e as usize] >= config.conservative_level,
                "flagged epoch {e} left under-throttled"
            );
        }
        // After recovery the enormous cap lets the throttle unwind all
        // the way back to zero at some point past the first flag.
        let first_flagged = report.flagged_epochs[0] as usize;
        assert!(
            report.base.throttle_trace[first_flagged..].contains(&0),
            "throttle never unwound after recovery: {report:?}"
        );
    }
}
